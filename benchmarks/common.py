"""Shared infrastructure for the figure-regeneration benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation: it runs the required simulations (cached across benchmarks in
one session, since several figures share the same runs), renders the same
rows/series the paper plots, prints them, and writes them under
``benchmarks/results/`` for EXPERIMENTS.md.

Simulations are scaled down (``ACCESSES_PER_CORE`` memory operations per
core instead of the paper's one million reads) so the whole harness
finishes in minutes; the *relative* numbers are what the figures are
about.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_series, format_table
from repro.sim.config import SystemConfig
from repro.sim.runner import SchemeOptions, run_scheme
from repro.sim.system import RunResult
from repro.workloads.spec import EVALUATION_SUITE, suite_specs

#: Memory operations per core per run (the paper simulates to 1M reads).
ACCESSES_PER_CORE = int(os.environ.get("REPRO_BENCH_ACCESSES", "250"))

#: Upper bound per run; generous (slow schemes on intense workloads).
MAX_CYCLES = 8_000_000

CONFIG = SystemConfig(accesses_per_core=ACCESSES_PER_CORE)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_cache: Dict[Tuple, RunResult] = {}


def bench_engine() -> str:
    """Simulation engine for the benchmark harness.

    Defaults to the cycle-skipping fast path (differentially proven
    bit-identical to the reference, so every figure is unchanged); set
    ``REPRO_BENCH_ENGINE=reference`` to time the cycle-stepping
    simulator instead.  Read at call time so a pytest ``--engine`` flag
    (see the root conftest) can steer already-imported modules.
    """
    return os.environ.get("REPRO_BENCH_ENGINE", "fast")


def run_cached(
    scheme: str,
    workload_name: str,
    cores: int = 8,
    turn_length: Optional[int] = None,
    prefetch: bool = False,
    suppress: bool = False,
    boost: bool = False,
    powerdown: bool = False,
) -> RunResult:
    """Run one (scheme, workload, options) simulation, memoized."""
    engine = bench_engine()
    key = (scheme, workload_name, cores, turn_length, prefetch,
           suppress, boost, powerdown, engine)
    if key in _cache:
        return _cache[key]
    from repro.core.energy_opts import FsEnergyOptions

    config = CONFIG if cores == 8 else CONFIG.with_cores(cores)
    options = SchemeOptions(
        turn_length=turn_length,
        prefetch=prefetch,
        energy=FsEnergyOptions(
            suppress_dummies=suppress,
            boost_row_hits=boost,
            power_down_idle=powerdown,
        ),
    )
    result = run_scheme(
        scheme, config, suite_specs(workload_name, cores), options,
        max_cycles=MAX_CYCLES, engine=engine,
    )
    _cache[key] = result
    return result


def weighted_ipc(scheme: str, workload_name: str, cores: int = 8,
                 **kwargs) -> float:
    """Sum of weighted IPC vs the non-secure baseline (same platform)."""
    baseline = run_cached("baseline", workload_name, cores)
    return run_cached(scheme, workload_name, cores, **kwargs) \
        .weighted_ipc(baseline)


def adjusted_total_energy(result: RunResult) -> float:
    """Total energy including FS accounting-only optimizations (pJ)."""
    from repro.core.energy_opts import adjusted_energy
    from repro.dram.power import PowerModel

    if result.adjustments is None:
        return result.energy.total_pj
    model = PowerModel(CONFIG.timing)
    return adjusted_energy(
        result.energy, result.adjustments, model
    ).total_pj


def publish(name: str, text: str) -> str:
    """Print a figure's table and persist it under benchmarks/results."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print("\n" + text)
    return text


def suite_series(
    schemes: List[str], workloads: Optional[List[str]] = None, **kwargs
) -> Dict[str, List[float]]:
    """Weighted-IPC series over the workload suite for several schemes."""
    workloads = workloads or EVALUATION_SUITE
    series: Dict[str, List[float]] = {}
    for scheme in schemes:
        series[scheme] = [
            weighted_ipc(scheme, wl, **kwargs) for wl in workloads
        ]
    return series


def with_am(series: Dict[str, List[float]]) -> Dict[str, List[float]]:
    """Append the arithmetic mean (the paper's 'AM' column)."""
    return {
        name: values + [arithmetic_mean(values)]
        for name, values in series.items()
    }


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1,
                              warmup_rounds=0)
