"""Figure 3: summary of design points, normalized to the baseline.

Regenerates the scatter of normalized throughput per design point
(baseline 1.0; paper: FS_RP 0.74 [rank partitioning], FS reordered BP
0.48 and TP 0.43 [bank partitioning], FS triple alternation 0.40 and TP
0.20 [no partitioning]).
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_table
from repro.workloads.spec import EVALUATION_SUITE

from .common import once, publish, suite_series

PAPER = {
    "baseline": 1.0,
    "fs_rp": 0.74,
    "fs_reordered_bp": 0.48,
    "tp_bp": 0.43,
    "fs_np_ta": 0.40,
    "tp_np": 0.20,
}

PARTITIONING = {
    "baseline": "-",
    "fs_rp": "rank",
    "fs_reordered_bp": "bank",
    "tp_bp": "bank",
    "fs_np_ta": "none",
    "tp_np": "none",
}


def test_figure3_design_point_summary(benchmark):
    schemes = [s for s in PAPER if s != "baseline"]
    series = once(benchmark, lambda: suite_series(schemes))
    normalized = {
        s: arithmetic_mean(v) / 8.0 for s, v in series.items()
    }
    normalized["baseline"] = 1.0
    rows = [
        [s, PARTITIONING[s], round(normalized[s], 3), PAPER[s]]
        for s in PAPER
    ]
    publish("fig3_summary", format_table(
        ["design point", "partitioning", "measured", "paper"], rows,
        title="Figure 3: normalized throughput of the design points",
    ))
    # The structure of the figure: every secure point below the
    # baseline; rank partitioning on top; TP_NP at the bottom.
    assert normalized["fs_rp"] == max(
        v for s, v in normalized.items() if s != "baseline"
    )
    assert normalized["tp_np"] < normalized["tp_bp"]
    assert normalized["fs_reordered_bp"] > normalized["tp_bp"]
    # Rank-partitioned FS lands in the paper's band.
    assert abs(normalized["fs_rp"] - PAPER["fs_rp"]) < 0.15
