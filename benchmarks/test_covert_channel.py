"""Section 2.2 / 5.2: covert-channel elimination.

Not a numbered figure, but the paper's security motivation: a
contention covert channel (sender modulates memory intensity, receiver
times its own probes) transmits cleanly through the non-secure baseline
and dies under FS.  Regenerates the received signal for both.
"""

from repro.analysis.covert import run_covert_channel
from repro.analysis.report import format_table

from .common import CONFIG, once, publish

BITS = (1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1)


def test_covert_channel_elimination(benchmark):
    def measure():
        return (
            run_covert_channel("baseline", BITS, config=CONFIG),
            run_covert_channel("fs_rp", BITS, config=CONFIG),
        )

    base, fs = once(benchmark, measure)
    rows = []
    for i, bit in enumerate(BITS):
        rows.append([
            i, bit,
            round(base.window_means[i], 1), base.decoded_bits[i],
            round(fs.window_means[i], 1), fs.decoded_bits[i],
        ])
    publish("covert_channel", format_table(
        ["window", "sent", "baseline latency", "baseline decoded",
         "FS latency", "FS decoded"],
        rows,
        title=(
            "Covert channel: baseline BER "
            f"{base.bit_error_rate:.2f} (swing "
            f"{base.signal_swing:.1f} cycles) vs FS BER "
            f"{fs.bit_error_rate:.2f} (swing {fs.signal_swing:.1f})"
        ),
    ))
    assert base.bit_error_rate <= 0.15
    assert base.signal_swing > 1.0
    assert fs.bit_error_rate >= 0.3
    assert fs.signal_swing < 1.0
