"""Ablations called out by DESIGN.md (beyond the paper's figures).

* periodic DATA vs RAS vs CAS for every sharing level (the Section 3
  "fixed periodic commands" discussion);
* N-transactions-per-thread grouping (Section 3 "improving bandwidth" —
  the paper's negative result);
* SLA slot assignments (Section 5.1): differentiated service with the
  same pipeline;
* mutual-information leakage estimate (quantifying "zero leakage").
"""

import math

from repro.analysis.mutual_information import estimate_channel_leakage
from repro.analysis.report import format_table
from repro.core.pipeline_solver import (
    GroupedPipelineSolver,
    PeriodicMode,
    PipelineSolver,
    SharingLevel,
)
from repro.core.sla import build_sla_schedule, weighted_slot_order
from repro.dram.timing import DDR3_1600_X4

from .common import CONFIG, once, publish

P = DDR3_1600_X4


def test_periodic_mode_ablation(benchmark):
    """Fixed periodic data wins only for rank partitioning."""
    solver = PipelineSolver(P)

    def sweep():
        return {
            sharing: {
                mode: solver.solve(mode, sharing)
                for mode in PeriodicMode
            }
            for sharing in SharingLevel
        }

    grid = once(benchmark, sweep)
    rows = [
        [sharing.value] + [grid[sharing][m] for m in PeriodicMode]
        for sharing in SharingLevel
    ]
    publish("ablation_periodic_mode", format_table(
        ["sharing", "data", "ras", "cas"], rows,
        title="Ablation: periodic anchor choice (paper: data for rank "
              "partitioning, RAS elsewhere)",
    ))
    assert grid[SharingLevel.RANK][PeriodicMode.DATA] < \
        grid[SharingLevel.RANK][PeriodicMode.RAS]
    assert grid[SharingLevel.BANK][PeriodicMode.RAS] < \
        grid[SharingLevel.BANK][PeriodicMode.DATA]
    assert grid[SharingLevel.NONE][PeriodicMode.RAS] < \
        grid[SharingLevel.NONE][PeriodicMode.DATA]


def test_grouped_pipeline_ablation(benchmark):
    """Section 3: issuing N consecutive transactions per thread never
    beats the plain l=7 pipeline for the Table-1 part."""
    solver = GroupedPipelineSolver(P)
    costs = once(benchmark, lambda: solver.grouping_helps(
        PeriodicMode.DATA, (2, 3, 4)
    ))
    rows = [[n, round(c, 2)] for n, c in sorted(costs.items())]
    publish("ablation_grouping", format_table(
        ["group size N", "cycles per transaction"], rows,
        title="Ablation: N transactions per thread (paper: 'did not "
              "result in a more efficient pipeline')",
    ))
    plain = costs[1]
    assert all(costs[n] >= plain for n in (2, 3, 4))


def test_sla_assignment_ablation(benchmark):
    """Section 5.1: unequal slot shares keep the pipeline legal and give
    proportional bandwidth."""
    def build():
        assignments = [
            [1] * 8,
            [2, 2, 1, 1, 1, 1],
            [4, 1, 1, 1, 1],
        ]
        out = []
        for assignment in assignments:
            schedule = build_sla_schedule(
                P, SharingLevel.RANK, assignment
            )
            out.append((assignment, schedule))
        return out

    schedules = once(benchmark, build)
    rows = []
    for assignment, schedule in schedules:
        share0 = len(schedule.slots_of_domain(0)) / \
            schedule.slots_per_interval
        rows.append([
            "-".join(map(str, assignment)),
            schedule.interval_length,
            f"{share0:.0%}",
            f"{schedule.peak_utilization():.0%}",
        ])
    publish("ablation_sla", format_table(
        ["slot assignment", "Q", "domain-0 share", "peak util"], rows,
        title="Ablation: SLA slot assignments over the same l=7 "
              "pipeline",
    ))
    # The pipeline's efficiency is independent of the SLA split.
    utils = {row[3] for row in rows}
    assert len(utils) == 1


def test_partition_spectrum(benchmark):
    """Section 4.1's full spectrum on one table: channel partitioning
    (<= 4 threads, secure at no cost), rank partitioning (the paper's
    sweet spot), down to no partitioning."""
    from .common import run_cached, weighted_ipc

    def sweep():
        rows = []
        # 4 threads: channel partitioning (4 private channels).
        rows.append([
            "channel (4 cores)",
            round(weighted_ipc("channel_part", "milc", cores=4) / 4, 3),
            "secure, private channels",
        ])
        for scheme, label in (
            ("fs_rp", "rank (8 cores)"),
            ("fs_reordered_bp", "bank, reordered (8 cores)"),
            ("fs_np_ta", "none, triple alt (8 cores)"),
        ):
            rows.append([
                label,
                round(weighted_ipc(scheme, "milc") / 8, 3),
                "secure, shared channel",
            ])
        return rows

    rows = once(benchmark, sweep)
    publish("ablation_partition_spectrum", format_table(
        ["partitioning", "normalized throughput", "notes"], rows,
        title="Section 4.1 spectrum: coarser partitioning -> cheaper "
              "security",
    ))
    values = [row[1] for row in rows]
    # Coarser spatial partitioning is monotonically cheaper.
    assert values == sorted(values, reverse=True)
    # Private channels cost (essentially) nothing.
    assert values[0] > 0.9


def test_page_mapping_ablation(benchmark):
    """The abstract's claim: 'various page mapping policies can impact
    the throughput of our secure memory system.'  Interleaving
    consecutive lines across banks spreads every domain's queue over the
    three bank classes, sharply reducing triple alternation's blocked
    slots."""
    from repro.sim.runner import SchemeOptions, run_scheme
    from repro.workloads.spec import suite_specs
    from .common import CONFIG, MAX_CYCLES, run_cached

    BANK_INTERLEAVED = ("row", "column", "rank", "channel", "bank")

    def sweep():
        rows = []
        for wl in ("libquantum", "milc"):
            baseline = run_cached("baseline", wl)
            for label, order in (
                ("row-major", None),
                ("bank-interleaved", BANK_INTERLEAVED),
            ):
                result = run_scheme(
                    "fs_np_ta", CONFIG, suite_specs(wl, 8),
                    SchemeOptions(address_order=order),
                    max_cycles=MAX_CYCLES,
                )
                rows.append([
                    wl, label,
                    round(result.weighted_ipc(baseline), 3),
                    result.stats.blocked_slots,
                ])
        return rows

    rows = once(benchmark, sweep)
    publish("ablation_page_mapping", format_table(
        ["workload", "mapping", "weighted IPC (triple alternation)",
         "class-blocked slots"],
        rows,
        title="Page mapping ablation (abstract claim): bank interleaving "
              "unblocks triple alternation",
    ))
    for wl_rows in (rows[:2], rows[2:]):
        row_major, interleaved = wl_rows
        assert interleaved[2] > row_major[2]
        assert interleaved[3] < row_major[3]


def test_mutual_information_leakage(benchmark):
    """Leakage in bits: baseline reveals the whole co-runner secret, FS
    reveals exactly zero."""
    def measure():
        return (
            estimate_channel_leakage("baseline", seeds=(0, 1),
                                     config=CONFIG),
            estimate_channel_leakage("fs_rp", seeds=(0, 1),
                                     config=CONFIG),
        )

    base, fs = once(benchmark, measure)
    publish("ablation_mutual_information", format_table(
        ["scheme", "leaked bits", "max bits", "fraction"],
        [
            ["baseline", round(base.bits, 3), round(base.max_bits, 3),
             f"{base.fraction_leaked:.0%}"],
            ["fs_rp", round(fs.bits, 3), round(fs.max_bits, 3),
             f"{fs.fraction_leaked:.0%}"],
        ],
        title="Leakage as mutual information (secret = co-runner "
              "identity, 3 candidates)",
    ))
    assert fs.bits == 0.0
    assert base.bits > 0.9 * base.max_bits
