"""Figure 6: per-workload weighted IPC for FS and TP at 8 cores.

Regenerates the figure's five series (FS_RP, FS_Reordered_BP, TP_BP,
FS_NP_Optimized, TP_NP) over the paper's twelve workloads, plus the AM
column, and asserts the paper's headline relationships:

* FS_RP beats the best bank-partitioned TP (paper: +69%),
* FS reordered-BP beats TP_BP (paper: +11%),
* the best FS point lands within tens of percent of the non-secure
  baseline (paper: -27%).

Also regenerates the Section-7 text statistics: dummy fractions
(2.3% libquantum ... 87% xalancbmk), mean memory latencies, and
effective bandwidth.
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_series, format_table
from repro.workloads.spec import EVALUATION_SUITE

from .common import (
    once,
    publish,
    run_cached,
    suite_series,
    weighted_ipc,
    with_am,
)

SCHEMES = ["fs_rp", "fs_reordered_bp", "tp_bp", "fs_np_ta", "tp_np"]


def test_figure6_weighted_ipc(benchmark):
    series = once(benchmark, lambda: suite_series(SCHEMES))
    labels = EVALUATION_SUITE + ["AM"]
    publish("fig6_fs_performance", format_series(
        labels, with_am(series),
        title="Figure 6: sum of weighted IPCs, 8 cores "
              "(non-secure baseline = 8.0)",
    ))
    am = {s: arithmetic_mean(v) for s, v in series.items()}
    # Who wins, in order (paper: FS_RP > reordered BP > TP_BP; TA and
    # TP_NP at the bottom).
    assert am["fs_rp"] > am["fs_reordered_bp"] > am["tp_bp"]
    assert am["tp_bp"] > am["tp_np"]
    # FS_RP's margin over TP_BP (paper: 1.69x; our stricter closed-loop
    # core model widens it — see EXPERIMENTS.md).
    assert am["fs_rp"] / am["tp_bp"] > 1.5
    # FS_RP vs the non-secure baseline (paper: 27% below).
    assert 0.55 < am["fs_rp"] / 8.0 < 0.85


def test_section7_fs_statistics(benchmark):
    def collect():
        rows = []
        for wl in EVALUATION_SUITE:
            fs = run_cached("fs_rp", wl)
            tp = run_cached("tp_bp", wl)
            rows.append([
                wl,
                f"{fs.stats.dummy_fraction:.1%}",
                round(fs.stats.mean_read_latency, 1),
                round(tp.stats.mean_read_latency, 1),
                f"{fs.bus_utilization:.1%}",
            ])
        return rows

    rows = once(benchmark, collect)
    publish("section7_stats", format_table(
        ["workload", "FS dummy fraction", "FS latency", "TP latency",
         "FS bus util"],
        rows,
        title="Section 7 statistics (paper: dummies 2.3%..87%, "
              "FS latency 288 vs TP 683, FS effective bandwidth 37%)",
    ))
    by_wl = {r[0]: r for r in rows}
    # The intensity extremes keep their paper ordering.
    lib = float(by_wl["libquantum"][1].rstrip("%"))
    xal = float(by_wl["xalancbmk"][1].rstrip("%"))
    assert lib < 20.0
    assert xal > 50.0
    # TP's queuing latency dwarfs FS's (paper: 683 vs 288 cycles).
    mean_fs = arithmetic_mean([r[2] for r in rows])
    mean_tp = arithmetic_mean([r[3] for r in rows])
    assert mean_tp > 1.5 * mean_fs
