"""Figure 2: naive no-partitioning pipeline vs triple alternation.

Regenerates both pipelines of the figure: the naive 43-cycle-gap schedule
(9% utilization) and the triple-alternation schedule (15-cycle slots,
rotating bank-class masks, 27% utilization), validating each with the
independent checker and asserting the figure's structural properties.
"""

from repro.analysis.report import format_table
from repro.core.pipeline_solver import SharingLevel
from repro.core.schedule import (
    build_fs_schedule,
    build_triple_alternation_schedule,
    validate_schedule,
)
from repro.dram.timing import DDR3_1600_X4

from .common import once, publish


def test_figure2_pipelines(benchmark):
    def build_and_validate():
        naive = build_fs_schedule(DDR3_1600_X4, 8, SharingLevel.NONE)
        ta = build_triple_alternation_schedule(DDR3_1600_X4, 8)
        return (
            naive, validate_schedule(naive),
            ta, validate_schedule(ta),
        )

    naive, naive_violations, ta, ta_violations = once(
        benchmark, build_and_validate
    )
    rows = [
        ["(a) naive, l=43", naive.slot_gap, naive.interval_length,
         f"{naive.peak_utilization():.0%}", len(naive_violations)],
        ["(b) triple alternation", ta.slot_gap, ta.interval_length,
         f"{ta.peak_utilization():.0%}", len(ta_violations)],
    ]
    publish("fig2_triple_alternation", format_table(
        ["pipeline", "slot gap", "Q (8 threads)", "peak util",
         "violations"],
        rows,
        title="Figure 2: no-partitioning pipelines "
              "(paper: 9% -> 27% utilization)",
    ))
    assert naive_violations == [] and ta_violations == []
    # 3x utilization improvement, exactly as the paper reports.
    assert ta.peak_utilization() / naive.peak_utilization() > 2.8


def test_figure2_mask_structure(benchmark):
    """The rotating bank-class masks from the figure's annotations."""
    ta = once(
        benchmark,
        lambda: build_triple_alternation_schedule(DDR3_1600_X4, 8),
    )
    rows = []
    for sub in range(3):
        slots = ta.slots[sub * 8:(sub + 1) * 8]
        rows.append([
            f"sub-interval {sub}",
            " ".join(f"T{s.domain}:b%3={s.bank_mod}" for s in slots[:4])
            + " ...",
        ])
    publish("fig2_masks", format_table(
        ["window", "slot -> allowed bank class"], rows,
        title="Figure 2(b): triple-alternation mask rotation",
    ))
    # Paper: first interval T0/T3/T6 -> class 0, T1/T4/T7 -> 1, T2/T5 -> 2.
    first = {s.domain: s.bank_mod for s in ta.slots[:8]}
    assert first[0] == first[3] == first[6] == 0
    assert first[1] == first[4] == first[7] == 1
    assert first[2] == first[5] == 2
    # Next interval rotates T0 to "multiples of three plus two".
    second = {s.domain: s.bank_mod for s in ta.slots[8:16]}
    assert second[0] == 2
    # Same-bank reuse distance covers the 43-cycle turnaround.
    assert 3 * ta.slot_gap >= 43
