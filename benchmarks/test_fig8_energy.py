"""Figure 8: normalized memory energy for FS and TP schemes.

Regenerates the per-workload energy of every secure scheme normalized to
the non-secure baseline (paper: baseline lowest; FS beats TP by ~11%
despite issuing 36.6% more accesses, because it finishes much sooner).
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_series
from repro.workloads.spec import EVALUATION_SUITE

from .common import once, publish, run_cached, with_am

SCHEMES = ["fs_rp", "fs_reordered_bp", "tp_bp", "fs_np_ta", "tp_np"]


def normalized_energy(scheme: str, workload: str) -> float:
    baseline = run_cached("baseline", workload).energy.total_pj
    return run_cached(scheme, workload).energy.total_pj / baseline


def test_figure8_memory_energy(benchmark):
    def sweep():
        return {
            scheme: [
                normalized_energy(scheme, wl) for wl in EVALUATION_SUITE
            ]
            for scheme in SCHEMES
        }

    series = once(benchmark, sweep)
    publish("fig8_energy", format_series(
        EVALUATION_SUITE + ["AM"], with_am(series),
        title="Figure 8: memory energy normalized to the non-secure "
              "baseline (paper: FS within ~19% of baseline, ~11% below "
              "TP)",
    ))
    am = {s: arithmetic_mean(v) for s, v in series.items()}
    # The baseline is the most energy-efficient configuration.
    assert all(v > 1.0 for v in am.values())
    # FS_RP spends less energy than the bank-partitioned TP it replaces
    # (the paper's 11.4% claim) thanks to far shorter execution.
    assert am["fs_rp"] < am["tp_bp"]
    # A no-partitioning scheme is the most expensive of all (energy
    # tracks execution time; in our runs FS triple alternation and TP_NP
    # trade that last place — see EXPERIMENTS.md).
    assert max(am, key=am.get) in ("tp_np", "fs_np_ta")
