"""Figure-regeneration benchmark harness (one module per table/figure)."""
