"""Figure 9: the three energy optimizations for rank-partitioned FS.

Regenerates the cumulative stack — FS_RP, + suppressed dummies,
+ row-buffer boost, + power-down — normalized to the non-secure baseline
(paper: collectively -52.5%, ending within 3.4% of the baseline).
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_series
from repro.workloads.spec import EVALUATION_SUITE

from .common import (
    adjusted_total_energy,
    once,
    publish,
    run_cached,
    with_am,
)

#: Cumulative configurations, in the figure's order.
STACK = [
    ("FS_RP", {}),
    ("Suppressed_Dummy", {"suppress": True}),
    ("Row-buffer-boost", {"suppress": True, "boost": True}),
    ("Power-Down", {"suppress": True, "boost": True, "powerdown": True}),
]


def test_figure9_energy_optimizations(benchmark):
    def sweep():
        series = {}
        for label, opts in STACK:
            values = []
            for wl in EVALUATION_SUITE:
                baseline = run_cached("baseline", wl).energy.total_pj
                result = run_cached("fs_rp", wl, **opts)
                values.append(adjusted_total_energy(result) / baseline)
            series[label] = values
        return series

    series = once(benchmark, sweep)
    publish("fig9_energy_opts", format_series(
        EVALUATION_SUITE + ["AM"], with_am(series),
        title="Figure 9: FS_RP energy optimizations, normalized to the "
              "baseline (paper: stack recovers ~52.5%, final within "
              "3.4% of baseline)",
    ))
    am = {label: arithmetic_mean(v) for label, v in series.items()}
    # Each optimization helps (monotone stack).
    assert am["Suppressed_Dummy"] <= am["FS_RP"]
    assert am["Row-buffer-boost"] <= am["Suppressed_Dummy"] + 1e-9
    assert am["Power-Down"] <= am["Row-buffer-boost"] + 1e-9
    # The full stack recovers a large share of the FS energy overhead.
    overhead_before = am["FS_RP"] - 1.0
    overhead_after = am["Power-Down"] - 1.0
    assert overhead_after < 0.7 * overhead_before
