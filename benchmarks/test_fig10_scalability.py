"""Figure 10: scalability with core count (8 / 4 / 2 cores).

Regenerates the bars — rank-partitioned FS, reordered bank-partitioned
FS, and bank-partitioned TP at 8, 4 and 2 cores with as many ranks as
cores — and asserts the paper's findings: FS beats TP at every scale
(paper: +85% at 4 cores, +18% at 2 cores) with the margin narrowing as
the Section-7 same-rank hazard (the 43-cycle rule) bites at small rank
counts.
"""

import os
import time

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_series

from .common import once, publish, weighted_ipc

WORKLOADS = ["mix1", "CG", "libquantum", "mcf", "milc", "xalancbmk"]
CORE_COUNTS = (8, 4, 2)
SCHEMES = ("fs_rp", "fs_reordered_bp", "tp_bp")


def test_figure10_scalability(benchmark):
    def sweep():
        series = {}
        for scheme in SCHEMES:
            series[scheme] = [
                arithmetic_mean([
                    weighted_ipc(scheme, wl, cores=n) for wl in WORKLOADS
                ])
                for n in CORE_COUNTS
            ]
        return series

    series = once(benchmark, sweep)
    publish("fig10_scalability", format_series(
        [f"{n} cores" for n in CORE_COUNTS], series,
        title="Figure 10: scalability (AM of weighted IPC; baseline = "
              "core count; ranks = cores)",
    ))
    fs, re_bp, tp = (series[s] for s in SCHEMES)
    for i, n in enumerate(CORE_COUNTS):
        # FS out-performs TP at every core count (paper: 85% at 4 cores,
        # 18% at 2 cores).
        assert fs[i] > tp[i], f"{n} cores"
        # Everything stays below the non-secure ceiling.
        assert fs[i] < n and re_bp[i] < n and tp[i] < n
    # The FS margin over TP narrows with fewer cores: the same-rank
    # 43-cycle hazard forces bubbles/dummy slots at low rank counts.
    margin = [fs[i] / tp[i] for i in range(len(CORE_COUNTS))]
    assert margin[0] > margin[-1]


# ---------------------------------------------------------------------
# Fast-engine speedup gate.
# ---------------------------------------------------------------------

#: A representative slice of the Figure 10 grid (scheme mixture incl.
#: the non-secure baseline the figure normalizes against).
SPEEDUP_SCHEMES = ("baseline",) + SCHEMES
SPEEDUP_WORKLOADS = ["mix1", "mcf", "libquantum"]
SPEEDUP_CORES = (8, 4)

#: Minimum fast/reference wall-clock ratio CI accepts.  Measured on the
#: full grid: baseline ~3.4x, TP ~2.7x, FS rank-partitioned ~1.9x, FS
#: reordered ~1.8x, composite ~2.6-2.7x (single vCPU, best-of-3).  The
#: reference simulator is itself event-driven (docs/INTERNALS.md
#: Sections 6 and 8), so the FS schemes have structurally modest
#: headroom and the composite sits below the 3-5x one would expect
#: against a cycle-ticking baseline.  The floor is set under the
#: measured ratio by a margin for noisy shared CI runners; a drop below
#: it indicates a fast-path performance regression, not machine load.
SPEEDUP_FLOOR = float(os.environ.get("REPRO_SPEEDUP_FLOOR", "2.0"))


def _grid_seconds(engine: str) -> float:
    """Wall-clock for one uncached pass of the grid slice."""
    from repro.sim.config import SystemConfig
    from repro.sim.runner import run_scheme
    from repro.workloads.spec import suite_specs

    from .common import ACCESSES_PER_CORE, MAX_CYCLES

    start = time.perf_counter()
    for scheme in SPEEDUP_SCHEMES:
        for cores in SPEEDUP_CORES:
            config = SystemConfig(accesses_per_core=ACCESSES_PER_CORE)
            if cores != config.num_cores:
                config = config.with_cores(cores)
            for workload in SPEEDUP_WORKLOADS:
                run_scheme(
                    scheme, config, suite_specs(workload, cores),
                    max_cycles=MAX_CYCLES, engine=engine,
                )
    return time.perf_counter() - start


def test_fast_engine_speedup():
    """The fast engine must stay meaningfully faster than the reference.

    Best-of-two per engine (the minimum is the standard noise-robust
    wall-clock estimator on shared machines); fast runs first so its
    one-time schedule-template solve is included in its own budget.
    """
    fast = min(_grid_seconds("fast") for _ in range(2))
    ref = min(_grid_seconds("reference") for _ in range(2))
    ratio = ref / fast
    publish(
        "fig10_engine_speedup",
        f"fig10 slice ({len(SPEEDUP_SCHEMES)} schemes x "
        f"{len(SPEEDUP_WORKLOADS)} workloads x cores {SPEEDUP_CORES}): "
        f"reference {ref:.3f}s, fast {fast:.3f}s, "
        f"speedup {ratio:.2f}x (floor {SPEEDUP_FLOOR:.2f}x)",
    )
    assert ratio >= SPEEDUP_FLOOR, (
        f"fast engine speedup {ratio:.2f}x fell below the "
        f"{SPEEDUP_FLOOR:.2f}x gate — fast-path performance regression"
    )
