"""Figure 10: scalability with core count (8 / 4 / 2 cores).

Regenerates the bars — rank-partitioned FS, reordered bank-partitioned
FS, and bank-partitioned TP at 8, 4 and 2 cores with as many ranks as
cores — and asserts the paper's findings: FS beats TP at every scale
(paper: +85% at 4 cores, +18% at 2 cores) with the margin narrowing as
the Section-7 same-rank hazard (the 43-cycle rule) bites at small rank
counts.
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_series

from .common import once, publish, weighted_ipc

WORKLOADS = ["mix1", "CG", "libquantum", "mcf", "milc", "xalancbmk"]
CORE_COUNTS = (8, 4, 2)
SCHEMES = ("fs_rp", "fs_reordered_bp", "tp_bp")


def test_figure10_scalability(benchmark):
    def sweep():
        series = {}
        for scheme in SCHEMES:
            series[scheme] = [
                arithmetic_mean([
                    weighted_ipc(scheme, wl, cores=n) for wl in WORKLOADS
                ])
                for n in CORE_COUNTS
            ]
        return series

    series = once(benchmark, sweep)
    publish("fig10_scalability", format_series(
        [f"{n} cores" for n in CORE_COUNTS], series,
        title="Figure 10: scalability (AM of weighted IPC; baseline = "
              "core count; ranks = cores)",
    ))
    fs, re_bp, tp = (series[s] for s in SCHEMES)
    for i, n in enumerate(CORE_COUNTS):
        # FS out-performs TP at every core count (paper: 85% at 4 cores,
        # 18% at 2 cores).
        assert fs[i] > tp[i], f"{n} cores"
        # Everything stays below the non-secure ceiling.
        assert fs[i] < n and re_bp[i] < n and tp[i] < n
    # The FS margin over TP narrows with fewer cores: the same-rank
    # 43-cycle hazard forces bubbles/dummy slots at low rank counts.
    margin = [fs[i] / tp[i] for i in range(len(CORE_COUNTS))]
    assert margin[0] > margin[-1]
