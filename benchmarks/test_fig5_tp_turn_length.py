"""Figure 5: TP performance vs turn length.

Regenerates the sweep over the paper's six TP configurations
(bank-partitioned turns of 60/100/156 cycles, no-partitioning turns of
172/212/268) and asserts the finding the paper draws from it: the
minimum turn length wins on average, because wait time matters more than
bandwidth for these workloads.
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_series
from repro.workloads.spec import EVALUATION_SUITE

from .common import once, publish, weighted_ipc, with_am

#: A representative slice of the suite keeps the sweep affordable.
WORKLOADS = ["mix1", "CG", "astar", "libquantum", "mcf", "milc",
             "xalancbmk"]

BP_TURNS = (60, 100, 156)
NP_TURNS = (172, 212, 268)


def test_figure5_turn_length_sweep(benchmark):
    def sweep():
        series = {}
        for turn in BP_TURNS:
            series[f"TP_BP_{turn}"] = [
                weighted_ipc("tp_bp", wl, turn_length=turn)
                for wl in WORKLOADS
            ]
        for turn in NP_TURNS:
            series[f"TP_NP_{turn}"] = [
                weighted_ipc("tp_np", wl, turn_length=turn)
                for wl in WORKLOADS
            ]
        return series

    series = once(benchmark, sweep)
    publish("fig5_tp_turn_length", format_series(
        WORKLOADS + ["AM"], with_am(series),
        title="Figure 5: TP sum of weighted IPCs vs turn length "
              "(baseline = 8.0; paper: minimum turns win)",
    ))
    bp_means = {t: arithmetic_mean(series[f"TP_BP_{t}"]) for t in BP_TURNS}
    np_means = {t: arithmetic_mean(series[f"TP_NP_{t}"]) for t in NP_TURNS}
    # The paper's conclusion for bank-partitioned TP: the minimum turn
    # wins on average (wait time beats bandwidth).
    assert bp_means[60] >= max(bp_means.values()) - 1e-9
    # Latency-sensitive workloads want the minimum turn in both modes.
    for label in ("xalancbmk",):
        i = WORKLOADS.index(label)
        assert series["TP_BP_60"][i] >= series["TP_BP_156"][i]
        assert series["TP_NP_172"][i] >= series["TP_NP_268"][i]
    # For no-partitioning TP our burstier traces make the average nearly
    # flat (GemsFDTD-like exception in the paper's own Figure 5); assert
    # flatness rather than strict ordering — a documented deviation.
    assert max(np_means.values()) / min(np_means.values()) < 1.15
    # Bank partitioning beats no partitioning at matched (minimum) turns.
    assert bp_means[60] > np_means[172]
