"""Table 1: simulator and DRAM parameters.

Regenerates the configuration table and asserts the Table-1 values are
wired through to the default configuration.
"""

from repro.analysis.report import format_table
from repro.dram.timing import DDR3_1600_X4, DEFAULT_CLOCK
from repro.sim.config import TABLE1_CONFIG

from .common import once, publish


def test_table1_configuration(benchmark):
    def build():
        p = DDR3_1600_X4
        cfg = TABLE1_CONFIG
        rows = [
            ["CMP size / core freq",
             f"{cfg.num_cores}-core, "
             f"{3.2}" " GHz"],
            ["ROB size per core", cfg.core.rob_size],
            ["Fetch/retire width", cfg.core.width],
            ["Channels / ranks / banks",
             f"{cfg.geometry.channels} / {cfg.geometry.ranks} / "
             f"{cfg.geometry.banks}"],
            ["tRC, tRCD, tRAS", f"{p.tRC}, {p.tRCD}, {p.tRAS}"],
            ["tFAW, tWR, tRP", f"{p.tFAW}, {p.tWR}, {p.tRP}"],
            ["tRTRS, tCAS, tRTP", f"{p.tRTRS}, {p.tCAS}, {p.tRTP}"],
            ["tBURST, tCCD, tWTR", f"{p.tBURST}, {p.tCCD}, {p.tWTR}"],
            ["tRRD, tREFI, tRFC", f"{p.tRRD}, {p.tREFI}, {p.tRFC}"],
            ["CPU cycles per mem cycle", DEFAULT_CLOCK.cpu_per_mem_cycle],
        ]
        return format_table(
            ["parameter", "value"], rows,
            title="Table 1: simulator and DRAM parameters",
        )

    table = once(benchmark, build)
    publish("table1_config", table)
    p = DDR3_1600_X4
    assert (p.tRC, p.tRCD, p.tRAS, p.tFAW) == (39, 11, 28, 24)
    assert (p.tRTRS, p.tCAS, p.tBURST, p.tWTR, p.tRRD) == (2, 11, 4, 6, 5)
