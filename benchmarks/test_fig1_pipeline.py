"""Figure 1: the 8-thread rank-partitioned pipeline.

Regenerates the timing diagram as a cycle table — eight reads/writes to
eight ranks, data bursts every 7 cycles, all 16 commands conflict-free in
one 56-cycle interval — and proves it with the independent JEDEC checker
for every read/write pattern.
"""

import itertools

from repro.analysis.report import format_table
from repro.core.pipeline_solver import SharingLevel
from repro.core.schedule import (
    build_fs_schedule,
    schedule_commands,
    validate_schedule,
)
from repro.dram.checker import TimingChecker
from repro.dram.timing import DDR3_1600_X4

from .common import once, publish


def test_figure1_pipeline(benchmark):
    schedule = build_fs_schedule(DDR3_1600_X4, 8, SharingLevel.RANK)

    def validate_exhaustively():
        # All 256 read/write assignments of one interval.
        patterns = [
            [bool(b) for b in bits]
            for bits in itertools.product((0, 1), repeat=8)
        ]
        return validate_schedule(schedule, intervals=2, patterns=patterns)

    violations = once(benchmark, validate_exhaustively)

    # Render the paper's example: six reads, writes in slots 5 and 6.
    pattern = [True, True, True, True, True, False, False, True]
    cmds = schedule_commands(schedule, pattern, intervals=1)
    rows = []
    for k, is_read in enumerate(pattern):
        anchor = schedule.anchor(0, schedule.slots[k])
        times = schedule.command_times(anchor, is_read)
        rows.append([
            f"T{k} -> rank {k}", "RD" if is_read else "WR",
            times.act, times.col, f"{times.data}-{times.data + 3}",
        ])
    publish("fig1_pipeline", format_table(
        ["slot", "op", "ACT cycle", "COL cycle", "data cycles"], rows,
        title=(
            "Figure 1: rank-partitioned FS pipeline "
            f"(l=7, Q={schedule.interval_length}; all 256 R/W patterns "
            f"checker-clean: {not violations})"
        ),
    ))
    assert violations == []
    assert schedule.interval_length == 56


def test_figure1_gap_of_six_fails(benchmark):
    """The text notes tRTRS alone (l=6) creates command-bus conflicts."""
    from repro.core.pipeline_solver import (
        PeriodicMode,
        PipelineSolver,
    )

    solver = PipelineSolver(DDR3_1600_X4)
    report = once(
        benchmark,
        lambda: solver.check(6, PeriodicMode.DATA, SharingLevel.RANK),
    )
    assert report is not None
    assert report.rule == "command-bus"
