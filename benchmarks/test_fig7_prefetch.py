"""Figure 7: FS_RP with the sandbox-prefetcher optimization.

Regenerates the three bars per workload — baseline with prefetch, FS_RP
with prefetch, plain FS_RP — and the text statistics (prefetch share of
FS accesses and useful-prefetch fraction; paper: 13.4% of FS accesses
are prefetches, 43.7% useful, +11% performance).
"""

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.report import format_series
from repro.workloads.spec import EVALUATION_SUITE

from .common import once, publish, run_cached, weighted_ipc, with_am

#: Slice of the suite with headroom for prefetching (streaming +
#: low-to-moderate intensity), plus extremes for contrast.
WORKLOADS = ["mix2", "SP", "astar", "zeusmp", "GemsFDTD", "xalancbmk",
             "libquantum"]


def test_figure7_prefetch(benchmark):
    def sweep():
        return {
            "FS_RP_prefetch": [
                weighted_ipc("fs_rp", wl, prefetch=True)
                for wl in WORKLOADS
            ],
            "FS_RP": [weighted_ipc("fs_rp", wl) for wl in WORKLOADS],
        }

    series = once(benchmark, sweep)
    publish("fig7_prefetch", format_series(
        WORKLOADS + ["AM"], with_am(series),
        title="Figure 7: FS_RP with and without the sandbox prefetcher "
              "(paper: +11% average for FS)",
    ))
    plain = arithmetic_mean(series["FS_RP"])
    boosted = arithmetic_mean(series["FS_RP_prefetch"])
    # Prefetching must help on average and never catastrophically hurt.
    assert boosted >= plain * 0.98
    per_wl_ratio = [
        b / p for b, p in zip(series["FS_RP_prefetch"], series["FS_RP"])
    ]
    assert max(per_wl_ratio) > 1.02  # someone actually benefits


def test_figure7_prefetch_statistics(benchmark):
    def collect():
        stats = []
        for wl in ("SP", "zeusmp", "GemsFDTD"):
            result = run_cached("fs_rp", wl, prefetch=True)
            stats.append((wl, result.stats.prefetch_fraction))
        return stats

    stats = once(benchmark, collect)
    text = "\n".join(
        f"{wl}: prefetch share of FS accesses = {frac:.1%}"
        for wl, frac in stats
    )
    publish("fig7_prefetch_stats", text + "\n(paper: 13.4% average)")
    # Streaming workloads with idle slots really do carry prefetches.
    assert any(frac > 0.02 for _, frac in stats)
