"""Exhaustive bounded non-interference (security model check).

Complements Figure 4: rather than two hand-picked co-runner behaviours,
this target enumerates *every* co-runner strategy over a bounded horizon
(81 complete system runs per scheme) and reports which schedulers keep
the victim's timing bit-identical.  The secure schemes must all hold;
the non-secure schedulers must be refuted with concrete counterexample
strategies.
"""

from repro.analysis.exhaustive import exhaustive_noninterference
from repro.analysis.report import format_table

from .common import CONFIG, once, publish

SECURE = ("fs_rp", "fs_reordered_bp", "fs_np_ta", "tp_bp",
          "channel_part")
INSECURE = ("baseline", "fcfs")


def test_exhaustive_noninterference(benchmark):
    def sweep():
        out = {}
        for scheme in SECURE + INSECURE:
            out[scheme] = exhaustive_noninterference(
                scheme, decision_points=4, config=CONFIG
            )
        return out

    reports = once(benchmark, sweep)
    rows = []
    for scheme, report in reports.items():
        rows.append([
            scheme,
            "HOLDS" if report.holds else "REFUTED",
            report.patterns_checked,
            " ".join(report.counterexample)
            if report.counterexample else "-",
        ])
    publish("exhaustive_noninterference", format_table(
        ["scheme", "non-interference", "patterns run",
         "counterexample strategy"],
        rows,
        title="Exhaustive bounded check: all 81 co-runner strategies",
    ))
    for scheme in SECURE:
        assert reports[scheme].holds, scheme
        assert reports[scheme].patterns_checked == 81
    for scheme in INSECURE:
        assert not reports[scheme].holds, scheme
