"""Figure 4: mcf execution profiles with and without FS.

Regenerates the four curves — the baseline with quiet vs intense
co-runners (divergent: the attacker reads the victims' memory intensity)
and FS with the same pair (perfectly overlapping) — and asserts exact
overlap for FS.
"""

from repro.analysis.leakage import figure4_profiles
from repro.analysis.report import format_table

from .common import CONFIG, once, publish


def test_figure4_execution_profiles(benchmark):
    profiles = once(benchmark, lambda: figure4_profiles(config=CONFIG))

    base_quiet = profiles["baseline/non_intensive"]
    base_loud = profiles["baseline/intensive"]
    fs_quiet = profiles["fs_rp/non_intensive"]
    fs_loud = profiles["fs_rp/intensive"]

    rows = []
    for (n, tq), (_, tl), (_, fq), (_, fl) in zip(
        base_quiet.profile, base_loud.profile,
        fs_quiet.profile, fs_loud.profile,
    ):
        rows.append([n, tq, tl, fq, fl])
    publish("fig4_leakage", format_table(
        ["instructions", "baseline/quiet", "baseline/intense",
         "FS/quiet", "FS/intense"],
        rows,
        title="Figure 4: cycles to retire each instruction block "
              "(mcf attacker; FS columns must be identical)",
    ))

    # Baseline curves diverge: co-runner intensity is observable.
    assert base_quiet.profile != base_loud.profile
    final_gap = base_loud.profile[-1][1] - base_quiet.profile[-1][1]
    assert final_gap > 0
    # FS curves overlap *perfectly* — the zero-leakage claim.
    assert fs_quiet.profile == fs_loud.profile
    assert fs_quiet.read_releases == fs_loud.read_releases
