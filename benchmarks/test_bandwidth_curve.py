"""Bandwidth-latency curves: the paper's peak-bandwidth numbers as
measured saturation points.

Section 3/4 derive theoretical peak utilizations (57% FS_RP, 51%
reordered BP, 27% FS_BP); this target drives each scheduler open-loop
across offered loads and shows the saturation plateau and latency knee
landing exactly there.  It also shows FS's constant-activity property:
utilization is 57% even at near-zero demand (dummy slots — the basis of
the paper's resistance to power-measurement attacks).
"""

from repro.analysis.bandwidth import bandwidth_latency_curve
from repro.analysis.report import format_table

from .common import CONFIG, once, publish

LOADS = (0.5, 1.0, 1.5, 2.0, 3.0)
SCHEMES = ("baseline", "fs_rp", "fs_reordered_bp", "fs_bp")
PAPER_PEAKS = {
    "baseline": None, "fs_rp": 4 / 7, "fs_reordered_bp": 32 / 63,
    "fs_bp": 4 / 15,
}


def test_bandwidth_latency_curves(benchmark):
    def sweep():
        return {
            scheme: bandwidth_latency_curve(
                scheme, LOADS, duration=15_000, config=CONFIG
            )
            for scheme in SCHEMES
        }

    curves = once(benchmark, sweep)
    rows = []
    for scheme, points in curves.items():
        for p in points:
            rows.append([
                scheme, p.offered_per_100,
                f"{p.utilization:.1%}", round(p.mean_latency, 1),
            ])
    publish("bandwidth_curves", format_table(
        ["scheme", "offered (req/domain/100cyc)", "bus util",
         "mean latency"],
        rows,
        title="Bandwidth-latency curves (saturation = the Section 3/4 "
              "peak-bandwidth numbers)",
    ))
    for scheme, peak in PAPER_PEAKS.items():
        if peak is None:
            continue
        measured = max(p.utilization for p in curves[scheme])
        assert abs(measured - peak) < 0.03, scheme
    # FS activity is constant: utilization at the lightest load equals
    # utilization at saturation (dummy slots).
    fs = curves["fs_rp"]
    assert abs(fs[0].utilization - fs[-1].utilization) < 0.02
    # The baseline saturates well above any secure scheme.
    base_sat = max(p.utilization for p in curves["baseline"])
    assert base_sat > 0.75
