"""Sections 3-4: the solved pipeline constants.

Regenerates the table of minimal slot gaps for every (sharing level,
periodic mode) pair plus the derived interval lengths and peak bus
utilizations the text quotes (l = 7 / 12 / 15 / 21 / 43, Q = 56 / 63 /
120 / 344 / 360, utilization 57% / 51% / 27% / 9%).
"""

import pytest

from repro.analysis.report import format_table
from repro.core.pipeline_solver import PipelineSolver
from repro.core.schedule import (
    build_fs_schedule,
    build_reordered_bp_geometry,
    build_triple_alternation_schedule,
)
from repro.core.pipeline_solver import PeriodicMode, SharingLevel
from repro.dram.timing import DDR3_1600_X4

from .common import once, publish

PAPER_GAPS = {
    ("rank", "data"): 7,
    ("rank", "ras"): 12,
    ("rank", "cas"): 12,
    ("bank", "data"): 21,
    ("bank", "ras"): 15,
    ("none", "ras"): 43,
}


def test_minimal_slot_gaps(benchmark):
    solver = PipelineSolver(DDR3_1600_X4)
    grid = once(benchmark, solver.solve_all)
    rows = [
        [sharing, mode, gap,
         PAPER_GAPS.get((sharing, mode), "-")]
        for (sharing, mode), gap in sorted(grid.items())
    ]
    publish("pipeline_gaps", format_table(
        ["sharing", "periodic mode", "solved l", "paper l"], rows,
        title="Sections 3-4: minimal conflict-free slot gaps",
    ))
    for key, expected in PAPER_GAPS.items():
        assert grid[key] == expected, key


def test_design_point_geometry(benchmark):
    def build():
        rp = build_fs_schedule(DDR3_1600_X4, 8, SharingLevel.RANK)
        bp = build_fs_schedule(DDR3_1600_X4, 8, SharingLevel.BANK)
        np_ = build_fs_schedule(DDR3_1600_X4, 8, SharingLevel.NONE)
        ta = build_triple_alternation_schedule(DDR3_1600_X4, 8)
        re = build_reordered_bp_geometry(DDR3_1600_X4, 8)
        return rp, bp, np_, ta, re

    rp, bp, np_, ta, re = once(benchmark, build)
    rows = [
        ["FS rank partitioning", rp.interval_length,
         f"{rp.peak_utilization():.0%}", "Q=56, 57%"],
        ["FS bank partitioning", bp.interval_length,
         f"{bp.peak_utilization():.0%}", "Q=120, 27%"],
        ["FS reordered BP", re.interval_length,
         f"{re.peak_utilization(4):.0%}", "Q=63, 51%"],
        ["FS no partitioning", np_.interval_length,
         f"{np_.peak_utilization():.0%}", "Q=344, 9%"],
        ["FS triple alternation", ta.interval_length,
         f"{ta.peak_utilization():.0%}", "Q=360, 27%"],
    ]
    publish("pipeline_geometry", format_table(
        ["design point", "Q (8 threads)", "peak util", "paper"], rows,
        title="Derived interval lengths and peak bus utilization",
    ))
    assert rp.interval_length == 56
    assert bp.interval_length == 120
    assert re.interval_length == 63
    assert np_.interval_length == 344
    assert ta.interval_length == 360
    assert rp.peak_utilization() == pytest.approx(4 / 7)
    assert re.peak_utilization(4) == pytest.approx(32 / 63)
