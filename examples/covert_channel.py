#!/usr/bin/env python3
"""Build a memory-contention covert channel, then watch FS destroy it.

A sender VM modulates its memory traffic (bursts = 1, silence = 0); a
receiver VM in another security domain times its own probe reads.  On a
contended scheduler the receiver's latency tracks the sender's bits —
the attack of Wu et al. that the paper cites at 100+ bits/s on EC2.
Under Fixed Service the receiver sees a flat line.

Run:  python examples/covert_channel.py
"""

from repro import SystemConfig
from repro.analysis import run_covert_channel

MESSAGE = (1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 0, 1, 1, 0, 1)


def transmit(scheme: str) -> None:
    result = run_covert_channel(
        scheme, MESSAGE, config=SystemConfig()
    )
    print(f"\n=== {scheme} ===")
    print("sent:    ", "".join(map(str, result.sent_bits)))
    print("decoded: ", "".join(map(str, result.decoded_bits)))
    print(f"bit error rate: {result.bit_error_rate:.2f}   "
          f"latency swing: {result.signal_swing:.1f} cycles")
    bars = " ".join(f"{m:5.1f}" for m in result.window_means[:8])
    print(f"receiver latency per window (first 8): {bars}")


def main() -> None:
    print("covert channel: sender bursts for 1-bits, receiver times "
          "its own probes")
    transmit("baseline")
    transmit("fs_rp")
    print("\nFS removes the contention the channel is made of: the "
          "receiver's latency no longer depends on the sender at all.")


if __name__ == "__main__":
    main()
