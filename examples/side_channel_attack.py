#!/usr/bin/env python3
"""Demonstrate the side channel — and its elimination (Figure 4).

An attacker (mcf) runs alongside seven victim threads and measures only
its *own* progress.  Under the non-secure baseline its execution profile
shifts with the victims' memory intensity — enough to distinguish an
idle victim from a busy one, which is exactly the primitive used to
steal RSA keys in the paper's threat model.  Under Fixed Service the two
profiles are bit-for-bit identical.

Run:  python examples/side_channel_attack.py
"""

from repro import SystemConfig, workload
from repro.analysis import interference_report
from repro.workloads import idle_spec, intense_spec


def spy(scheme: str) -> None:
    report = interference_report(
        scheme,
        victim=workload("mcf"),
        co_runners=[idle_spec(), intense_spec()],
        config=SystemConfig(accesses_per_core=600),
    )
    quiet, loud = report.views
    print(f"\n=== {scheme} ===")
    print(f"attacker IPC with idle victims:    {quiet.ipc:.4f}")
    print(f"attacker IPC with intense victims: {loud.ipc:.4f}")
    if report.leaks:
        print("LEAK: the profiles diverge by up to "
              f"{report.max_profile_divergence_cycles:,} cycles — the "
              "attacker can read the victims' memory intensity")
    else:
        print("no leak: the attacker's timing is bit-for-bit identical "
              "regardless of what the victims do")


def main() -> None:
    print("The attacker measures its own execution time while victims")
    print("either idle or hammer memory (the Figure 4 experiment).")
    spy("baseline")
    spy("fs_rp")


if __name__ == "__main__":
    main()
