#!/usr/bin/env python3
"""Play OS/hypervisor: pick partitioning and SLAs for a secure cloud box
(Sections 4.1 and 5.1).

Given a number of tenant VMs, the trusted scheduler chooses the spatial
partitioning level (channel < rank < bank < none as tenant count grows),
solves the matching FS pipeline, and — for tenants that paid for more
bandwidth — assigns extra issue slots.  Everything it computes offline
is certified with the independent JEDEC checker before "boot".

Run:  python examples/cloud_scheduler.py
"""

from repro import DDR3_1600_X4, SharingLevel, validate_schedule
from repro.core.schedule import build_fs_schedule, \
    build_triple_alternation_schedule
from repro.core.sla import bandwidth_share, build_sla_schedule
from repro.mapping import Geometry

GEOMETRY = Geometry(channels=4, ranks=8, banks=8)  # the Section 4 box


def partition_level(tenants: int) -> str:
    """Section 4.1's decision table for a 4-channel, 32-rank server."""
    if tenants <= GEOMETRY.channels:
        return "channel"
    if tenants <= GEOMETRY.channels * GEOMETRY.ranks:
        return "rank"
    if tenants <= GEOMETRY.channels * GEOMETRY.ranks * GEOMETRY.banks:
        return "bank"
    return "none"


def provision(tenants: int) -> None:
    level = partition_level(tenants)
    print(f"\n{tenants:4d} tenants -> {level} partitioning", end="")
    if level == "channel":
        print("  (no shared memory resources: nothing to schedule)")
        return
    per_channel = -(-tenants // GEOMETRY.channels)
    sharing = {
        "rank": SharingLevel.RANK,
        "bank": SharingLevel.BANK,
        "none": SharingLevel.NONE,
    }[level]
    if level == "none":
        schedule = build_triple_alternation_schedule(
            DDR3_1600_X4, per_channel
        )
    else:
        schedule = build_fs_schedule(
            DDR3_1600_X4, per_channel, sharing
        )
    clean = not validate_schedule(schedule)
    print(f", {per_channel} domains/channel, l={schedule.slot_gap}, "
          f"Q={schedule.interval_length}, peak "
          f"{schedule.peak_utilization():.0%}, checker "
          f"{'CLEAN' if clean else 'FAILED'}")


def premium_tenant_demo() -> None:
    print("\nSLA example: tenant 0 bought 3x bandwidth "
          "(8 domains, rank partitioning)")
    assignment = [3, 1, 1, 1, 1, 1, 1, 1]
    schedule = build_sla_schedule(
        DDR3_1600_X4, SharingLevel.RANK, assignment
    )
    for domain in (0, 1):
        share = bandwidth_share(assignment, domain)
        slots = [s.anchor_offset for s in
                 schedule.slots_of_domain(domain)]
        print(f"  tenant {domain}: {share:.0%} of slots, anchors "
              f"{slots} in a {schedule.interval_length}-cycle interval")
    print(f"  pipeline unchanged: l={schedule.slot_gap}, peak "
          f"{schedule.peak_utilization():.0%} — the SLA moves slot "
          "ownership, never command timing")


def main() -> None:
    print("secure cloud box: 4 channels x 8 ranks x 8 banks "
          "(Section 4.1)")
    for tenants in (2, 4, 8, 32, 64, 256):
        provision(tenants)
    premium_tenant_demo()


if __name__ == "__main__":
    main()
