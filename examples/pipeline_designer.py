#!/usr/bin/env python3
"""Design an FS pipeline for *your* DRAM part (the Section 3-4 math).

The heart of the paper is an offline solver: given JEDEC timing
parameters, find the smallest slot gap ``l`` such that a fixed periodic
schedule can never hit a resource conflict.  This example solves the
full (sharing level x periodic mode) grid for two parts, builds the
winning timetables, and certifies them with the independent JEDEC
checker — the workflow a trusted OS component would run at boot.

Designing a pipeline is half the workflow; the other half is making
the design point *runnable*.  The last step registers the certified
design as a first-class scheme with the declarative registry
(``repro.schemes``, docs/schemes.md) and simulates it — the same
name would work in ``repro run``, ``repro stats``, and (parallel)
``Sweep`` grids.

Run:  python examples/pipeline_designer.py
"""

from repro import (
    DDR3_1600_X4,
    PeriodicMode,
    PipelineSolver,
    SchemeSpec,
    SharingLevel,
    SystemConfig,
    build_fs_schedule,
    build_triple_alternation_schedule,
    run_scheme,
    suite_specs,
    validate_schedule,
)
from repro.schemes import REGISTRY
from repro.core.diagram import render_interval
from repro.dram.timing import DDR3_1066


def design(name: str, params) -> None:
    print(f"\n=== {name} ===")
    solver = PipelineSolver(params)
    print("minimal slot gap l per (sharing, periodic mode):")
    for sharing in SharingLevel:
        row = []
        for mode in PeriodicMode:
            row.append(f"{mode.value}: {solver.solve(mode, sharing):3d}")
        best_mode, best_l = solver.best(sharing)
        print(f"  {sharing.value:5s}  " + "  ".join(row)
              + f"   -> pick {best_mode.value} (l={best_l})")
    print(f"same-bank worst-case gap: {solver.same_bank_min_gap()} "
          "cycles")

    for threads in (8, 4):
        schedule = build_fs_schedule(params, threads, SharingLevel.RANK)
        violations = validate_schedule(schedule)
        print(f"{threads}-thread rank-partitioned timetable: "
              f"Q={schedule.interval_length}, peak bus utilization "
              f"{schedule.peak_utilization():.0%}, checker: "
              f"{'CLEAN' if not violations else violations[0]}")

    ta = build_triple_alternation_schedule(params, 8)
    print(f"triple alternation (no OS support needed): "
          f"Q={ta.interval_length}, peak {ta.peak_utilization():.0%}, "
          f"checker: {'CLEAN' if not validate_schedule(ta) else 'BAD'}")


def register_and_run() -> None:
    """Ship the certified design as a registered, runnable scheme."""
    solver = PipelineSolver(DDR3_1600_X4)
    l = solver.solve(PeriodicMode.DATA, SharingLevel.RANK)
    spec = REGISTRY.register(SchemeSpec(
        name="fs_rp_designed",
        description="FS_RP as certified by pipeline_designer.py",
        family="fs", partitioning="rank", sharing="rank",
        controller="repro.core.fs_controller.FixedServiceController",
        fast_controller=(
            "repro.sim.fastpath.FastFixedServiceController"
        ),
        expected_l=l, fixed_service=True,
    ))
    print(f"\nregistered: {spec.summary()}")
    config = SystemConfig(num_cores=4, accesses_per_core=200)
    config = config.with_cores(4)
    specs = suite_specs("mcf", 4)
    mine = run_scheme("fs_rp_designed", config, specs, engine="fast")
    ref = run_scheme("fs_rp", config, specs, engine="fast")
    match = "bit-identical" if (
        mine.service_trace == ref.service_trace
    ) else "DIVERGED (bug!)"
    print(f"ran fs_rp_designed: {mine.cycles:,} cycles; vs the "
          f"built-in fs_rp: {match}")


def main() -> None:
    design("DDR3-1600 (the paper's Table 1 part)", DDR3_1600_X4)
    design("DDR3-1066 (a slower part)", DDR3_1066)
    register_and_run()
    print("\nFigure 1, regenerated (6 reads + 2 writes, 8 ranks):")
    schedule = build_fs_schedule(DDR3_1600_X4, 8, SharingLevel.RANK)
    pattern = [True] * 8
    pattern[5] = pattern[6] = False
    print(render_interval(schedule, pattern))


if __name__ == "__main__":
    main()
