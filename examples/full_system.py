#!/usr/bin/env python3
"""Drive the paper's *full* target machine: 32 cores, 4 channels.

The paper evaluates one channel with eight cores to bound Simics time
(Section 6); the actual target platform is a 32-core processor with
four channels of eight ranks (Section 4.1).  Channels have private
buses, so full-system FS is one rank-partitioned FS controller per
channel — security composes, and so does throughput.

Run:  python examples/full_system.py
"""

from repro.sim import SchemeOptions, build_system, run_scheme
from repro.sim.config import full_target_config
from repro.workloads import suite_specs


def main() -> None:
    config = full_target_config(accesses_per_core=300)
    specs = suite_specs("milc", threads=32)
    print("full target platform: 32 cores, 4 channels x 8 ranks x 8 "
          "banks\nworkload: 32 copies of milc\n")

    print("running non-secure baseline across 4 channels ...")
    baseline = run_scheme("baseline", config, specs)
    print(f"  {baseline.cycles:,} cycles, aggregate bus utilization "
          f"{baseline.bus_utilization:.0%}")

    print("running multi-channel Fixed Service (one l=7 pipeline per "
          "channel) ...")
    secure = run_scheme("fs_rp_mc", config, specs)
    weighted = secure.weighted_ipc(baseline)
    print(f"  {secure.cycles:,} cycles, per-channel utilization "
          f"{secure.bus_utilization:.0%} (pipeline peak 57%)")
    print(f"\nsum of weighted IPCs: baseline 32.00, FS {weighted:.2f}")
    print(f"security tax at full scale: {1 - weighted / 32:.0%} — the "
          "same -27%-band as the paper's single-channel result, because "
          "channels compose independently")


if __name__ == "__main__":
    main()
