#!/usr/bin/env python3
"""Quickstart: secure vs non-secure memory scheduling in ~30 lines.

Runs eight copies of an mcf-like workload (the paper's attacker
benchmark) on the non-secure FR-FCFS baseline and on the Fixed Service
rank-partitioned controller, then reports the security tax: FS gives up
some throughput (the paper's 27%) to make every domain's memory timing
independent of its co-runners.

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, run_scheme, suite_specs

def main() -> None:
    config = SystemConfig(accesses_per_core=1000)
    specs = suite_specs("mcf", threads=8)

    print("running non-secure baseline (FR-FCFS, open page) ...")
    baseline = run_scheme("baseline", config, specs)
    print(f"  finished in {baseline.cycles:,} memory cycles, "
          f"bus utilization {baseline.bus_utilization:.0%}, "
          f"mean read latency "
          f"{baseline.stats.mean_read_latency:.0f} cycles")

    print("running Fixed Service with rank partitioning (l=7, Q=56) ...")
    secure = run_scheme("fs_rp", config, specs)
    print(f"  finished in {secure.cycles:,} memory cycles, "
          f"bus utilization {secure.bus_utilization:.0%}, "
          f"mean read latency {secure.stats.mean_read_latency:.0f} "
          f"cycles, dummy slots {secure.stats.dummy_fraction:.0%}")

    weighted = secure.weighted_ipc(baseline)
    print(f"\nsum of weighted IPCs: baseline 8.00, FS {weighted:.2f}")
    print(f"security tax: {1 - weighted / 8:.0%} throughput "
          f"(paper: 27%) — in exchange, co-runners are invisible")


if __name__ == "__main__":
    main()
