"""Make ``src/`` importable for pytest runs without an installed package.

The canonical install is ``pip install -e .`` (or ``python setup.py
develop`` on machines without the ``wheel`` package); this shim only keeps
``pytest`` working from a bare checkout.  It also hosts the repo-wide
pytest options:

``--engine {fast,reference}``
    Simulation engine for the benchmark harness (``benchmarks/``).  The
    flag simply sets ``REPRO_BENCH_ENGINE`` before collection so
    :func:`benchmarks.common.bench_engine` — which reads the variable at
    call time — picks it up.  Tests are unaffected: the differential
    suite always runs *both* engines, that being its point.

``--regen-golden``
    Regenerate the golden-trace fixtures under ``tests/golden/`` instead
    of comparing against them (see ``tests/test_golden_traces.py``).
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--engine",
        choices=("fast", "reference"),
        default=None,
        help="simulation engine for the benchmark harness "
             "(sets REPRO_BENCH_ENGINE; default: fast)",
    )
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden-trace fixtures under tests/golden/ "
             "from the current simulator instead of asserting against "
             "them",
    )


def pytest_configure(config):
    engine = config.getoption("--engine")
    if engine is not None:
        os.environ["REPRO_BENCH_ENGINE"] = engine


@pytest.fixture
def regen_golden(request) -> bool:
    """True when ``--regen-golden`` was passed on the command line."""
    return request.config.getoption("--regen-golden")
