"""Make ``src/`` importable for pytest runs without an installed package.

The canonical install is ``pip install -e .`` (or ``python setup.py
develop`` on machines without the ``wheel`` package); this shim only keeps
``pytest`` working from a bare checkout.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
