"""Fixed Service memory controllers — timing-channel-free DRAM scheduling.

A from-scratch reproduction of Shafiee et al., *"Avoiding Information
Leakage in the Memory Controller with Fixed Service Policies"*
(MICRO-48, 2015): a command-level DDR3 simulator, the non-secure and
Temporal Partitioning baselines, the full family of Fixed Service
pipelines with their offline constraint solver, trace-driven cores,
synthetic SPEC-like workloads, and the security/performance analysis
machinery that regenerates every figure in the paper.

Quick start::

    from repro import SystemConfig, run_scheme, suite_specs

    config = SystemConfig(accesses_per_core=2000)
    baseline = run_scheme("baseline", config, suite_specs("mcf"))
    secure = run_scheme("fs_rp", config, suite_specs("mcf"))
    print(secure.weighted_ipc(baseline))  # ~0.7 x 8 cores

Packages:

* :mod:`repro.core` — the paper's contribution (solver, schedules, FS
  controllers, energy optimizations).
* :mod:`repro.dram` — DDR3 timing/power substrate.
* :mod:`repro.controllers` — FR-FCFS baseline, FCFS, Temporal
  Partitioning.
* :mod:`repro.cpu`, :mod:`repro.workloads`, :mod:`repro.cache` — load
  generation.
* :mod:`repro.mapping` — address mapping and spatial partitioning.
* :mod:`repro.schemes` — the declarative scheme registry: picklable
  :class:`~repro.schemes.SchemeSpec` descriptions interpreted by
  family builders (register one spec, run it everywhere).
* :mod:`repro.exec` — the deterministic execution substrate: one
  spawn-pool / checkpoint / submission-order-merge recipe shared by
  parallel sweeps, certification batches, and the benchmark suite.
* :mod:`repro.sim` — system wiring and experiment runner.
* :mod:`repro.analysis` — non-interference checks, covert channels,
  metrics, reporting.
* :mod:`repro.telemetry` — unified observability: metrics registry,
  cycle-accurate trace export, engine profiling.
"""

from .errors import (
    ConfigError,
    ExecError,
    FaultInjectionError,
    ReproError,
    ScheduleViolationError,
    SimTimeoutError,
    TelemetryError,
    TraceError,
)
from .dram import (
    DDR3_1600_X4,
    DramSystem,
    TimingChecker,
    TimingParams,
)
from .core import (
    FixedServiceController,
    FsEnergyOptions,
    OnlineInvariantMonitor,
    PeriodicMode,
    PipelineSolver,
    ReorderedBpController,
    SharingLevel,
    build_fs_schedule,
    build_triple_alternation_schedule,
    paper_solutions,
    validate_schedule,
)
from .faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from .telemetry import (
    MetricsRegistry,
    TelemetrySession,
    TraceCollector,
    export_chrome_trace,
)
from .controllers import (
    FcfsController,
    FrFcfsController,
    TemporalPartitioningController,
)
from .mapping import Geometry, make_partition
from .schemes import (
    REGISTRY,
    SchemeRegistry,
    SchemeSpec,
    register_scheme,
)
from .errors import SchemeError
from .sim import (
    SCHEMES,
    FailedPoint,
    RunResult,
    SchemeOptions,
    Sweep,
    SweepPoint,
    System,
    SystemConfig,
    build_system,
    run_scheme,
)
from .workloads import (
    EVALUATION_SUITE,
    WorkloadSpec,
    generate_trace,
    suite_specs,
    workload,
)
from .analysis import (
    interference_report,
    run_covert_channel,
    sum_weighted_ipc,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError", "ConfigError", "TraceError",
    "ScheduleViolationError", "FaultInjectionError", "SimTimeoutError",
    "ExecError", "TelemetryError",
    "MetricsRegistry", "TelemetrySession", "TraceCollector",
    "export_chrome_trace",
    "DDR3_1600_X4", "DramSystem", "TimingChecker", "TimingParams",
    "FixedServiceController", "FsEnergyOptions", "PeriodicMode",
    "PipelineSolver", "ReorderedBpController", "SharingLevel",
    "OnlineInvariantMonitor",
    "build_fs_schedule", "build_triple_alternation_schedule",
    "paper_solutions", "validate_schedule",
    "FaultInjector", "FaultKind", "FaultPlan", "FaultSpec",
    "FcfsController", "FrFcfsController",
    "TemporalPartitioningController",
    "Geometry", "make_partition",
    "REGISTRY", "SchemeError", "SchemeRegistry", "SchemeSpec",
    "register_scheme",
    "SCHEMES", "RunResult", "SchemeOptions", "System", "SystemConfig",
    "build_system", "run_scheme",
    "FailedPoint", "Sweep", "SweepPoint",
    "EVALUATION_SUITE", "WorkloadSpec", "generate_trace",
    "suite_specs", "workload",
    "interference_report", "run_covert_channel", "sum_weighted_ipc",
    "__version__",
]
