"""A DRAM channel: shared command bus, shared data bus, and its ranks.

The channel is the arbitration point the paper's pipelines are built
around: one command per cycle on the command bus, one burst at a time on
the data bus with a ``tRTRS`` bubble between transfers from different
ranks.  The channel exposes *earliest-issue* queries (pure) and a single
:meth:`Channel.issue` mutation that validates every constraint before
applying, so an illegal schedule can never be silently accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .bank import TimingViolation
from .commands import Command, CommandType
from .rank import Rank
from .timing import TimingParams


@dataclass(frozen=True)
class DataReservation:
    """One burst on the data bus: [start, end) by ``rank``."""

    start: int
    end: int
    rank: int


class Channel:
    """One DDR3 channel with ``num_ranks`` ranks of ``num_banks`` banks."""

    def __init__(
        self,
        params: TimingParams,
        num_ranks: int = 8,
        num_banks: int = 8,
        channel_id: int = 0,
    ) -> None:
        if num_ranks < 1:
            raise ValueError("a channel needs at least one rank")
        self.params = params
        self.channel_id = channel_id
        self.ranks: List[Rank] = [
            Rank(params, num_banks) for _ in range(num_ranks)
        ]
        self.num_banks = num_banks
        #: Cycles on which the command bus is occupied.
        self._cmd_bus: Set[int] = set()
        self._cmd_bus_horizon = 0  # cycles below this have been pruned
        #: Outstanding/past data-bus reservations, kept sorted by start.
        self._data: List[DataReservation] = []
        self.stat_commands = 0
        self.stat_data_cycles = 0
        self.stat_last_activity = 0

    # ------------------------------------------------------------------
    # Command bus.
    # ------------------------------------------------------------------

    def cmd_bus_free(self, cycle: int) -> bool:
        return cycle not in self._cmd_bus

    def next_free_cmd_cycle(self, cycle: int) -> int:
        while cycle in self._cmd_bus:
            cycle += 1
        return cycle

    def _reserve_cmd(self, cycle: int) -> None:
        if cycle in self._cmd_bus:
            raise TimingViolation(f"command bus conflict at cycle {cycle}")
        self._cmd_bus.add(cycle)

    # ------------------------------------------------------------------
    # Data bus.
    # ------------------------------------------------------------------

    def data_conflict(self, start: int, rank: int) -> bool:
        """Would a burst [start, start+tBURST) by ``rank`` conflict?"""
        end = start + self.params.tBURST
        for res in self._data:
            gap = 0 if res.rank == rank else self.params.tRTRS
            if start < res.end + gap and res.start < end + gap:
                return True
        return False

    def earliest_data_start(self, lower: int, rank: int) -> int:
        """Smallest burst start >= ``lower`` with no data-bus conflict."""
        start = lower
        moved = True
        while moved:
            moved = False
            end = start + self.params.tBURST
            for res in self._data:
                gap = 0 if res.rank == rank else self.params.tRTRS
                if start < res.end + gap and res.start < end + gap:
                    start = res.end + gap
                    moved = True
                    break
        return start

    def _reserve_data(self, start: int, rank: int) -> None:
        if self.data_conflict(start, rank):
            raise TimingViolation(f"data bus conflict at cycle {start}")
        res = DataReservation(start, start + self.params.tBURST, rank)
        self._data.append(res)
        self._data.sort(key=lambda r: r.start)
        self.stat_data_cycles += self.params.tBURST

    def prune(self, before: int) -> None:
        """Drop bookkeeping that can no longer affect scheduling."""
        margin = self.params.tRTRS + self.params.tBURST
        self._data = [r for r in self._data if r.end + margin > before]
        if before > self._cmd_bus_horizon + 4096:
            self._cmd_bus = {c for c in self._cmd_bus if c >= before}
            self._cmd_bus_horizon = before

    # ------------------------------------------------------------------
    # Earliest-issue queries for whole commands.
    # ------------------------------------------------------------------

    def earliest_activate(self, now: int, rank: int, bank: int) -> int:
        t = self.ranks[rank].earliest_activate(now, bank)
        return self.next_free_cmd_cycle(t)

    def earliest_column(
        self, now: int, rank: int, bank: int, is_read: bool
    ) -> int:
        """Earliest column-command cycle honouring rank timing, the command
        bus, and the data-bus slot its burst will need."""
        p = self.params
        offset = p.tCAS if is_read else p.tCWD
        t = self.ranks[rank].earliest_column(now, bank, is_read)
        while True:
            t = self.next_free_cmd_cycle(t)
            data_start = self.earliest_data_start(t + offset, rank)
            if data_start == t + offset:
                return t
            # Align the column command with the available data slot.
            t = data_start - offset

    def earliest_column_after_planned_act(
        self, act_at: int, rank: int, is_read: bool
    ) -> int:
        """Earliest column cycle for a transaction whose ACTIVATE will
        issue at ``act_at`` but has not been applied yet."""
        p = self.params
        offset = p.tCAS if is_read else p.tCWD
        t = self.ranks[rank].earliest_column_rank_level(
            act_at + p.tRCD, is_read
        )
        while True:
            t = self.next_free_cmd_cycle(t)
            data_start = self.earliest_data_start(t + offset, rank)
            if data_start == t + offset:
                return t
            t = data_start - offset

    def earliest_precharge(self, now: int, rank: int, bank: int) -> int:
        t = self.ranks[rank].earliest_precharge(now, bank)
        return self.next_free_cmd_cycle(t)

    # ------------------------------------------------------------------
    # Issue.
    # ------------------------------------------------------------------

    def issue(self, cmd: Command) -> Optional[int]:
        """Put ``cmd`` on the command bus at ``cmd.cycle``.

        Returns the data-burst start cycle for column commands, else
        ``None``.  Raises :class:`TimingViolation` if any constraint is
        broken — the schedulers are expected to have computed a legal time.
        """
        if cmd.channel != self.channel_id:
            raise ValueError("command routed to the wrong channel")
        self._reserve_cmd(cmd.cycle)
        data_start: Optional[int] = None
        if cmd.type.is_column:
            offset = (
                self.params.tCAS if cmd.type.is_read else self.params.tCWD
            )
            data_start = cmd.cycle + offset
            self._reserve_data(data_start, cmd.rank)
        self.ranks[cmd.rank].apply(cmd)
        self.stat_commands += 1
        self.stat_last_activity = max(self.stat_last_activity, cmd.cycle)
        return data_start

    def issue_trusted(self, cmd: Command) -> Optional[int]:
        """Apply ``cmd`` without validation or bus bookkeeping.

        For pre-validated fixed schedules only (:mod:`repro.sim.fastpath`):
        the pipeline solver already proved the command stream free of
        command-bus and data-bus conflicts, so the per-cycle bus
        reservations exist only to re-check that proof.  This path skips
        them while keeping every *observable* update (rank/bank state,
        energy counters, ``stat_commands`` / ``stat_data_cycles`` /
        ``stat_last_activity``) identical to :meth:`issue`.

        CAVEAT: the ``earliest_*`` queries and ``cmd_bus_free`` /
        ``data_conflict`` are NOT maintained by this path.  Controllers
        that consult them (FR-FCFS, TP, FCFS) must keep using
        :meth:`issue`.
        """
        data_start: Optional[int] = None
        if cmd.type.is_column:
            offset = (
                self.params.tCAS if cmd.type.is_read else self.params.tCWD
            )
            data_start = cmd.cycle + offset
            self.stat_data_cycles += self.params.tBURST
        self.ranks[cmd.rank].apply_trusted(cmd)
        self.stat_commands += 1
        if cmd.cycle > self.stat_last_activity:
            self.stat_last_activity = cmd.cycle
        return data_start

    # ------------------------------------------------------------------
    # Introspection helpers.
    # ------------------------------------------------------------------

    def bank(self, rank: int, bank: int):
        return self.ranks[rank].banks[bank]

    def finalize(self, end_cycle: int) -> None:
        for rank in self.ranks:
            rank.finalize(end_cycle)

    def bus_utilization(self, elapsed_cycles: int) -> float:
        """Fraction of cycles the data bus carried data."""
        if elapsed_cycles <= 0:
            return 0.0
        return self.stat_data_cycles / elapsed_cycles
