"""Micron-style DDR3 power model.

Implements the standard IDD-based power equations that the Micron system
power calculator (the tool used in the paper) is built on.  Energy is
accounted per rank from the :class:`~repro.dram.rank.RankEnergyCounters`
activity counts:

* activate/precharge pair: ``(IDD0*tRC - IDD3N*tRAS - IDD2N*(tRC-tRAS))``
* read / write burst: ``(IDD4R/W - IDD3N) * tBURST``
* refresh: ``(IDD5 - IDD2N) * tRFC``
* background: active-standby (IDD3N), precharge-standby (IDD2N) and
  power-down (IDD2P) residency
* I/O and termination: a per-burst adder.

With currents in mA, voltage in V and times in ns, the products below are
directly in picojoules.
"""

from __future__ import annotations

from dataclasses import dataclass

from .rank import RankEnergyCounters
from .timing import TimingParams


@dataclass(frozen=True)
class DramPowerParams:
    """Datasheet currents for one DRAM device (Micron 4 Gb DDR3-1600 x8)."""

    vdd: float = 1.5
    idd0: float = 65.0    # one-bank activate-precharge current (mA)
    idd2n: float = 32.0   # precharge standby
    idd2p: float = 12.0   # precharge power-down (slow exit)
    idd3n: float = 38.0   # active standby
    idd4r: float = 150.0  # burst read
    idd4w: float = 155.0  # burst write
    idd5: float = 215.0   # burst refresh
    #: Devices ganged into one rank (64-bit channel of x8 parts).
    devices_per_rank: int = 8
    #: I/O + termination energy per data burst, per rank, in pJ.
    io_energy_per_burst_pj: float = 520.0

    def __post_init__(self) -> None:
        if self.devices_per_rank < 1:
            raise ValueError("devices_per_rank must be >= 1")
        if min(self.idd0, self.idd2n, self.idd2p, self.idd3n,
               self.idd4r, self.idd4w, self.idd5) <= 0:
            raise ValueError("IDD currents must be positive")


MICRON_4GB_DDR3_1600 = DramPowerParams()


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-rank energy in picojoules, by component."""

    activate_pj: float
    read_pj: float
    write_pj: float
    refresh_pj: float
    background_pj: float
    io_pj: float

    @property
    def total_pj(self) -> float:
        return (
            self.activate_pj + self.read_pj + self.write_pj
            + self.refresh_pj + self.background_pj + self.io_pj
        )

    @property
    def total_mj(self) -> float:
        return self.total_pj * 1e-9

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.activate_pj + other.activate_pj,
            self.read_pj + other.read_pj,
            self.write_pj + other.write_pj,
            self.refresh_pj + other.refresh_pj,
            self.background_pj + other.background_pj,
            self.io_pj + other.io_pj,
        )


ZERO_ENERGY = EnergyBreakdown(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


class PowerModel:
    """Prices a rank's activity counters into energy."""

    def __init__(
        self,
        timing: TimingParams,
        power: DramPowerParams = MICRON_4GB_DDR3_1600,
        cycle_ns: float = 1.25,
    ) -> None:
        if cycle_ns <= 0:
            raise ValueError("cycle_ns must be positive")
        self.timing = timing
        self.power = power
        self.cycle_ns = cycle_ns

    def _scale(self) -> float:
        """mA * V * ns -> pJ, for all devices of the rank."""
        return self.power.vdd * self.power.devices_per_rank * self.cycle_ns

    def rank_energy(self, counters: RankEnergyCounters) -> EnergyBreakdown:
        t = self.timing
        p = self.power
        scale = self._scale()

        act_charge = (
            p.idd0 * t.tRC
            - p.idd3n * t.tRAS
            - p.idd2n * (t.tRC - t.tRAS)
        )
        activate_pj = counters.activates * act_charge * scale
        read_pj = counters.reads * (p.idd4r - p.idd3n) * t.tBURST * scale
        write_pj = counters.writes * (p.idd4w - p.idd3n) * t.tBURST * scale
        refresh_pj = counters.refreshes * (p.idd5 - p.idd2n) * t.tRFC * scale
        background_pj = (
            counters.cycles_active * p.idd3n
            + counters.cycles_precharged * p.idd2n
            + counters.cycles_power_down * p.idd2p
        ) * scale
        io_pj = (
            (counters.reads + counters.writes)
            * p.io_energy_per_burst_pj
        )
        return EnergyBreakdown(
            activate_pj, read_pj, write_pj, refresh_pj, background_pj, io_pj
        )

    def system_energy(self, dram_system) -> EnergyBreakdown:
        """Aggregate energy across every rank of a DramSystem."""
        total = ZERO_ENERGY
        for channel in dram_system.channels:
            for rank in channel.ranks:
                total = total + self.rank_energy(rank.energy)
        return total
