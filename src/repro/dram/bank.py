"""Per-bank DRAM state machine.

A bank tracks its open row and the earliest cycles at which each command
class may legally target it.  All state updates are driven by
:meth:`Bank.apply`, which is called exactly once per issued command; the
earliest-time queries are pure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .commands import Command, CommandType
from .timing import TimingParams


@dataclass
class Bank:
    """State of one DRAM bank."""

    params: TimingParams
    open_row: Optional[int] = None
    #: Earliest cycle an ACTIVATE may issue to this bank.
    next_activate: int = 0
    #: Earliest cycle a column command may issue to this bank.
    next_column: int = 0
    #: Earliest cycle a PRECHARGE may issue to this bank.
    next_precharge: int = 0
    #: Cycle of the last activate (for row-open-time accounting).
    last_activate: int = -1
    #: Pending auto-precharge completion, if any.
    auto_precharge_at: Optional[int] = None
    #: Statistics.
    stat_activates: int = 0
    stat_row_hits: int = 0
    stat_row_misses: int = 0

    @property
    def is_open(self) -> bool:
        return self.open_row is not None

    def is_row_hit(self, row: int) -> bool:
        return self.open_row == row

    # ------------------------------------------------------------------
    # Earliest-time queries (pure).
    # ------------------------------------------------------------------

    def earliest_activate(self, now: int) -> int:
        """Earliest cycle an ACT may issue, ignoring rank/channel limits."""
        t = max(now, self.next_activate)
        if self.auto_precharge_at is not None:
            t = max(t, self.auto_precharge_at + self.params.tRP)
        return t

    def earliest_column(self, now: int, is_read: bool) -> int:
        """Earliest cycle a column command may issue to the open row."""
        if not self.is_open:
            raise RuntimeError("column command to a closed bank")
        del is_read  # direction limits are rank-level (tCCD/tWTR)
        return max(now, self.next_column)

    def earliest_precharge(self, now: int) -> int:
        return max(now, self.next_precharge)

    # ------------------------------------------------------------------
    # State transitions.
    # ------------------------------------------------------------------

    def apply(self, cmd: Command) -> None:
        """Update bank state for a command issued at ``cmd.cycle``,
        validating the bank-level JEDEC constraints first."""
        t = cmd.cycle
        if cmd.type is CommandType.ACTIVATE:
            self._check(t, self.earliest_activate(t), cmd)
        elif cmd.type.is_column:
            self._check(t, self.earliest_column(t, cmd.type.is_read), cmd)
        elif cmd.type is CommandType.PRECHARGE:
            self._check(t, self.earliest_precharge(t), cmd)
        self.apply_trusted(cmd)

    def apply_trusted(self, cmd: Command) -> None:
        """State transition without the validation checks.

        The fast-path engine (:mod:`repro.sim.fastpath`) uses this for
        commands whose legality was proved offline by the pipeline
        solver; the state updates are *identical* to :meth:`apply` so
        every downstream observable (stats, energy, power states) stays
        bit-exact.  Never call this for commands that were not
        pre-validated.
        """
        p = self.params
        t = cmd.cycle
        if cmd.type is CommandType.ACTIVATE:
            self.open_row = cmd.row
            self.last_activate = t
            self.auto_precharge_at = None
            self.next_activate = t + p.tRC
            self.next_column = t + p.tRCD
            self.next_precharge = t + p.tRAS
            self.stat_activates += 1
        elif cmd.type.is_column:
            if cmd.type.is_read:
                # Read-to-precharge and auto-precharge bookkeeping.
                pre_ready = t + p.tRTP
            else:
                pre_ready = t + p.tCWD + p.tBURST + p.tWR
            self.next_precharge = max(self.next_precharge, pre_ready)
            if cmd.type.auto_precharge:
                # The precharge engages as soon as it legally can.
                auto_at = max(
                    pre_ready, self.last_activate + p.tRAS
                )
                self.auto_precharge_at = auto_at
                self.open_row = None
                self.next_activate = max(
                    self.next_activate, auto_at + p.tRP
                )
        elif cmd.type is CommandType.PRECHARGE:
            self.open_row = None
            self.auto_precharge_at = None
            self.next_activate = max(self.next_activate, t + p.tRP)
        elif cmd.type is CommandType.REFRESH:
            # Refresh is issued to a precharged bank; it blocks everything
            # for tRFC.
            self.open_row = None
            self.auto_precharge_at = None
            self.next_activate = max(self.next_activate, t + p.tRFC)
            self.next_precharge = max(self.next_precharge, t + p.tRFC)
        else:
            raise ValueError(f"bank cannot apply {cmd.type}")

    @staticmethod
    def _check(t: int, earliest: int, cmd: Command) -> None:
        if t < earliest:
            raise TimingViolation(
                f"{cmd.type.value} at cycle {t} violates bank timing "
                f"(earliest legal cycle is {earliest})"
            )


class TimingViolation(RuntimeError):
    """Raised when a command is applied earlier than JEDEC allows."""
