"""Deterministic refresh scheduling.

DDR3 requires one all-bank REFRESH per rank every ``tREFI`` on average.
For the secure (FS/TP) controllers the refresh schedule must depend on
nothing but the wall-clock cycle — otherwise refresh deferral would itself
become a timing channel — so the scheduler here is purely clock-driven:
rank ``r`` refreshes at ``phase(r) + k * tREFI``.  Ranks are staggered so
that at most one rank of a channel is refreshing at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .timing import TimingParams


@dataclass(frozen=True)
class RefreshWindow:
    """A scheduled refresh: the REF command issues at ``start`` and the
    rank is unavailable until ``end`` (= start + tRFC)."""

    rank: int
    start: int
    end: int

    def blocks(self, cycle: int) -> bool:
        return self.start <= cycle < self.end


class RefreshScheduler:
    """Clock-driven refresh timetable for the ranks of one channel."""

    def __init__(
        self,
        params: TimingParams,
        num_ranks: int,
        enabled: bool = True,
    ) -> None:
        if num_ranks < 1:
            raise ValueError("need at least one rank")
        self.params = params
        self.num_ranks = num_ranks
        self.enabled = enabled
        #: Per-rank offset of the first refresh; staggering spreads the
        #: tRFC blackouts across the tREFI period.
        self._stride = params.tREFI // max(1, num_ranks)

    def phase(self, rank: int) -> int:
        self._require_valid_rank(rank)
        return rank * self._stride

    def next_refresh(self, rank: int, now: int) -> Optional[RefreshWindow]:
        """The first refresh window for ``rank`` whose start is >= now."""
        if not self.enabled:
            return None
        self._require_valid_rank(rank)
        phase = self.phase(rank)
        if now <= phase:
            start = phase
        else:
            k = -(-(now - phase) // self.params.tREFI)  # ceil division
            start = phase + k * self.params.tREFI
        return RefreshWindow(rank, start, start + self.params.tRFC)

    def current_window(self, rank: int, now: int) -> Optional[RefreshWindow]:
        """The refresh window covering ``now``, if ``rank`` is mid-refresh."""
        if not self.enabled:
            return None
        self._require_valid_rank(rank)
        phase = self.phase(rank)
        if now < phase:
            return None
        k = (now - phase) // self.params.tREFI
        start = phase + k * self.params.tREFI
        window = RefreshWindow(rank, start, start + self.params.tRFC)
        return window if window.blocks(now) else None

    def blocked_until(self, rank: int, cycle: int) -> int:
        """First cycle >= ``cycle`` at which ``rank`` is not refreshing."""
        window = self.current_window(rank, cycle)
        return window.end if window is not None else cycle

    def windows_between(
        self, rank: int, start: int, end: int
    ) -> List[RefreshWindow]:
        """All refresh windows for ``rank`` intersecting [start, end)."""
        if not self.enabled or end <= start:
            return []
        out: List[RefreshWindow] = []
        current = self.current_window(rank, start)
        if current is not None:
            out.append(current)
        cursor = start
        while True:
            nxt = self.next_refresh(rank, cursor)
            assert nxt is not None
            if nxt.start >= end:
                break
            if not out or nxt.start > out[-1].start:
                out.append(nxt)
            cursor = nxt.start + 1
        return out

    def _require_valid_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range")
