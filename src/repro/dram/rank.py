"""Per-rank DRAM state: tRRD/tFAW activation windows, column turnaround,
power modes, and energy counters.

The banks of a rank share charge pumps and I/O, so activates are limited by
``tRRD`` (pairwise) and ``tFAW`` (four per sliding window), and column
commands by ``tCCD`` plus the read/write turnaround delays.  The rank also
tracks power-state residency so the Micron-style power model can price
background energy.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from .bank import Bank, TimingViolation
from .commands import Command, CommandType
from .timing import TimingParams


class PowerState(enum.Enum):
    """Rank power states (a subset of the DDR3 state machine)."""

    ACTIVE = "active"          # at least one bank open, clock on
    PRECHARGED = "precharged"  # all banks closed, clock on
    POWER_DOWN = "power_down"  # fast-exit precharge power-down


@dataclass
class RankEnergyCounters:
    """Raw activity counts consumed by :mod:`repro.dram.power`."""

    activates: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    cycles_active: int = 0
    cycles_precharged: int = 0
    cycles_power_down: int = 0

    def total_cycles(self) -> int:
        return (
            self.cycles_active
            + self.cycles_precharged
            + self.cycles_power_down
        )


class Rank:
    """One rank: a set of banks plus rank-level constraints."""

    def __init__(self, params: TimingParams, num_banks: int = 8) -> None:
        if num_banks < 1:
            raise ValueError("a rank needs at least one bank")
        self.params = params
        self.banks: List[Bank] = [Bank(params) for _ in range(num_banks)]
        #: Issue cycles of recent activates (for tFAW window).
        self._act_times: Deque[int] = deque(maxlen=4)
        self._last_act: int = -(10**9)
        #: Last column command issue cycle and direction.
        self._last_col: int = -(10**9)
        self._last_col_was_read: bool = True
        self.power_state: PowerState = PowerState.PRECHARGED
        self._power_until: int = 0  # earliest cycle a command may issue
        self._state_since: int = 0
        self.energy = RankEnergyCounters()

    # ------------------------------------------------------------------
    # Earliest-time queries.
    # ------------------------------------------------------------------

    def earliest_activate(self, now: int, bank: int) -> int:
        t = self.banks[bank].earliest_activate(now)
        t = max(t, self._last_act + self.params.tRRD, self._power_until)
        if len(self._act_times) == 4:
            t = max(t, self._act_times[0] + self.params.tFAW)
        return t

    def earliest_column_rank_level(self, now: int, is_read: bool) -> int:
        """Rank-level column bound only (tCCD / turnaround / power),
        ignoring per-bank state — for planning a column that will follow
        an activate not yet issued."""
        t = max(now, self._power_until)
        if self._last_col_was_read == is_read:
            gap = self.params.tCCD
        elif is_read:
            gap = self.params.write_to_read
        else:
            gap = self.params.read_to_write
        return max(t, self._last_col + gap)

    def earliest_column(self, now: int, bank: int, is_read: bool) -> int:
        t = self.banks[bank].earliest_column(now, is_read)
        return self.earliest_column_rank_level(t, is_read)

    def earliest_precharge(self, now: int, bank: int) -> int:
        return max(self.banks[bank].earliest_precharge(now),
                   self._power_until)

    def earliest_refresh(self, now: int) -> int:
        """Refresh needs all banks precharged; report when that holds."""
        t = max(now, self._power_until)
        for bank in self.banks:
            if bank.is_open:
                # Caller must precharge first; report the bound assuming a
                # precharge issued as early as possible.
                t = max(t, bank.earliest_precharge(now) + self.params.tRP)
            else:
                t = max(t, bank.next_activate)
                if bank.auto_precharge_at is not None:
                    t = max(t, bank.auto_precharge_at + self.params.tRP)
        return t

    # ------------------------------------------------------------------
    # State transitions.
    # ------------------------------------------------------------------

    def apply(self, cmd: Command) -> None:
        """Validate the rank-level JEDEC constraints, then transition."""
        t = cmd.cycle
        if cmd.type is CommandType.ACTIVATE:
            lower = self.earliest_activate(t, cmd.bank)
            if t < lower:
                raise TimingViolation(
                    f"ACT at {t} violates rank constraint "
                    f"(earliest {lower})"
                )
        elif cmd.type.is_column:
            lower = self.earliest_column(t, cmd.bank, cmd.type.is_read)
            if t < lower:
                raise TimingViolation(
                    f"{cmd.type.value} at {t} violates rank constraint "
                    f"(earliest {lower})"
                )
        elif cmd.type is CommandType.REFRESH:
            lower = self.earliest_refresh(t)
            if t < lower:
                raise TimingViolation(
                    f"REF at {t} violates rank constraint (earliest {lower})"
                )
        elif cmd.type is CommandType.POWER_DOWN:
            if self.any_bank_open:
                raise TimingViolation("power-down with open banks")
        elif cmd.type is CommandType.POWER_UP:
            if self.power_state is not PowerState.POWER_DOWN:
                raise TimingViolation("power-up while not powered down")
        self._transition(cmd, checked=True)

    def apply_trusted(self, cmd: Command) -> None:
        """State transition without the validation checks.

        Used by the fast-path engine for command streams whose legality
        was proved offline (the Fixed Service timetables).  Performs the
        *same* state and energy updates as :meth:`apply`, in the same
        order, so power-state residency and energy counters stay
        bit-identical with the checked path.
        """
        self._transition(cmd, checked=False)

    def _transition(self, cmd: Command, checked: bool) -> None:
        t = cmd.cycle
        if cmd.type is CommandType.ACTIVATE:
            self._account_state(t)
            self._act_times.append(t)
            self._last_act = t
            self.energy.activates += 1
            bank = self.banks[cmd.bank]
            bank.apply(cmd) if checked else bank.apply_trusted(cmd)
            self._enter(PowerState.ACTIVE, t)
        elif cmd.type.is_column:
            self._last_col = t
            self._last_col_was_read = cmd.type.is_read
            if cmd.type.is_read:
                self.energy.reads += 1
            else:
                self.energy.writes += 1
            bank = self.banks[cmd.bank]
            bank.apply(cmd) if checked else bank.apply_trusted(cmd)
            if cmd.type.auto_precharge and not self.any_bank_open:
                self._account_state(t)
                self._enter(PowerState.PRECHARGED, t)
        elif cmd.type is CommandType.PRECHARGE:
            bank = self.banks[cmd.bank]
            bank.apply(cmd) if checked else bank.apply_trusted(cmd)
            if not self.any_bank_open:
                self._account_state(t)
                self._enter(PowerState.PRECHARGED, t)
        elif cmd.type is CommandType.REFRESH:
            self._account_state(t)
            self.energy.refreshes += 1
            for bank in self.banks:
                bank.apply(cmd) if checked else bank.apply_trusted(cmd)
            self._enter(PowerState.PRECHARGED, t)
        elif cmd.type is CommandType.POWER_DOWN:
            self._account_state(t)
            self._enter(PowerState.POWER_DOWN, t)
            self._power_until = t + self.params.tCKE
        elif cmd.type is CommandType.POWER_UP:
            self._account_state(t)
            self._enter(PowerState.PRECHARGED, t)
            self._power_until = t + self.params.tXP
        else:  # pragma: no cover - defensive
            raise ValueError(f"rank cannot apply {cmd.type}")

    @property
    def any_bank_open(self) -> bool:
        # Plain loop over ``open_row`` slots: this runs once per column/
        # precharge command, and the generator frame of an ``any(...)``
        # genexpr is measurable there.
        for bank in self.banks:
            if bank.open_row is not None:
                return True
        return False

    def finalize(self, end_cycle: int) -> None:
        """Close the power-state accounting at the end of simulation."""
        self._account_state(end_cycle)

    def _enter(self, state: PowerState, t: int) -> None:
        self.power_state = state
        self._state_since = t

    def _account_state(self, t: int) -> None:
        span = max(0, t - self._state_since)
        if self.power_state is PowerState.ACTIVE:
            self.energy.cycles_active += span
        elif self.power_state is PowerState.PRECHARGED:
            self.energy.cycles_precharged += span
        else:
            self.energy.cycles_power_down += span
        self._state_since = t
