"""Independent JEDEC timing validator.

:class:`TimingChecker` replays a finished command stream against the raw
pairwise DDR3 constraints.  It deliberately does *not* share code with the
:class:`~repro.dram.bank.Bank` / :class:`~repro.dram.rank.Rank` state
machines: the two implementations cross-check each other, which is how the
tests establish that the FS schedules produced by the constraint solver are
genuinely conflict-free (the paper's central claim in Section 3).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from .commands import Command, CommandType
from .timing import TimingParams


@dataclass
class Violation:
    """One detected constraint violation."""

    rule: str
    first: Command
    second: Command
    required_gap: int
    actual_gap: int

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return (
            f"{self.rule}: {self.first.type.value}@{self.first.cycle} -> "
            f"{self.second.type.value}@{self.second.cycle} needs "
            f">= {self.required_gap}, got {self.actual_gap}"
        )


class TimingChecker:
    """Validate a per-channel command stream against JEDEC constraints."""

    def __init__(self, params: TimingParams) -> None:
        self.params = params

    # ------------------------------------------------------------------

    def check(self, commands: Iterable[Command]) -> List[Violation]:
        """Return every violation found in the stream (empty == legal).

        Channels have private command/address/data buses, so the stream
        is checked per channel.
        """
        by_channel: Dict[int, List[Command]] = defaultdict(list)
        for cmd in commands:
            by_channel[cmd.channel].append(cmd)
        violations: List[Violation] = []
        for channel_cmds in by_channel.values():
            cmds = sorted(
                channel_cmds, key=lambda c: (c.cycle, c.type.value)
            )
            violations.extend(self._check_command_bus(cmds))
            violations.extend(self._check_data_bus(cmds))
            violations.extend(self._check_bank_rules(cmds))
            violations.extend(self._check_rank_rules(cmds))
        return violations

    # ------------------------------------------------------------------

    @staticmethod
    def _check_command_bus(cmds: List[Command]) -> List[Violation]:
        out: List[Violation] = []
        by_cycle: Dict[int, List[Command]] = defaultdict(list)
        for cmd in cmds:
            if cmd.type in (CommandType.POWER_DOWN, CommandType.POWER_UP):
                continue
            by_cycle[cmd.cycle].append(cmd)
        for cycle, group in by_cycle.items():
            if len(group) > 1:
                out.append(
                    Violation("command-bus", group[0], group[1], 1, 0)
                )
        return out

    def _check_data_bus(self, cmds: List[Command]) -> List[Violation]:
        p = self.params
        out: List[Violation] = []
        transfers: List[Tuple[int, int, Command]] = []  # (start, rank, cmd)
        for cmd in cmds:
            if not cmd.type.is_column:
                continue
            offset = p.tCAS if cmd.type.is_read else p.tCWD
            transfers.append((cmd.cycle + offset, cmd.rank, cmd))
        transfers.sort(key=lambda t: t[0])
        for (s1, r1, c1), (s2, r2, c2) in zip(transfers, transfers[1:]):
            gap = p.tBURST if r1 == r2 else p.tBURST + p.tRTRS
            if s2 - s1 < gap:
                out.append(Violation("data-bus", c1, c2, gap, s2 - s1))
        return out

    def _check_bank_rules(self, cmds: List[Command]) -> List[Violation]:
        p = self.params
        out: List[Violation] = []
        per_bank: Dict[Tuple[int, int], List[Command]] = defaultdict(list)
        for cmd in cmds:
            if cmd.type is CommandType.REFRESH:
                # Refresh hits every bank of the rank.
                continue
            if cmd.bank >= 0:
                per_bank[(cmd.rank, cmd.bank)].append(cmd)
        for stream in per_bank.values():
            out.extend(self._check_one_bank(stream))
        # Refresh interactions, per rank.
        per_rank: Dict[int, List[Command]] = defaultdict(list)
        for cmd in cmds:
            per_rank[cmd.rank].append(cmd)
        for stream in per_rank.values():
            refreshes = [c for c in stream if c.type is CommandType.REFRESH]
            for ref in refreshes:
                for cmd in stream:
                    if cmd is ref or cmd.type is CommandType.REFRESH:
                        continue
                    if ref.cycle <= cmd.cycle < ref.cycle + p.tRFC:
                        out.append(
                            Violation("tRFC", ref, cmd, p.tRFC,
                                      cmd.cycle - ref.cycle)
                        )
        return out

    def _check_one_bank(self, stream: List[Command]) -> List[Violation]:
        """Sequential per-bank rules: tRC, tRCD, tRAS, tRTP, tWR, tRP."""
        p = self.params
        out: List[Violation] = []
        acts = [c for c in stream if c.type is CommandType.ACTIVATE]
        for a1, a2 in zip(acts, acts[1:]):
            if a2.cycle - a1.cycle < p.tRC:
                out.append(Violation("tRC", a1, a2, p.tRC,
                                     a2.cycle - a1.cycle))
        # Column commands must follow their activate by tRCD, and (with
        # auto-precharge) imply a precharge whose tRP must elapse before
        # the next activate.
        last_act: Command = None  # type: ignore[assignment]
        implied_pre_done = -(10**9)
        for cmd in stream:
            if cmd.type is CommandType.ACTIVATE:
                if cmd.cycle < implied_pre_done:
                    out.append(
                        Violation("tRP(auto)", last_act, cmd,
                                  0, cmd.cycle - implied_pre_done)
                    )
                last_act = cmd
            elif cmd.type.is_column:
                if last_act is None:
                    out.append(Violation("no-activate", cmd, cmd, 0, 0))
                    continue
                if cmd.cycle - last_act.cycle < p.tRCD:
                    out.append(
                        Violation("tRCD", last_act, cmd, p.tRCD,
                                  cmd.cycle - last_act.cycle)
                    )
                if cmd.type.auto_precharge:
                    if cmd.type.is_read:
                        pre_at = max(cmd.cycle + p.tRTP,
                                     last_act.cycle + p.tRAS)
                    else:
                        pre_at = max(
                            cmd.cycle + p.tCWD + p.tBURST + p.tWR,
                            last_act.cycle + p.tRAS,
                        )
                    implied_pre_done = pre_at + p.tRP
            elif cmd.type is CommandType.PRECHARGE:
                if last_act is not None:
                    if cmd.cycle - last_act.cycle < p.tRAS:
                        out.append(
                            Violation("tRAS", last_act, cmd, p.tRAS,
                                      cmd.cycle - last_act.cycle)
                        )
                implied_pre_done = cmd.cycle + p.tRP
        return out

    def _check_rank_rules(self, cmds: List[Command]) -> List[Violation]:
        """tRRD, tFAW, tCCD and read/write turnaround, per rank."""
        p = self.params
        out: List[Violation] = []
        per_rank: Dict[int, List[Command]] = defaultdict(list)
        for cmd in cmds:
            per_rank[cmd.rank].append(cmd)
        for stream in per_rank.values():
            acts = [c for c in stream if c.type is CommandType.ACTIVATE]
            for a1, a2 in zip(acts, acts[1:]):
                if a2.cycle - a1.cycle < p.tRRD:
                    out.append(Violation("tRRD", a1, a2, p.tRRD,
                                         a2.cycle - a1.cycle))
            for i in range(len(acts) - 4):
                a1, a5 = acts[i], acts[i + 4]
                if a5.cycle - a1.cycle < p.tFAW:
                    out.append(Violation("tFAW", a1, a5, p.tFAW,
                                         a5.cycle - a1.cycle))
            cols = [c for c in stream if c.type.is_column]
            for c1, c2 in zip(cols, cols[1:]):
                gap = c2.cycle - c1.cycle
                if c1.type.is_read == c2.type.is_read:
                    need = p.tCCD
                    rule = "tCCD"
                elif c1.type.is_read:
                    need = p.read_to_write
                    rule = "rd->wr"
                else:
                    need = p.write_to_read
                    rule = "wr->rd(tWTR)"
                if gap < need:
                    out.append(Violation(rule, c1, c2, need, gap))
        return out
