"""Multi-channel DRAM system wrapper."""

from __future__ import annotations

from typing import Iterable, List

from .channel import Channel
from .timing import TimingParams, DDR3_1600_X4


class DramSystem:
    """A set of independent channels sharing one set of timing parameters.

    Channels have private command/address/data buses, so there is no
    cross-channel timing interaction; the wrapper exists for configuration
    and aggregate statistics.
    """

    def __init__(
        self,
        params: TimingParams = DDR3_1600_X4,
        num_channels: int = 1,
        ranks_per_channel: int = 8,
        banks_per_rank: int = 8,
    ) -> None:
        if num_channels < 1:
            raise ValueError("need at least one channel")
        self.params = params
        self.channels: List[Channel] = [
            Channel(params, ranks_per_channel, banks_per_rank, channel_id=c)
            for c in range(num_channels)
        ]

    @property
    def num_channels(self) -> int:
        return len(self.channels)

    @property
    def ranks_per_channel(self) -> int:
        return len(self.channels[0].ranks)

    @property
    def banks_per_rank(self) -> int:
        return self.channels[0].num_banks

    @property
    def total_banks(self) -> int:
        return (
            self.num_channels * self.ranks_per_channel * self.banks_per_rank
        )

    def finalize(self, end_cycle: int) -> None:
        for channel in self.channels:
            channel.finalize(end_cycle)

    def total_data_cycles(self) -> int:
        return sum(ch.stat_data_cycles for ch in self.channels)

    def bus_utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return self.total_data_cycles() / (
            elapsed_cycles * self.num_channels
        )
