"""DDR3 timing parameters.

All values are integers in DRAM *bus* cycles unless stated otherwise.  At
DDR3-1600 the bus clock is 800 MHz, so one cycle is 1.25 ns and a burst of
eight (one 64-byte cache line over a 64-bit channel) occupies the data bus
for ``tBURST = 4`` cycles (double data rate).

The default parameter set, :data:`DDR3_1600_X4`, is the configuration from
Table 1 of the paper (a 4 Gb x4 DDR3-1600 part).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class TimingParams:
    """JEDEC DDR3 timing constraints, in memory (bus) cycles.

    The attribute names follow the JEDEC / USIMM conventions used in the
    paper.  Where the paper derives compound delays, the same derivations
    are exposed as properties (:attr:`read_to_write`, :attr:`write_to_read`,
    etc.) so that the constraint solver, the schedulers, and the timing
    checker all share one definition.
    """

    #: Activate to read/write delay (row address to column address).
    tRCD: int = 11
    #: Column-read to first data on the bus (CAS latency).
    tCAS: int = 11
    #: Column-write to first data on the bus (CAS write latency).
    tCWD: int = 5
    #: Data bus occupancy of one cache-line transfer (burst of 8, DDR).
    tBURST: int = 4
    #: Activate to precharge (minimum row-open time).
    tRAS: int = 28
    #: Precharge to activate (row close time).
    tRP: int = 11
    #: Activate to activate, same bank (= tRAS + tRP).
    tRC: int = 39
    #: Activate to activate, different banks of the same rank.
    tRRD: int = 5
    #: Sliding window: at most four activates to one rank per tFAW.
    tFAW: int = 24
    #: Write recovery: last write data to precharge, same bank.
    tWR: int = 12
    #: Internal write-to-read turnaround, same rank.
    tWTR: int = 6
    #: Read to precharge, same bank.
    tRTP: int = 6
    #: Column command to column command, same rank (burst gap).
    tCCD: int = 4
    #: Rank-to-rank data bus switching penalty.
    tRTRS: int = 2
    #: Average refresh interval, in cycles (7.8 us at 1.25 ns/cycle).
    tREFI: int = 6240
    #: Refresh cycle time, in cycles (260 ns at 1.25 ns/cycle).
    tRFC: int = 208
    #: Command bus occupancy of one command.
    tCMD: int = 1
    #: Power-down exit latency (fast-exit precharge power-down).
    tXP: int = 5
    #: Power-down entry latency.
    tCKE: int = 4

    def __post_init__(self) -> None:
        if self.tRC < self.tRAS + self.tRP:
            raise ValueError(
                f"tRC ({self.tRC}) must cover tRAS + tRP "
                f"({self.tRAS} + {self.tRP})"
            )
        for name in (
            "tRCD", "tCAS", "tCWD", "tBURST", "tRAS", "tRP", "tRRD",
            "tFAW", "tWR", "tWTR", "tRTP", "tCCD", "tRTRS", "tREFI",
            "tRFC", "tCMD", "tXP", "tCKE",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # ------------------------------------------------------------------
    # Compound delays used throughout the paper's equations.
    # ------------------------------------------------------------------

    @property
    def read_to_write(self) -> int:
        """Column-read to column-write gap, same rank (paper: Rd2Wr = 10)."""
        return self.tCAS + self.tBURST - self.tCWD

    @property
    def write_to_read(self) -> int:
        """Column-write to column-read gap, same rank (paper: Wr2Rd = 15)."""
        return self.tCWD + self.tBURST + self.tWTR

    @property
    def read_act_offset(self) -> int:
        """Activate-to-data offset for a read (tRCD + tCAS = 22)."""
        return self.tRCD + self.tCAS

    @property
    def write_act_offset(self) -> int:
        """Activate-to-data offset for a write (tRCD + tCWD = 16)."""
        return self.tRCD + self.tCWD

    @property
    def write_turnaround_same_bank(self) -> int:
        """Worst-case activate-to-activate gap, same bank, write then read.

        A write's activate at 0 puts data on the bus during
        ``[write_act_offset, write_act_offset + tBURST)``; the precharge may
        only issue ``tWR`` after the last data beat, and the next activate
        ``tRP`` after that.  For the Table-1 part this is 43 cycles — the
        paper's no-partitioning slot gap.
        """
        return self.write_act_offset + self.tBURST + self.tWR + self.tRP

    def data_gap(self, same_rank: bool, same_type: bool,
                 first_is_write: bool) -> int:
        """Minimum start-to-start gap between two data-bus transfers.

        ``same_rank`` selects whether the tRTRS switching penalty applies;
        for same-rank transfers of different type the read/write turnaround
        delays dominate.
        """
        if not same_rank:
            return self.tBURST + self.tRTRS
        if same_type:
            return max(self.tBURST, self.tCCD)
        if first_is_write:
            # Data positions: write data at CW + tCWD, read data at
            # CR + tCAS, with CR >= CW + write_to_read.
            return self.write_to_read - self.tCWD + self.tCAS
        return self.read_to_write - self.tCAS + self.tCWD

    def scaled(self, **overrides: int) -> "TimingParams":
        """Return a copy with selected fields replaced (for sweeps)."""
        return replace(self, **overrides)


#: Table 1 of the paper: 4 Gb DDR3-1600 (1.25 ns bus cycle).
DDR3_1600_X4 = TimingParams()

#: A slower part, used in sensitivity tests.
DDR3_1066 = TimingParams(
    tRCD=8, tCAS=8, tCWD=6, tBURST=4, tRAS=20, tRP=8, tRC=28,
    tRRD=4, tFAW=20, tWR=8, tWTR=4, tRTP=4, tCCD=4, tRTRS=2,
    tREFI=4160, tRFC=139,
)

#: A DDR4-2400 part (0.833 ns bus cycle) — the paper cites the DDR4
#: JEDEC standard; the solver handles it like any other parameter set.
DDR4_2400 = TimingParams(
    tRCD=16, tCAS=16, tCWD=12, tBURST=4, tRAS=39, tRP=16, tRC=55,
    tRRD=6, tFAW=26, tWR=18, tWTR=9, tRTP=9, tCCD=6, tRTRS=2,
    tREFI=9363, tRFC=420,
)


@dataclass(frozen=True)
class ClockDomain:
    """Relates CPU time to DRAM bus time.

    The paper's system runs 3.2 GHz cores against an 800 MHz DDR3-1600 bus,
    i.e. four CPU cycles per memory cycle.
    """

    cpu_per_mem_cycle: int = 4
    mem_cycle_ns: float = 1.25

    def __post_init__(self) -> None:
        if self.cpu_per_mem_cycle < 1:
            raise ValueError("cpu_per_mem_cycle must be >= 1")
        if self.mem_cycle_ns <= 0:
            raise ValueError("mem_cycle_ns must be positive")

    def cpu_cycles(self, mem_cycles: int) -> int:
        return mem_cycles * self.cpu_per_mem_cycle

    def ns(self, mem_cycles: int) -> float:
        return mem_cycles * self.mem_cycle_ns


DEFAULT_CLOCK = ClockDomain()
