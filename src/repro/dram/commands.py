"""DRAM command and memory-transaction types.

A *transaction* is a cache-line read or write as seen by the memory
controller; it decomposes into DRAM *commands* (ACTIVATE, COL_READ,
COL_WRITE, PRECHARGE, REFRESH, power-mode changes).  Commands carry the
cycle at which they were put on the command bus, which is what the timing
checker and the security invariants inspect.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional


class CommandType(enum.Enum):
    """The DDR3 command set modelled by this simulator.

    ``is_column`` / ``is_read`` / ``is_write`` / ``auto_precharge`` are
    plain per-member attributes (filled in right below the class body):
    they sit on every scheduler's innermost loop, where a property call
    per query is measurable simulator overhead.
    """

    ACTIVATE = "ACT"
    COL_READ = "RD"
    COL_WRITE = "WR"
    #: Column read/write with auto-precharge (the FS default).
    COL_READ_AP = "RDA"
    COL_WRITE_AP = "WRA"
    PRECHARGE = "PRE"
    REFRESH = "REF"
    POWER_DOWN = "PDN"
    POWER_UP = "PUP"

    is_column: bool
    is_read: bool
    is_write: bool
    auto_precharge: bool


_COLUMN_COMMANDS = frozenset(
    {
        CommandType.COL_READ,
        CommandType.COL_WRITE,
        CommandType.COL_READ_AP,
        CommandType.COL_WRITE_AP,
    }
)

for _member in CommandType:
    _member.is_column = _member in _COLUMN_COMMANDS
    _member.is_read = _member in (
        CommandType.COL_READ, CommandType.COL_READ_AP
    )
    _member.is_write = _member in (
        CommandType.COL_WRITE, CommandType.COL_WRITE_AP
    )
    _member.auto_precharge = _member in (
        CommandType.COL_READ_AP, CommandType.COL_WRITE_AP
    )
del _member


class OpType(enum.Enum):
    """Transaction direction."""

    READ = "read"
    WRITE = "write"

    is_read: bool


OpType.READ.is_read = True
OpType.WRITE.is_read = False


class RequestKind(enum.Enum):
    """Why a transaction exists; the FS shaper distinguishes these."""

    DEMAND = "demand"
    PREFETCH = "prefetch"
    DUMMY = "dummy"


_request_ids = itertools.count()


@dataclass
class Address:
    """A decoded DRAM address."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    def same_bank(self, other: "Address") -> bool:
        return (
            self.channel == other.channel
            and self.rank == other.rank
            and self.bank == other.bank
        )

    def same_rank(self, other: "Address") -> bool:
        return self.channel == other.channel and self.rank == other.rank

    def bank_key(self) -> tuple:
        return (self.channel, self.rank, self.bank)


@dataclass
class Request:
    """A memory transaction travelling through the controller.

    Timestamps are in memory cycles: ``arrival`` when the transaction
    entered the controller, ``issue`` when its first command went on the
    bus, ``data_start`` when its burst began, ``completion`` when the data
    burst finished (for reads this is when the line is returned, unless a
    scheme deliberately delays the return — see ``release``).
    """

    op: OpType
    address: Address
    domain: int = 0
    kind: RequestKind = RequestKind.DEMAND
    arrival: int = 0
    #: Domain-local line address (pre-mapping), used by the prefetcher.
    line: Optional[int] = None
    core_tag: Optional[object] = None
    req_id: int = field(default_factory=lambda: next(_request_ids))

    issue: Optional[int] = None
    data_start: Optional[int] = None
    completion: Optional[int] = None
    #: When the result was released to the core (>= completion; FS
    #: reordered-BP holds read results until the end of the interval).
    release: Optional[int] = None
    row_hit: bool = False
    suppressed: bool = False

    def __post_init__(self) -> None:
        # Cached direction flag: queried far more often than requests
        # are built (every scheduler pick / hazard check), and ``op``
        # never changes after construction.
        self.is_read = self.op is OpType.READ

    @property
    def latency(self) -> Optional[int]:
        """Arrival-to-release latency in memory cycles, if finished."""
        if self.release is None:
            return None
        return self.release - self.arrival

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request({self.op.value} d{self.domain} {self.kind.value} "
            f"ch{self.address.channel} r{self.address.rank} "
            f"b{self.address.bank} row{self.address.row} "
            f"arr={self.arrival})"
        )


@dataclass(frozen=True)
class Command:
    """A command as it appeared on the command bus."""

    type: CommandType
    cycle: int
    channel: int
    rank: int
    bank: int = -1
    row: int = -1
    request_id: int = -1
    domain: int = -1

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("command cycle must be non-negative")
