"""DDR3 DRAM substrate: timing, banks/ranks/channels, refresh, power.

This package is the cycle-level memory model all controllers (secure and
non-secure) schedule against.  Everything is expressed in integer memory
cycles; see :mod:`repro.dram.timing` for the Table-1 parameter set.
"""

from .timing import (
    TimingParams,
    ClockDomain,
    DDR3_1600_X4,
    DDR3_1066,
    DDR4_2400,
    DEFAULT_CLOCK,
)
from .commands import (
    Address,
    Command,
    CommandType,
    OpType,
    Request,
    RequestKind,
)
from .bank import Bank, TimingViolation
from .rank import Rank, RankEnergyCounters, PowerState
from .channel import Channel, DataReservation
from .system import DramSystem
from .refresh import RefreshScheduler, RefreshWindow
from .checker import TimingChecker, Violation
from .power import (
    DramPowerParams,
    EnergyBreakdown,
    PowerModel,
    MICRON_4GB_DDR3_1600,
    ZERO_ENERGY,
)

__all__ = [
    "TimingParams", "ClockDomain", "DDR3_1600_X4", "DDR3_1066",
    "DDR4_2400", "DEFAULT_CLOCK",
    "Address", "Command", "CommandType", "OpType", "Request", "RequestKind",
    "Bank", "TimingViolation",
    "Rank", "RankEnergyCounters", "PowerState",
    "Channel", "DataReservation",
    "DramSystem",
    "RefreshScheduler", "RefreshWindow",
    "TimingChecker", "Violation",
    "DramPowerParams", "EnergyBreakdown", "PowerModel",
    "MICRON_4GB_DDR3_1600", "ZERO_ENERGY",
]
