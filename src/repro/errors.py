"""Structured exception hierarchy for the whole simulation stack.

Every error the toolkit raises on purpose derives from :class:`ReproError`
so callers (the CLI, the sweep driver, CI harnesses) can distinguish
"this experiment is mis-specified / this run broke an invariant" from a
genuine bug in the simulator:

* :class:`ConfigError` — an experiment was requested with an impossible
  or inconsistent platform configuration (e.g. a rank-partitioned scheme
  with fewer ranks than security domains).
* :class:`SchemeError` — a scheme name is unknown to the scheme
  registry, a spec is malformed, or a registration conflicts with an
  existing one (subclass of :class:`ConfigError`).
* :class:`TraceError` — a workload trace is malformed or violates the
  trace contract (bad direction, non-hex address, negative gap).
* :class:`ScheduleViolationError` — the online invariant watchdog caught
  the controller deviating from its fixed timetable *while the run was
  still in flight*.  This is the security-critical one: a deviation is a
  potential timing channel, so the run must stop the cycle it happens.
* :class:`FaultInjectionError` — a fault-injection campaign was
  mis-specified (unknown fault kind, rate out of range).
* :class:`SimTimeoutError` — a run exceeded its cycle or wall-clock
  budget; sweeps record these and move on instead of aborting the grid.
* :class:`TelemetryError` — the observability layer was misused (metric
  re-registered with a different shape, unwritable trace/metrics sink).
* :class:`StoreError` — the content-addressed result store
  (:mod:`repro.store`) was pointed at an unusable root (a path that
  exists but is not a directory, or one that cannot be created).
  Deliberately *not* raised for corrupt cache entries: those are
  evicted and recomputed, because a cache must never fail a run it
  could instead warm up.
* :class:`ExecError` — the execution substrate (:mod:`repro.exec`) hit a
  state it must not repair silently, e.g. an unparseable (truncated or
  corrupt) checkpoint file.  Deliberately distinct from a merely
  *incompatible* checkpoint, which every consumer treats as "start
  fresh".

``ConfigError`` and ``TraceError`` also subclass :class:`ValueError` so
pre-existing callers that caught ``ValueError`` keep working.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for every intentional error raised by this package."""


class ConfigError(ReproError, ValueError):
    """An experiment configuration is invalid or internally inconsistent."""


class SchemeError(ConfigError):
    """A scheme name or :class:`~repro.schemes.SchemeSpec` is invalid.

    Raised by the scheme registry for unknown scheme names (the message
    carries the list of registered names), conflicting re-registrations,
    and malformed specs.  Subclasses :class:`ConfigError` (and therefore
    ``ValueError``) so historical ``except ValueError`` call sites keep
    working.
    """

    def __init__(self, reason: str, known=None) -> None:
        if known:
            reason = f"{reason}; known schemes: {', '.join(known)}"
        super().__init__(reason)
        self.known = tuple(known) if known else ()


class TraceError(ReproError, ValueError):
    """A workload trace is malformed or breaks the trace contract."""


class ScheduleViolationError(ReproError):
    """The online watchdog caught a deviation from the FS timetable.

    Carries the security domain whose isolation was broken and the memory
    cycle at which the deviation became observable, so a log line alone
    pinpoints the breach.
    """

    def __init__(
        self,
        reason: str,
        domain: Optional[int] = None,
        cycle: Optional[int] = None,
    ) -> None:
        detail = reason
        if domain is not None or cycle is not None:
            where = []
            if domain is not None:
                where.append(f"domain {domain}")
            if cycle is not None:
                where.append(f"cycle {cycle}")
            detail = f"{' @ '.join(where)}: {reason}"
        super().__init__(detail)
        self.reason = reason
        self.domain = domain
        self.cycle = cycle


class FaultInjectionError(ReproError):
    """A fault-injection campaign is mis-specified."""


class SimTimeoutError(ReproError):
    """A simulation exceeded its cycle or wall-clock budget."""

    def __init__(self, reason: str, cycle: Optional[int] = None) -> None:
        super().__init__(reason)
        self.cycle = cycle


class ExecError(ReproError):
    """The execution substrate refused to proceed.

    Raised by :mod:`repro.exec` when continuing would silently lose or
    corrupt experiment state — today that means a checkpoint file that
    exists but cannot be parsed (truncated write, disk corruption,
    hand-editing gone wrong).  A *schema-incompatible* checkpoint is not
    an error: consumers discard it and start fresh, because an old file
    carries no information this build can misinterpret.  An unparseable
    one is ambiguous — it may be hours of completed work — so the
    substrate stops and names the path instead of quietly re-running
    everything.
    """


class StoreError(ReproError):
    """The content-addressed result store cannot use its root directory.

    Raised by :mod:`repro.store` when the configured store root (explicit
    path, ``REPRO_STORE_DIR``, or the default ``~/.cache/repro-store``)
    exists but is not a directory, or cannot be created.  Everything else
    the store encounters — corrupt entries, schema-version mismatches,
    unpicklable results, a read-only object tree — degrades to a cache
    miss with a warning, never an exception: caching is an accelerator,
    not a correctness dependency.
    """


class TelemetryError(ReproError):
    """Telemetry misuse: bad metric registration, unwritable sink, ...

    Raised by :mod:`repro.telemetry` for programming errors (re-registering
    a metric with a different kind or label set, wrong labels on a sample)
    and for environment problems (a trace/metrics output path that cannot
    be written).  Never raised from the simulation hot path once a session
    is attached — collection itself is infallible by design.
    """


__all__ = [
    "ReproError",
    "ConfigError",
    "SchemeError",
    "TraceError",
    "ScheduleViolationError",
    "FaultInjectionError",
    "SimTimeoutError",
    "ExecError",
    "StoreError",
    "TelemetryError",
]
