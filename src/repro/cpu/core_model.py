"""Event-driven out-of-order core model (USIMM-style).

Models exactly the coupling the evaluation metric depends on: a ``W``-wide
core with an ``R``-entry reorder buffer fetches instructions in order;
non-memory instructions complete immediately; a read occupies its ROB slot
until the memory system returns it (blocking retirement, and eventually
fetch, behind it); writes are posted.  Everything is computed analytically
per memory operation — no per-instruction or per-cycle stepping — so the
model is exact under its own rules and fast.

Time is kept in *ticks*: one tick is one issue slot, i.e. ``1 / W`` of a
CPU cycle.  With the paper's 4-wide cores at four CPU cycles per DRAM
cycle, one DRAM cycle is 16 ticks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional, Tuple

from ..dram.commands import OpType, Request, RequestKind
from ..dram.timing import ClockDomain
from .trace import Trace, TraceRecord


@dataclass(frozen=True)
class CoreParams:
    """Microarchitectural knobs (paper Table 1 defaults)."""

    rob_size: int = 64
    width: int = 4
    cpu_per_mem_cycle: int = 4

    def __post_init__(self) -> None:
        if self.rob_size < 1 or self.width < 1 or self.cpu_per_mem_cycle < 1:
            raise ValueError("core parameters must be positive")

    @property
    def ticks_per_mem_cycle(self) -> int:
        return self.width * self.cpu_per_mem_cycle


@dataclass
class _PendingRead:
    instr_index: int
    request: Request
    completion_tick: Optional[int] = None
    retire_tick: Optional[int] = None


class Core:
    """One trace-driven core attached to a memory-controller domain."""

    def __init__(
        self,
        domain: int,
        trace: Trace,
        params: CoreParams = CoreParams(),
    ) -> None:
        self.domain = domain
        self.trace = trace
        self.params = params
        self._iter: Iterator[TraceRecord] = iter(trace)
        self._peeked: Optional[TraceRecord] = None
        #: Instruction index of the *next* instruction to fetch.
        self._fetch_index = 0
        #: Tick at which that instruction can fetch (free-running bound).
        self._fetch_tick = 0
        #: Reads in flight or not yet retired, oldest first.
        self._reads: Deque[_PendingRead] = deque()
        #: Retire tick of the most recently retired read, plus its index.
        self._last_retired_read: Tuple[int, int] = (-1, 0)  # (index, tick)
        #: (tick, instructions retired by then) checkpoints for profiles.
        self._checkpoints: List[Tuple[int, int]] = [(0, 0)]
        #: Completion tick of the most recent read (retired or not),
        #: for dependent-load gating.
        self._last_read_completion: Optional[int] = 0
        self._trace_done = False
        self.stat_reads_completed = 0
        self.stat_writes_issued = 0

    # ------------------------------------------------------------------
    # Trace plumbing.
    # ------------------------------------------------------------------

    def _peek(self) -> Optional[TraceRecord]:
        if self._peeked is None:
            try:
                self._peeked = next(self._iter)
            except StopIteration:
                self._trace_done = True
                return None
        return self._peeked

    def _pop(self) -> TraceRecord:
        record = self._peek()
        assert record is not None
        self._peeked = None
        return record

    # ------------------------------------------------------------------
    # Retirement bookkeeping.
    # ------------------------------------------------------------------

    def _retire_bound(self, instr_index: int) -> Optional[int]:
        """Earliest tick instruction ``instr_index`` can have retired.

        Returns None when the answer depends on a read that has not
        completed yet (the core must block).
        """
        # Retire is gated by the last read at or before instr_index.
        gate_index, gate_tick = self._last_retired_read
        for pending in self._reads:
            if pending.instr_index > instr_index:
                break
            if pending.retire_tick is None:
                return None  # outstanding read blocks this instruction
            gate_index, gate_tick = (
                pending.instr_index, pending.retire_tick
            )
        return gate_tick + (instr_index - gate_index)

    def _commit_read_retirement(self, pending: _PendingRead) -> None:
        """Fix the retire tick of a completed read (in program order)."""
        assert pending.completion_tick is not None
        prev_index, prev_tick = self._last_retired_read
        pending.retire_tick = max(
            pending.completion_tick,
            prev_tick + (pending.instr_index - prev_index),
        )
        self._last_retired_read = (
            pending.instr_index, pending.retire_tick
        )
        self._checkpoints.append(
            (pending.retire_tick, pending.instr_index + 1)
        )

    # ------------------------------------------------------------------
    # Public interface.
    # ------------------------------------------------------------------

    def try_emit(self) -> Optional[Request]:
        """Produce the next memory request if its send time is decidable.

        Returns None when the trace is exhausted *or* the core is blocked
        on an outstanding read (ROB full, or a dependent load).  Call
        again after :meth:`on_complete`.
        """
        while True:
            record = self._peek()
            if record is None:
                return None
            mem_index = self._fetch_index + record.gap
            # ROB gating: instruction i needs instruction i - R retired.
            fetch_tick = self._fetch_tick + record.gap
            gate = mem_index - self.params.rob_size
            if gate >= 0:
                bound = self._retire_bound(gate)
                if bound is None:
                    return None  # blocked on memory
                fetch_tick = max(fetch_tick, bound)
            if record.depends_on_prev:
                if self._last_read_completion is None:
                    return None  # dependent load: wait for producer
                fetch_tick = max(fetch_tick, self._last_read_completion)

            self._pop()
            self._fetch_index = mem_index + 1
            self._fetch_tick = fetch_tick + 1
            arrival = self._to_mem_cycle(fetch_tick)
            request = Request(
                op=record.op,
                address=None,  # filled by the system via the partition
                domain=self.domain,
                kind=RequestKind.DEMAND,
                arrival=arrival,
                line=record.line,
                core_tag=self,
            )
            if record.op is OpType.READ:
                self._reads.append(_PendingRead(mem_index, request))
                self._last_read_completion = None  # unknown until return
            else:
                # Posted write: retires with the instruction stream.
                self.stat_writes_issued += 1
            return request

    def on_complete(self, request: Request, mem_cycle: int) -> None:
        """The memory system returned a read issued by this core."""
        tick = mem_cycle * self.params.ticks_per_mem_cycle
        for pending in self._reads:
            if pending.request is request:
                pending.completion_tick = tick
                break
        else:
            raise ValueError("completion for an unknown read")
        if pending is self._reads[-1]:
            self._last_read_completion = tick
        self.stat_reads_completed += 1
        # Retire in order from the front while completions are known.
        while self._reads and self._reads[0].completion_tick is not None:
            pending = self._reads.popleft()
            self._commit_read_retirement(pending)

    @property
    def blocked(self) -> bool:
        """True if the next emit needs a completion first."""
        if self._peek() is None:
            return False
        return self.try_peek_blocked()

    def try_peek_blocked(self) -> bool:
        """Whether the next emission is gated on an outstanding read."""
        record = self._peek()
        if record is None:
            return False
        mem_index = self._fetch_index + record.gap
        gate = mem_index - self.params.rob_size
        if gate >= 0 and self._retire_bound(gate) is None:
            return True
        if record.depends_on_prev and self._last_read_completion is None:
            return True
        return False

    @property
    def done(self) -> bool:
        """Trace exhausted and every read returned."""
        return self._peek() is None and not self._reads

    # ------------------------------------------------------------------
    # Metrics.
    # ------------------------------------------------------------------

    def _to_mem_cycle(self, tick: int) -> int:
        per = self.params.ticks_per_mem_cycle
        return -(-tick // per)  # ceil

    def retired_instructions(self, mem_cycle: int) -> int:
        """Instructions retired by ``mem_cycle``.

        Between read-retirement checkpoints the core retires at full
        width (one instruction per tick), capped just below the next
        checkpoint — the next read is exactly what it is waiting for.
        """
        import bisect

        tick = mem_cycle * self.params.ticks_per_mem_cycle
        ticks = [t for t, _ in self._checkpoints]
        idx = bisect.bisect_right(ticks, tick) - 1
        if idx < 0:
            return 0
        t_i, n_i = self._checkpoints[idx]
        if idx + 1 < len(self._checkpoints):
            cap = self._checkpoints[idx + 1][1] - 1
        else:
            cap = self._fetch_index
        return min(cap, n_i + max(0, tick - t_i))

    def finish_mem_cycle(self) -> Optional[int]:
        """Mem cycle at which the core retired its last instruction, if
        it has finished its trace."""
        if not self.done:
            return None
        last_tick, last_instr = self._checkpoints[-1]
        trailing = self._fetch_index - last_instr
        tick = last_tick + max(0, trailing)
        return -(-tick // self.params.ticks_per_mem_cycle)

    def ipc(self, mem_cycle: int) -> float:
        """Retired instructions per CPU cycle.

        A finished core is measured over its *own* execution time, not
        the whole simulation — co-runners finishing later must not dilute
        (or inflate) its IPC.
        """
        finish = self.finish_mem_cycle()
        if finish is not None:
            mem_cycle = min(mem_cycle, finish) if mem_cycle > 0 else finish
        if mem_cycle <= 0:
            return 0.0
        cpu_cycles = mem_cycle * self.params.cpu_per_mem_cycle
        return self.retired_instructions(mem_cycle) / cpu_cycles

    def completion_profile(self, block: int = 10000) -> List[Tuple[int, int]]:
        """(instructions, mem cycle retired) milestones every ``block``
        instructions — the Figure 4 execution profile."""
        per = self.params.ticks_per_mem_cycle
        out: List[Tuple[int, int]] = []
        target = block
        for (t0, n0), (t1, n1) in zip(
            self._checkpoints, self._checkpoints[1:]
        ):
            while target <= n1:
                if target <= n0:
                    tick = t0
                elif target < n1:
                    # Free-running retirement after the checkpoint read.
                    tick = t0 + (target - n0)
                else:
                    tick = max(t1, t0 + (target - n0))
                out.append((target, -(-tick // per)))
                target += block
        return out
