"""Trace-driven out-of-order core models."""

from .trace import Trace, TraceRecord
from .core_model import Core, CoreParams

__all__ = ["Trace", "TraceRecord", "Core", "CoreParams"]
