"""Post-LLC instruction/memory traces.

A trace is a finite sequence of :class:`TraceRecord`: each record stands
for ``gap`` non-memory instructions followed by one memory instruction
(a cache-line read or write at a domain-local line address).  This is the
USIMM trace format in spirit — the memory system only ever sees post-LLC
misses, so the non-memory work is captured as a count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

from ..dram.commands import OpType


@dataclass(frozen=True)
class TraceRecord:
    """``gap`` non-memory instructions, then one memory instruction."""

    gap: int
    op: OpType
    line: int
    #: True when this access depends on the previous *read* (pointer
    #: chasing): it cannot be sent to memory before that read returns.
    depends_on_prev: bool = False

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.line < 0:
            raise ValueError("line must be non-negative")

    @property
    def instructions(self) -> int:
        """Instructions this record contributes (gap + the memory op)."""
        return self.gap + 1


class Trace:
    """A materialized trace with summary statistics."""

    def __init__(self, records: Iterable[TraceRecord], name: str = "trace"):
        self.records: List[TraceRecord] = list(records)
        self.name = name

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    @property
    def instructions(self) -> int:
        return sum(r.instructions for r in self.records)

    @property
    def reads(self) -> int:
        return sum(1 for r in self.records if r.op is OpType.READ)

    @property
    def writes(self) -> int:
        return len(self.records) - self.reads

    @property
    def mpki(self) -> float:
        """Memory accesses per kilo-instruction."""
        instructions = self.instructions
        if instructions == 0:
            return 0.0
        return 1000.0 * len(self.records) / instructions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({self.name}, {len(self.records)} accesses, "
            f"mpki={self.mpki:.1f})"
        )
