"""Statistical certificates: bias-corrected MI bounds and capacity.

The harness reduces a strategy's two-world observations to three
numbers, each with a precise (and precisely limited) meaning:

* **exact-match verdict** — for Fixed Service schemes the paper's claim
  is *exact* non-interference, so the strongest certificate is literal
  equality of the attacker's observations across the two secret worlds,
  per trial.  No statistics involved; a single mismatched trial refutes
  the claim outright.
* **bias-corrected mutual information** — the plug-in (maximum
  likelihood) estimate of ``I(S; O)`` is biased *upward* by roughly
  ``(|S|-1)(|O|-1) / (2 n ln 2)`` bits (Miller 1955, Miller-Madow);
  :func:`corrected_mi_bits` subtracts that term and clamps at zero, so
  a genuinely independent (secret, observation) pair estimates ~0
  instead of a spurious positive value.
* **bootstrap upper bound** — :func:`bootstrap_upper_bound` resamples
  the (secret, observation) pairs with replacement and reports the
  upper quantile of the corrected estimate.  The certificate's headline
  number — the one compared against epsilon — is the *maximum* of the
  point estimate and that quantile, so sampling luck can only make
  certification harder, never easier.
* **channel capacity** — :func:`binary_channel_capacity` treats the
  empirical conditionals ``P(o | s)`` as a channel matrix and maximizes
  MI over the input prior (the secret is attacker-chosen, so a uniform
  prior understates the strategy's best case).  For a two-secret
  protocol the MI is concave in the prior, so a deterministic ternary
  search suffices.

Everything here is pure arithmetic on hashable samples — no simulator
imports — and deterministic for a given seed, which is what lets a
``workers=N`` certification batch write a byte-identical artifact to a
serial one.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, Hashable, List, Sequence, Tuple

from ..analysis.mutual_information import mutual_information_bits

Sample = Tuple[int, Hashable]


def support_sizes(samples: Sequence[Sample]) -> Tuple[int, int]:
    """Observed alphabet sizes ``(|S|, |O|)`` of a sample set."""
    return (
        len({s for s, _ in samples}),
        len({o for _, o in samples}),
    )


def miller_madow_bias_bits(
    n: int, secret_support: int, observation_support: int
) -> float:
    """First-order upward bias of the plug-in MI estimate, in bits.

    ``(|S| - 1)(|O| - 1) / (2 n ln 2)`` — the Miller-Madow correction
    applied to ``I = H(S) + H(O) - H(S, O)`` term by term (the joint
    support is bounded by ``|S| x |O|``, giving the product form).
    """
    if n <= 0:
        raise ValueError("need at least one sample")
    return (
        (secret_support - 1) * (observation_support - 1)
        / (2.0 * n * math.log(2.0))
    )


def corrected_mi_bits(samples: Sequence[Sample]) -> float:
    """Miller-Madow bias-corrected MI estimate, clamped at zero.

    Never exceeds the plug-in estimate (the correction is subtracted),
    so an exactly-independent empirical joint — whose plug-in MI is
    already zero — stays at zero.
    """
    plugin = mutual_information_bits(samples)
    k_s, k_o = support_sizes(samples)
    return max(0.0, plugin - miller_madow_bias_bits(
        len(samples), k_s, k_o
    ))


def bootstrap_upper_bound(
    samples: Sequence[Sample],
    resamples: int = 200,
    quantile: float = 0.95,
    seed: int = 0,
) -> float:
    """Upper confidence bound on the corrected MI, via the bootstrap.

    Resamples the pairs with replacement ``resamples`` times, takes the
    ``quantile`` of the corrected estimates, and returns the max of that
    and the point estimate — the bound can tighten the verdict, never
    loosen it.  Deterministic for a given ``seed``.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    point = corrected_mi_bits(samples)
    if len(samples) < 2 or resamples < 1:
        return point
    rng = random.Random(seed)
    pool = list(samples)
    n = len(pool)
    estimates: List[float] = []
    for _ in range(resamples):
        draw = [pool[rng.randrange(n)] for _ in range(n)]
        estimates.append(corrected_mi_bits(draw))
    estimates.sort()
    index = min(len(estimates) - 1, int(quantile * len(estimates)))
    return max(point, estimates[index])


def _mi_for_prior(
    p: float,
    cond: Sequence[Dict[Hashable, float]],
) -> float:
    """``I(S; O)`` in bits for a binary prior ``(1-p, p)`` over the two
    conditional observation distributions."""
    priors = (1.0 - p, p)
    marginal: Dict[Hashable, float] = {}
    for prior, dist in zip(priors, cond):
        for o, q in dist.items():
            marginal[o] = marginal.get(o, 0.0) + prior * q
    bits = 0.0
    for prior, dist in zip(priors, cond):
        if prior <= 0.0:
            continue
        for o, q in dist.items():
            if q <= 0.0:
                continue
            bits += prior * q * math.log2(q / marginal[o])
    return bits


def binary_channel_capacity(
    samples: Sequence[Sample],
    iterations: int = 60,
) -> float:
    """Capacity (bits/use) of the empirical two-secret channel.

    Builds ``P(o | s)`` from the samples and maximizes MI over the
    binary input prior by ternary search (MI is concave in the prior).
    With fewer than two observed secrets the channel is unusable and the
    capacity is zero.
    """
    by_secret: Dict[int, Counter] = {}
    for s, o in samples:
        by_secret.setdefault(s, Counter())[o] += 1
    if len(by_secret) < 2:
        return 0.0
    if len(by_secret) > 2:
        raise ValueError(
            "binary_channel_capacity takes two-secret samples; got "
            f"{sorted(by_secret)}"
        )
    cond = []
    for s in sorted(by_secret):
        counts = by_secret[s]
        total = sum(counts.values())
        cond.append({o: c / total for o, c in counts.items()})
    lo, hi = 0.0, 1.0
    for _ in range(iterations):
        m1 = lo + (hi - lo) / 3.0
        m2 = hi - (hi - lo) / 3.0
        if _mi_for_prior(m1, cond) < _mi_for_prior(m2, cond):
            lo = m1
        else:
            hi = m2
    return _mi_for_prior((lo + hi) / 2.0, cond)


def canonicalize_by_trial(
    raw: Sequence[Tuple[int, int, Hashable]],
) -> List[Sample]:
    """Collapse per-trial observations to small within-trial ids.

    ``raw`` holds ``(trial, secret, observation)`` triples.  Observations
    are only comparable *within* a trial (the attacker's own trace seed
    varies across trials by design), so each trial maps its distinct
    observations to ``0, 1, ...`` in first-seen order — worlds are
    enumerated in secret order, so id 0 is always "matches the secret-0
    world".  Under exact non-interference both worlds of every trial
    collapse to id 0, the observation alphabet is the singleton ``{0}``,
    and the MI is exactly zero with zero bias; a secret-dependent scheme
    splits the ids and the secret becomes readable.
    """
    out: List[Sample] = []
    ids: Dict[int, Dict[Hashable, int]] = {}
    for trial, secret, observation in raw:
        table = ids.setdefault(trial, {})
        value = table.setdefault(observation, len(table))
        out.append((secret, value))
    return out


__all__ = [
    "Sample",
    "binary_channel_capacity",
    "bootstrap_upper_bound",
    "canonicalize_by_trial",
    "corrected_mi_bits",
    "miller_madow_bias_bits",
    "support_sizes",
]
