"""Adversarial non-interference certification (``repro certify``).

The paper's security claim — Fixed Service makes a domain's memory
timing a pure function of its own requests — is stated as an exact
property, but the repo historically checked it against a handful of
hand-picked co-runner pairs.  This package turns the check adversarial
and statistical:

* :mod:`~repro.certify.strategies` — a registry of seed-deterministic
  attacker strategy *families* (adaptive latency probers, refresh-phase
  probes, burst/idle modulation, fault-composed attackers, randomized
  secret pairs), mirroring the scheme registry's declarative style.
* :mod:`~repro.certify.estimators` — pure-arithmetic reductions of
  two-world observations to certificates: Miller-Madow bias-corrected
  MI, bootstrap upper confidence bounds, and empirical channel
  capacity.
* :mod:`~repro.certify.harness` — the paired two-world experiment
  (secret=0 vs secret=1 co-runner worlds, both engines), the per-
  strategy :class:`~repro.certify.harness.StrategyVerdict`, and
  :class:`~repro.certify.harness.CertificationRun`, which fans batches
  over the sweep executor's process pool with checkpoint/resume and
  exports deterministic JSONL artifacts plus telemetry gauges.

Quickstart::

    from repro.certify import certify_scheme, generate_strategies

    cert = certify_scheme("fs_rp", generate_strategies(16, seed=1))
    assert cert.certified and cert.max_mi_upper_bits <= 0.01
"""

from .estimators import (
    Sample,
    binary_channel_capacity,
    bootstrap_upper_bound,
    canonicalize_by_trial,
    corrected_mi_bits,
    miller_madow_bias_bits,
    support_sizes,
)
from .strategies import (
    STRATEGIES,
    AttackerStrategy,
    StrategyRegistry,
    generate_strategies,
    register_strategy,
    strategy_seed,
)
from .harness import (
    CHECKPOINT_VERSION,
    Certificate,
    CertificationRun,
    DEFAULT_EPSILON_BITS,
    StrategyVerdict,
    certify_scheme,
    certify_strategy,
    two_world_samples,
    write_certificate_jsonl,
)

__all__ = [
    "AttackerStrategy",
    "CHECKPOINT_VERSION",
    "Certificate",
    "CertificationRun",
    "DEFAULT_EPSILON_BITS",
    "STRATEGIES",
    "Sample",
    "StrategyRegistry",
    "StrategyVerdict",
    "binary_channel_capacity",
    "bootstrap_upper_bound",
    "canonicalize_by_trial",
    "certify_scheme",
    "certify_strategy",
    "corrected_mi_bits",
    "generate_strategies",
    "miller_madow_bias_bits",
    "register_strategy",
    "strategy_seed",
    "support_sizes",
    "two_world_samples",
    "write_certificate_jsonl",
]
