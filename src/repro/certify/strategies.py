"""Seed-deterministic attacker-strategy generation.

The certification harness does not replay a handful of hand-picked
probes; it *searches* the attacker-strategy space.  Gong & Kiyavash
showed that deterministic work-conserving schedulers leak quantifiable
information to adaptive probers, and Kadloor et al. that the attacker's
strategy choice dominates the measured leakage — so every certification
batch draws its attackers from a pluggable registry of strategy
*families*, each a generator that expands a seed into concrete attacker
workloads, secret pairs, and environment knobs (refresh, fault
campaigns).

A strategy is pure data (:class:`AttackerStrategy`): frozen, hashable,
picklable, so batches fan out over spawn-started worker processes the
same way scheme specs do.  The built-in families:

=================  ===================================================
family             attacker model
=================  ===================================================
``adaptive_probe`` closed-loop latency prober: high dependency
                   fraction makes every probe's issue time a function
                   of the previous probe's *observed* latency
``refresh_phase``  regular (burstiness 0) prober under deterministic
                   refresh, hunting phase alignment with the refresh
                   blackout schedule
``burst_idle``     sender-style secrets: the two worlds differ in
                   on/off burst modulation, the covert-channel shape
``fault_composed`` an adaptive prober run inside a seed-deterministic
                   :class:`~repro.faults.FaultPlan` campaign — leak
                   hunting through the fault-recovery paths
``secret_pair``    randomized victim secret pairs drawn from the
                   characterized SPEC/NPB workload library
=================  ===================================================

Register a new family exactly like a new scheme::

    from repro.certify import register_strategy

    @register_strategy("row_hammer_probe")
    def _gen(rng, index):
        return AttackerStrategy(...)
"""

from __future__ import annotations

import dataclasses
import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, \
    Tuple

from ..errors import ConfigError
from ..faults import FaultKind, FaultPlan, FaultSpec
from ..workloads.spec import SPEC2K6, workload
from ..workloads.synthetic import LINES_PER_ROW, WorkloadSpec

#: Fault kinds a generated campaign may arm.  ``borrow_foreign_slot``
#: is excluded: it is the *deliberately broken* recovery policy the
#: watchdog suite plants, not a fault model a certified build ships.
COMPOSABLE_FAULTS: Tuple[FaultKind, ...] = (
    FaultKind.DROP_COMMAND,
    FaultKind.DUPLICATE_COMMAND,
    FaultKind.DELAY_SLOT,
    FaultKind.REFRESH_COLLISION,
    FaultKind.CORRUPT_TRACE,
    FaultKind.QUEUE_OVERFLOW,
)


@dataclass(frozen=True)
class AttackerStrategy:
    """One adversarial experiment, declaratively.

    The attacker owns domain 0 and observes only its own timing; the
    secret selects which co-runner workload fills every other domain
    (the two-world protocol).  All fields are plain data, so strategies
    pickle into worker processes and hash into checkpoints.
    """

    #: Unique name within a batch, e.g. ``"adaptive_probe/3"``.
    name: str
    #: Generating family (registry key).
    family: str
    #: The strategy's own derived seed (bootstrap resamples and fault
    #: plans key off it, never off batch position).
    seed: int
    #: The attacker's probe workload (domain 0).
    attacker: WorkloadSpec
    #: Co-runner workload when the secret bit is 0.
    secret0: WorkloadSpec
    #: Co-runner workload when the secret bit is 1.
    secret1: WorkloadSpec
    #: Paired two-world runs per strategy; each trial re-seeds the
    #: attacker's own trace, so seed-induced variation is represented.
    trials: int = 3
    #: Run both worlds under deterministic refresh (schemes that do not
    #: support refresh ignore the knob, by existing options semantics).
    refresh: bool = False
    #: Optional seed-deterministic fault campaign for both worlds.
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ConfigError(
                f"strategy {self.name!r}: trials must be >= 1"
            )
        if self.secret0 == self.secret1:
            raise ConfigError(
                f"strategy {self.name!r}: the two secret worlds must "
                f"differ, or the experiment is vacuous"
            )


#: A family generator: (family-seeded rng, index within family) -> one
#: concrete strategy.  Names are filled in by the registry wrapper.
StrategyGenerator = Callable[[random.Random, int], AttackerStrategy]


class StrategyRegistry:
    """Insertion-ordered family name -> generator, mirroring
    :class:`~repro.schemes.SchemeRegistry`."""

    def __init__(self) -> None:
        self._generators: Dict[str, StrategyGenerator] = {}

    def register(
        self, family: str, generator: StrategyGenerator,
        replace: bool = False,
    ) -> StrategyGenerator:
        if not family:
            raise ConfigError("a strategy family needs a name")
        if family in self._generators and not replace:
            raise ConfigError(
                f"strategy family {family!r} is already registered "
                f"(pass replace=True to override)"
            )
        self._generators[family] = generator
        return generator

    def unregister(self, family: str) -> None:
        if family not in self._generators:
            raise ConfigError(
                f"cannot unregister unknown strategy family {family!r}"
            )
        del self._generators[family]

    def get(self, family: str) -> StrategyGenerator:
        try:
            return self._generators[family]
        except KeyError:
            raise ConfigError(
                f"unknown strategy family {family!r}; known: "
                f"{', '.join(self._generators) or '(none)'}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._generators)

    def __contains__(self, family: object) -> bool:
        return family in self._generators

    def __iter__(self) -> Iterator[str]:
        return iter(self._generators)

    def __len__(self) -> int:
        return len(self._generators)


#: The process-global strategy registry, populated below.
STRATEGIES = StrategyRegistry()


def register_strategy(
    family: str,
    registry: Optional[StrategyRegistry] = None,
    replace: bool = False,
) -> Callable[[StrategyGenerator], StrategyGenerator]:
    """Decorator registering a strategy-family generator."""
    target = registry if registry is not None else STRATEGIES

    def decorate(fn: StrategyGenerator) -> StrategyGenerator:
        target.register(family, fn, replace=replace)
        return fn

    return decorate


def strategy_seed(family: str, index: int, batch_seed: int) -> int:
    """The derived seed for one (family, index, batch) cell.

    CRC-based, not ``hash()``-based, so a batch is reproducible across
    processes and ``PYTHONHASHSEED`` values — the same discipline as
    trace generation.
    """
    tag = zlib.crc32(f"{family}:{index}".encode("utf-8"))
    return (tag * 1_000_003 + batch_seed) & 0x7FFFFFFF


def generate_strategies(
    count: int,
    seed: int = 0,
    families: Optional[Sequence[str]] = None,
    registry: Optional[StrategyRegistry] = None,
) -> List[AttackerStrategy]:
    """Expand ``(count, seed)`` into a deterministic strategy batch.

    Families are visited round-robin in registration order, so a batch
    of 50 covers every registered family rather than front-loading one.
    The result depends only on the arguments — never on execution order
    or prior batches — which is what checkpoint resume relies on.
    """
    target = registry if registry is not None else STRATEGIES
    if count < 1:
        raise ConfigError(f"need at least one strategy, got {count}")
    chosen = tuple(families) if families is not None else target.names()
    if not chosen:
        raise ConfigError("no strategy families registered/selected")
    generators = {f: target.get(f) for f in chosen}
    out: List[AttackerStrategy] = []
    for i in range(count):
        family = chosen[i % len(chosen)]
        index = i // len(chosen)
        derived = strategy_seed(family, index, seed)
        rng = random.Random(derived)
        strategy = generators[family](rng, index)
        out.append(dataclasses.replace(
            strategy,
            name=f"{family}/{index}", family=family, seed=derived,
        ))
    return out


# ----------------------------------------------------------------------
# Built-in families.
# ----------------------------------------------------------------------

def _prober(rng: random.Random, tag: str, *, regular: bool = False,
            ) -> WorkloadSpec:
    """An attacker workload with rng-drawn probe characteristics.

    ``dependency_fraction`` near 1 makes the prober *closed-loop*: each
    probe's issue time depends on the previous probe's observed latency,
    so the probe train adapts to whatever timing the scheduler exposes.
    """
    return WorkloadSpec(
        name=f"prober_{tag}",
        mpki=rng.uniform(8.0, 60.0),
        read_fraction=1.0,
        row_locality=rng.uniform(0.0, 0.4),
        working_set_lines=LINES_PER_ROW * (1 << rng.randrange(4, 10)),
        dependency_fraction=rng.uniform(0.6, 1.0),
        burstiness=0.0 if regular else rng.uniform(0.0, 0.8),
        burst_length=1.0 + rng.random() * 2.0,
        streams=rng.randrange(1, 5),
    )


def _quiet_secret(rng: random.Random, tag: str) -> WorkloadSpec:
    return WorkloadSpec(
        name=f"quiet_{tag}",
        mpki=rng.uniform(0.05, 0.5),
        read_fraction=1.0,
        row_locality=rng.uniform(0.7, 1.0),
        working_set_lines=LINES_PER_ROW * 16,
    )


def _loud_secret(rng: random.Random, tag: str) -> WorkloadSpec:
    return WorkloadSpec(
        name=f"loud_{tag}",
        mpki=rng.uniform(40.0, 100.0),
        read_fraction=rng.uniform(0.5, 0.9),
        row_locality=rng.uniform(0.0, 0.3),
        working_set_lines=1 << 20,
        streams=rng.randrange(2, 8),
    )


@register_strategy("adaptive_probe")
def _adaptive_probe(rng: random.Random, index: int) -> AttackerStrategy:
    tag = f"ap{index}_{rng.randrange(1 << 16)}"
    return AttackerStrategy(
        name="", family="", seed=0,
        attacker=_prober(rng, tag),
        secret0=_quiet_secret(rng, tag),
        secret1=_loud_secret(rng, tag),
    )


@register_strategy("refresh_phase")
def _refresh_phase(rng: random.Random, index: int) -> AttackerStrategy:
    """Probe regularly under deterministic refresh: if refresh blackouts
    were demand- (and hence co-runner-) driven, phase drift between the
    probe train and the blackout schedule would read the secret out."""
    tag = f"rp{index}_{rng.randrange(1 << 16)}"
    return AttackerStrategy(
        name="", family="", seed=0,
        attacker=_prober(rng, tag, regular=True),
        secret0=_quiet_secret(rng, tag),
        secret1=_loud_secret(rng, tag),
        refresh=True,
    )


@register_strategy("burst_idle")
def _burst_idle(rng: random.Random, index: int) -> AttackerStrategy:
    """Covert-channel-shaped secrets: both worlds are *active*, but one
    modulates on/off bursts — the hardest shape for threshold checks
    that only compare mean intensity."""
    tag = f"bi{index}_{rng.randrange(1 << 16)}"
    steady = WorkloadSpec(
        name=f"steady_{tag}",
        mpki=rng.uniform(10.0, 30.0),
        read_fraction=0.8,
        row_locality=0.5,
        burstiness=0.0,
        burst_length=1.0,
    )
    modulated = WorkloadSpec(
        name=f"modulated_{tag}",
        mpki=steady.mpki,
        read_fraction=0.8,
        row_locality=0.5,
        burstiness=1.0,
        burst_length=rng.uniform(8.0, 24.0),
        intra_burst_gap=0,
    )
    return AttackerStrategy(
        name="", family="", seed=0,
        attacker=_prober(rng, tag),
        secret0=steady,
        secret1=modulated,
    )


@register_strategy("fault_composed")
def _fault_composed(rng: random.Random, index: int) -> AttackerStrategy:
    """An adaptive prober with a seed-deterministic fault campaign:
    certification must hold on the recovery paths too, where a sloppy
    recovery (e.g. serving backlog in a foreign slot) re-opens the
    channel."""
    tag = f"fc{index}_{rng.randrange(1 << 16)}"
    kinds = rng.sample(COMPOSABLE_FAULTS, rng.randrange(1, 4))
    plan = FaultPlan(
        specs=tuple(
            FaultSpec(kind=k, rate=rng.uniform(0.005, 0.05))
            for k in kinds
        ),
        seed=rng.randrange(1 << 30),
    )
    return AttackerStrategy(
        name="", family="", seed=0,
        attacker=_prober(rng, tag),
        secret0=_quiet_secret(rng, tag),
        secret1=_loud_secret(rng, tag),
        faults=plan,
    )


@register_strategy("secret_pair")
def _secret_pair(rng: random.Random, index: int) -> AttackerStrategy:
    """Randomized victim secret pairs from the characterized workload
    library: the secret is *which program* the victim runs, the exact
    scenario the paper's cloud deployment model worries about."""
    tag = f"sp{index}_{rng.randrange(1 << 16)}"
    names = sorted(SPEC2K6)
    a, b = rng.sample(names, 2)
    return AttackerStrategy(
        name="", family="", seed=0,
        attacker=_prober(rng, tag),
        secret0=workload(a),
        secret1=workload(b),
    )


__all__ = [
    "AttackerStrategy",
    "COMPOSABLE_FAULTS",
    "STRATEGIES",
    "StrategyGenerator",
    "StrategyRegistry",
    "generate_strategies",
    "register_strategy",
    "strategy_seed",
]
