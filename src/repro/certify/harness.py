"""The two-world certification protocol and its batch executor.

One strategy is certified with a *paired experiment*: the attacker
workload runs on domain 0 while every other domain runs the strategy's
``secret0`` co-runner (world 0) and then its ``secret1`` co-runner
(world 1).  Within a trial both worlds share every seed — the attacker's
own trace is bit-identical across them — so the attacker's observation
(its completion-time profile and per-read release cycles, exactly what
:func:`repro.analysis.leakage.victim_view` extracts) may differ between
worlds *only* through the scheduler.  Fixed Service claims it never
does; the harness checks that claim three ways (exact match, bias-
corrected MI upper bound, channel capacity — see
:mod:`repro.certify.estimators`).

Batches execute on the shared substrate (:mod:`repro.exec`): strategies
are picklable data, every verdict is a pure function of (scheme spec,
strategy, config, engine), and the substrate merges results in
submission order — so a ``workers=4`` certification writes a
byte-identical artifact to a serial run, and a killed batch resumes
from its JSON checkpoint.  Security analysis deliberately depends on
nothing inside :mod:`repro.sim` beyond the runner's public surface (CI
greps the layering).
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.leakage import victim_view
from ..errors import ConfigError, SchemeError
from ..exec import (
    SPANS_KEY,
    CheckpointStore,
    JobResult,
    JobSpec,
    adopt_spans,
    run_jobs,
    validate_workers,
)
from ..schemes import REGISTRY, SchemeSpec
from ..sim.config import SystemConfig
from ..sim.runner import SchemeOptions
from ..telemetry.log import get_logger
from .estimators import (
    binary_channel_capacity,
    bootstrap_upper_bound,
    canonicalize_by_trial,
    corrected_mi_bits,
)
from .strategies import AttackerStrategy

#: Certification checkpoint schema version.
CHECKPOINT_VERSION = 1

_LOG = get_logger("certify")

#: Default leakage tolerance, in bits per two-world experiment.
DEFAULT_EPSILON_BITS = 0.01

#: Fields serialized into checkpoints / the JSONL artifact, in order.
_VERDICT_FIELDS = (
    "strategy", "family", "seed", "trials", "samples", "exact_match",
    "mi_bits", "mi_upper_bits", "capacity_bits", "passed",
    "error_type", "error",
)


@dataclass(frozen=True)
class StrategyVerdict:
    """The statistical certificate for one strategy."""

    strategy: str
    family: str
    seed: int
    trials: int
    #: (secret, observation-id) samples reduced to the MI estimate.
    samples: int
    #: Every trial's two worlds produced literally identical attacker
    #: observations (the paper's exact non-interference claim).
    exact_match: bool
    #: Miller-Madow bias-corrected MI point estimate, bits.
    mi_bits: float
    #: Bootstrap upper confidence bound (the number compared against
    #: epsilon; never below :attr:`mi_bits`).
    mi_upper_bits: float
    #: Capacity of the strategy's empirical two-secret channel.
    capacity_bits: float
    #: Verdict under the batch's epsilon and the scheme's claims.
    passed: bool
    #: Populated when the experiment itself raised instead of running.
    error_type: Optional[str] = None
    error: Optional[str] = None

    def to_json_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for name in _VERDICT_FIELDS:
            value = getattr(self, name)
            if isinstance(value, float):
                value = round(value, 12)
            out[name] = value
        return out


@dataclass(frozen=True)
class Certificate:
    """The aggregate verdict for one (scheme, engine, epsilon) batch."""

    scheme: str
    engine: str
    epsilon_bits: float
    fixed_service: bool
    verdicts: Tuple[StrategyVerdict, ...]
    #: Strategies never run (wall-clock budget exhausted).
    skipped: Tuple[str, ...] = ()

    @property
    def certified(self) -> bool:
        """True iff every executed strategy passed and none errored."""
        return bool(self.verdicts) and all(
            v.passed for v in self.verdicts
        )

    @property
    def complete(self) -> bool:
        return not self.skipped

    @property
    def max_mi_upper_bits(self) -> float:
        return max(
            (v.mi_upper_bits for v in self.verdicts), default=0.0
        )

    @property
    def worst_strategy(self) -> Optional[StrategyVerdict]:
        """The executed strategy with the largest MI upper bound
        (failures first — an errored strategy is always 'worst')."""
        if not self.verdicts:
            return None
        return max(
            self.verdicts,
            key=lambda v: (v.error_type is not None, v.mi_upper_bits,
                           not v.exact_match),
        )

    def summary_dict(self) -> Dict[str, object]:
        """The artifact's trailer line (no volatile values)."""
        return {
            "certificate": {
                "scheme": self.scheme,
                "engine": self.engine,
                "epsilon_bits": round(self.epsilon_bits, 12),
                "fixed_service": self.fixed_service,
                "strategies": len(self.verdicts),
                "skipped": len(self.skipped),
                "certified": self.certified,
                "max_mi_upper_bits": round(self.max_mi_upper_bits, 12),
            }
        }


def _observation(view) -> Tuple:
    """Everything the attacker can see of its own run, as one hashable
    value: the block-completion profile and every read's release cycle."""
    return (view.profile, view.read_releases)


def two_world_samples(
    scheme: str,
    strategy: AttackerStrategy,
    config: SystemConfig,
    engine: str = "reference",
    max_cycles: int = 2_000_000,
    tracer=None,
) -> Tuple[List[Tuple[int, int, Tuple]], bool]:
    """Run the paired experiment and return ``(raw samples, exact)``.

    ``raw`` holds ``(trial, secret, observation)`` triples; ``exact`` is
    True when every trial's two observations matched bit-for-bit.
    With a :class:`~repro.telemetry.spans.SpanTracer`, each trial is
    wrapped in a span and the engine records its run/phase/epoch spans
    beneath it (telemetry is passive: verdicts are unchanged).
    """
    options = SchemeOptions(
        refresh=strategy.refresh, faults=strategy.faults
    )
    if tracer is not None:
        from ..telemetry.session import TelemetrySession

        options = dataclasses.replace(
            options, telemetry=TelemetrySession(tracer=tracer)
        )
    raw: List[Tuple[int, int, Tuple]] = []
    exact = True
    for trial in range(strategy.trials):
        trial_config = dataclasses.replace(
            config, seed=config.seed + 7919 * trial + strategy.seed
        )
        trial_span = (
            tracer.begin(f"trial {trial}", "trial")
            if tracer is not None else None
        )
        views = []
        for secret, co_runner in enumerate(
            (strategy.secret0, strategy.secret1)
        ):
            view = victim_view(
                scheme, strategy.attacker, co_runner,
                config=trial_config, options=options,
                max_cycles=max_cycles, engine=engine,
            )
            views.append(view)
            raw.append((trial, secret, _observation(view)))
        if trial_span is not None:
            tracer.end(trial_span)
        if _observation(views[0]) != _observation(views[1]):
            exact = False
    return raw, exact


def certify_strategy(
    scheme: str,
    strategy: AttackerStrategy,
    config: SystemConfig,
    engine: str = "reference",
    epsilon_bits: float = DEFAULT_EPSILON_BITS,
    max_cycles: int = 2_000_000,
    bootstrap_resamples: int = 200,
    tracer=None,
) -> StrategyVerdict:
    """Run one strategy and reduce it to a :class:`StrategyVerdict`.

    ``passed`` demands the MI upper bound stay within epsilon and — for
    schemes whose spec claims ``fixed_service`` — literal two-world
    equality: a Fixed Service scheme that merely leaks *little* still
    fails, because the paper's claim is exact.
    """
    spec = REGISTRY.get(scheme)
    raw, exact = two_world_samples(
        scheme, strategy, config, engine=engine, max_cycles=max_cycles,
        tracer=tracer,
    )
    samples = canonicalize_by_trial(raw)
    mi = corrected_mi_bits(samples)
    upper = bootstrap_upper_bound(
        samples, resamples=bootstrap_resamples, seed=strategy.seed
    )
    capacity = binary_channel_capacity(samples)
    passed = upper <= epsilon_bits and (
        exact or not spec.fixed_service
    )
    return StrategyVerdict(
        strategy=strategy.name,
        family=strategy.family,
        seed=strategy.seed,
        trials=strategy.trials,
        samples=len(samples),
        exact_match=exact,
        mi_bits=mi,
        mi_upper_bits=upper,
        capacity_bits=capacity,
        passed=passed,
    )


def _error_verdict(
    strategy: AttackerStrategy, error_type: str, error: str
) -> StrategyVerdict:
    """An errored experiment can never certify: worst-case values."""
    return StrategyVerdict(
        strategy=strategy.name,
        family=strategy.family,
        seed=strategy.seed,
        trials=strategy.trials,
        samples=0,
        exact_match=False,
        mi_bits=float("nan"),
        mi_upper_bits=float("inf"),
        capacity_bits=float("nan"),
        passed=False,
        error_type=error_type,
        error=error,
    )


def _failure_verdict(
    strategy: AttackerStrategy, exc: BaseException
) -> StrategyVerdict:
    """:func:`_error_verdict` from a live exception."""
    return _error_verdict(strategy, type(exc).__name__, str(exc))


# ----------------------------------------------------------------------
# Worker-process entry point (module level: spawn-picklable).
# ----------------------------------------------------------------------

def _certify_worker(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one strategy in a worker process.

    The payload ships the (picklable) scheme spec so user-registered
    schemes — including the test suite's planted leaky scheme — certify
    in workers exactly like built-ins.  The returned dict is the
    verdict's JSON form: computed entirely worker-side from
    seed-deterministic inputs, so the parent's merge order cannot
    influence any number in it.
    """
    from ..schemes import REGISTRY as worker_registry

    spec = payload.get("spec")
    if spec is not None:
        worker_registry.ensure(spec)
    strategy: AttackerStrategy = payload["strategy"]
    tracer = None
    if payload.get("spans"):
        from ..telemetry.spans import SpanTracer

        tracer = SpanTracer()
    try:
        verdict = certify_strategy(
            payload["scheme"], strategy, payload["config"],
            engine=payload["engine"],
            epsilon_bits=payload["epsilon_bits"],
            max_cycles=payload["max_cycles"],
            bootstrap_resamples=payload["bootstrap_resamples"],
            tracer=tracer,
        )
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover
        raise
    except Exception as exc:
        verdict = _failure_verdict(strategy, exc)
    out = verdict.to_json_dict()
    if tracer is not None:
        # The substrate's reserved side channel: popped off the result
        # before the merge (and thus the checkpoint) sees it, so
        # checkpoint/artifact bytes are untouched by span capture.
        out[SPANS_KEY] = tracer.records
    return out


def _verdict_from_dict(raw: Dict[str, object]) -> StrategyVerdict:
    return StrategyVerdict(**{k: raw.get(k) for k in _VERDICT_FIELDS})


class CertificationRun:
    """Execute a strategy batch against one scheme and aggregate.

    One batch is one substrate call (:func:`repro.exec.run_jobs`):
    ``workers=1`` runs in-process, ``workers=N`` fans strategies over
    spawn-started processes with submission-order merging
    (byte-identical artifacts at any worker count), an optional JSON
    checkpoint makes a killed batch resume without re-simulating
    finished strategies, and ``budget_s`` bounds the wall clock — past
    it, remaining strategies are recorded as skipped rather than run.
    ``fresh=True`` deliberately discards any existing checkpoint (the
    CLI's ``--fresh`` escape hatch for a corrupt file).
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        engine: str = "reference",
        epsilon_bits: float = DEFAULT_EPSILON_BITS,
        max_cycles: int = 2_000_000,
        bootstrap_resamples: int = 200,
        workers: int = 1,
        checkpoint: Optional[str] = None,
        budget_s: Optional[float] = None,
        collect_spans: bool = False,
        fresh: bool = False,
        store=None,
    ) -> None:
        validate_workers(workers)
        if epsilon_bits < 0:
            raise ConfigError(
                f"epsilon must be non-negative, got {epsilon_bits}"
            )
        self.config = config or SystemConfig(
            num_cores=4, accesses_per_core=150
        )
        self.engine = engine
        self.epsilon_bits = epsilon_bits
        self.max_cycles = max_cycles
        self.bootstrap_resamples = bootstrap_resamples
        self.workers = workers
        self.checkpoint = checkpoint
        self.fresh = fresh
        self.budget_s = budget_s
        #: Optional content-addressed result store (duck-typed — see
        #: :func:`repro.exec.run_jobs`).  Certification verdicts are
        #: pure functions of (scheme, strategy, config, engine, epsilon,
        #: trial/bootstrap counts), so a warm store replays them without
        #: re-simulating; artifacts stay byte-identical to a cold run.
        self.store = store
        #: Wall clock of the last :meth:`run` (volatile; never part of
        #: checkpoints or artifacts).
        self.last_wall_s: Optional[float] = None
        #: strategy name -> verdict dict, loaded from the checkpoint.
        self._completed: Dict[str, Dict[str, object]] = {}
        self._checkpoint_key: Optional[str] = None
        #: Collect hierarchical spans: each strategy's worker tracer is
        #: shipped back and adopted in deterministic submission order
        #: (never written into checkpoints or the JSONL artifact).
        self.collect_spans = collect_spans
        self.tracer = None
        if collect_spans:
            from ..telemetry.spans import SpanTracer

            self.tracer = SpanTracer(track="certify")

    # -- checkpointing --------------------------------------------------

    def _batch_key(self, scheme: str) -> str:
        """Identity of a batch: anything that changes a verdict."""
        return json.dumps({
            "scheme": scheme,
            "engine": self.engine,
            "epsilon_bits": round(self.epsilon_bits, 12),
            "max_cycles": self.max_cycles,
            "bootstrap_resamples": self.bootstrap_resamples,
            "config": repr(self.config),
        }, sort_keys=True)

    def _checkpoint_store(self, scheme: str) -> CheckpointStore:
        """The substrate store for this batch's checkpoint file.

        Batch-keyed: a checkpoint written for a different experiment
        (scheme, engine, epsilon, config, ...) is discarded rather than
        resumed into wrong verdicts.
        """
        return CheckpointStore(
            self.checkpoint, CHECKPOINT_VERSION,
            batch_key=self._batch_key(scheme), fresh=self.fresh,
            tmp_prefix=".certify-ckpt-",
        )

    def _load_checkpoint(self, scheme: str) -> None:
        self._completed = {}
        data = self._checkpoint_store(scheme).load()
        if data is None:
            return
        for raw in data.get("verdicts", []):
            self._completed[str(raw["strategy"])] = raw

    def _save_checkpoint(self, scheme: str) -> None:
        self._checkpoint_store(scheme).save({
            "verdicts": list(self._completed.values()),
        })

    # -- execution ------------------------------------------------------

    def _payload(
        self, spec: SchemeSpec, scheme: str,
        strategy: AttackerStrategy,
    ) -> Dict[str, object]:
        return {
            "spec": spec,
            "scheme": scheme,
            "strategy": strategy,
            "config": self.config,
            "engine": self.engine,
            "epsilon_bits": self.epsilon_bits,
            "max_cycles": self.max_cycles,
            "bootstrap_resamples": self.bootstrap_resamples,
            "spans": self.collect_spans,
        }

    def run(
        self,
        scheme: str,
        strategies: Sequence[AttackerStrategy],
    ) -> Certificate:
        """Certify ``scheme`` against the batch and aggregate."""
        spec = REGISTRY.get(scheme)
        if not spec.certifiable:
            raise SchemeError(
                f"scheme {scheme!r} is not certifiable (its spec sets "
                f"certifiable=False); the two-world protocol does not "
                f"apply to it"
            )
        self.config.validate_for_scheme(scheme)
        names = [s.name for s in strategies]
        if len(set(names)) != len(names):
            raise ConfigError(
                "strategy names must be unique within a batch"
            )
        self._load_checkpoint(scheme)
        skipped: List[str] = []
        jobs = [
            JobSpec(
                key=strategy.name, fn=_certify_worker,
                payload=self._payload(spec, scheme, strategy),
            )
            for strategy in strategies
        ]
        start = time.monotonic()
        try:
            run_jobs(
                jobs,
                lambda job, result, _aux: self._merge_verdict(
                    scheme, job, result
                ),
                workers=self.workers,
                skip=lambda job: job.key in self._completed,
                budget_s=self.budget_s,
                on_budget_skip=lambda job: skipped.append(job.key),
                store=self.store,
            )
        finally:
            self.last_wall_s = time.monotonic() - start
        verdicts = tuple(
            _verdict_from_dict(self._completed[s.name])
            for s in strategies if s.name in self._completed
        )
        return Certificate(
            scheme=scheme,
            engine=self.engine,
            epsilon_bits=self.epsilon_bits,
            fixed_service=spec.fixed_service,
            verdicts=verdicts,
            skipped=tuple(skipped),
        )

    def _merge_verdict(
        self, scheme: str, job: JobSpec, result: JobResult
    ) -> None:
        """Fold one strategy outcome into the batch (submission order).

        A failed :class:`~repro.exec.JobResult` here can only be a hard
        worker death (``_certify_worker`` converts its own exceptions to
        failure verdicts — that is domain semantics, not plumbing); it
        is isolated into an error verdict, finished strategies stay
        checkpointed, and the batch resumes cleanly.  Shipped spans are
        adopted before the verdict is checkpointed: span capture never
        changes checkpoint or artifact bytes.
        """
        strategy: AttackerStrategy = job.payload["strategy"]
        if result.ok:
            raw = result.value
        else:
            raw = _error_verdict(
                strategy, result.error_type, result.error
            ).to_json_dict()
        if result.spans is not None and self.tracer is not None:
            adopt_spans(
                self.tracer, f"strategy {strategy.name}", "batch",
                result.spans,
            )
        self._completed[strategy.name] = raw
        self._save_checkpoint(scheme)
        _LOG.info("strategy done", extra={
            "scheme": scheme, "strategy": strategy.name,
            "passed": raw.get("passed"),
        })

    # -- export ---------------------------------------------------------

    def export_jsonl(
        self, certificate: Certificate, path: str
    ) -> None:
        """Write the certification artifact: one JSON line per verdict
        (batch order) plus a trailer line with the aggregate — no
        volatile values, so any two equivalent runs produce the same
        bytes."""
        from ..telemetry.collector import open_sink

        handle = open_sink(path)
        try:
            write_certificate_jsonl(certificate, handle)
        finally:
            handle.close()

    def export_trace(self, path: str) -> int:
        """Write the merged batch span trace as Chrome trace JSON.

        Requires ``collect_spans=True``; returns the span count."""
        from ..errors import TelemetryError
        from ..telemetry.chrome import export_span_trace

        if self.tracer is None:
            raise TelemetryError(
                "span trace export requires "
                "CertificationRun(collect_spans=True)"
            )
        return export_span_trace(
            self.tracer, path, metadata={"source": "certify"}
        )

    def metrics_registry(self, certificate: Certificate):
        """The certificate as telemetry: per-strategy MI gauges plus
        batch counters, mergeable into any grid/dashboard registry."""
        from ..telemetry.registry import MetricsRegistry

        registry = MetricsRegistry()
        labels = ("scheme", "strategy", "family")
        mi = registry.gauge(
            "certify_mi_bits",
            "bias-corrected MI point estimate per strategy", labels,
        )
        upper = registry.gauge(
            "certify_mi_upper_bits",
            "bootstrap MI upper confidence bound per strategy", labels,
        )
        capacity = registry.gauge(
            "certify_capacity_bits",
            "empirical two-secret channel capacity per strategy",
            labels,
        )
        exact = registry.gauge(
            "certify_exact_match",
            "1 when both worlds matched bit-for-bit", labels,
        )
        outcomes = registry.counter(
            "certify_strategies_total",
            "strategy verdicts by outcome", ("scheme", "outcome"),
        )
        for v in certificate.verdicts:
            key = dict(
                scheme=certificate.scheme, strategy=v.strategy,
                family=v.family,
            )
            if v.error_type is None:
                mi.set(round(v.mi_bits, 9), **key)
                upper.set(round(v.mi_upper_bits, 9), **key)
                capacity.set(round(v.capacity_bits, 9), **key)
            exact.set(int(v.exact_match), **key)
            outcome = (
                "error" if v.error_type is not None
                else "pass" if v.passed else "leak"
            )
            outcomes.inc(scheme=certificate.scheme, outcome=outcome)
        if certificate.skipped:
            outcomes.inc(
                len(certificate.skipped),
                scheme=certificate.scheme, outcome="skipped",
            )
        registry.gauge(
            "certify_epsilon_bits", "certification tolerance",
            ("scheme",),
        ).set(round(certificate.epsilon_bits, 12),
              scheme=certificate.scheme)
        registry.gauge(
            "certify_certified",
            "1 when the scheme certified under the batch", ("scheme",),
        ).set(int(certificate.certified), scheme=certificate.scheme)
        wall = registry.gauge(
            "certify_wall_seconds",
            "wall clock of the last batch", volatile=True,
        )
        if self.last_wall_s is not None:
            wall.set(round(self.last_wall_s, 6))
        return registry


def write_certificate_jsonl(certificate: Certificate, handle) -> None:
    """Stream one certificate into an open JSONL handle: verdict lines
    in batch order, then the aggregate trailer.  Pure function of the
    certificate, so equivalent runs write identical bytes (the CLI
    concatenates several schemes' certificates into one artifact)."""
    for verdict in certificate.verdicts:
        handle.write(json.dumps(
            verdict.to_json_dict(), sort_keys=True
        ))
        handle.write("\n")
    handle.write(json.dumps(
        certificate.summary_dict(), sort_keys=True
    ))
    handle.write("\n")


def certify_scheme(
    scheme: str,
    strategies: Sequence[AttackerStrategy],
    config: Optional[SystemConfig] = None,
    engine: str = "reference",
    epsilon_bits: float = DEFAULT_EPSILON_BITS,
    **run_kwargs,
) -> Certificate:
    """One-call certification: run the batch and return the
    :class:`Certificate` (see :class:`CertificationRun` for knobs)."""
    run = CertificationRun(
        config=config, engine=engine, epsilon_bits=epsilon_bits,
        **run_kwargs,
    )
    return run.run(scheme, strategies)


__all__ = [
    "CHECKPOINT_VERSION",
    "Certificate",
    "CertificationRun",
    "DEFAULT_EPSILON_BITS",
    "StrategyVerdict",
    "certify_scheme",
    "certify_strategy",
    "two_world_samples",
    "write_certificate_jsonl",
]
