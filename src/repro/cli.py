"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``solve``   — print the minimal slot gaps / pipeline geometry for the
  configured DRAM part (Sections 3-4).
* ``run``     — simulate one scheme on one workload and print the result
  (``--metrics`` / ``--trace`` write telemetry artifacts).
* ``compare`` — run several schemes on one workload against the baseline.
* ``audit``   — non-interference check for a scheme (Figure 4 style).
* ``covert``  — covert-channel measurement through a scheme.
* ``stats``   — per-domain inter-service-time distribution (the paper's
  invariance picture) plus metrics export and engine throughput.
* ``trace``   — record a run's full timeline and export it as Chrome
  trace-event JSON for Perfetto / ``chrome://tracing``.
* ``sweep``   — run a (scheme x workload) grid with failure isolation
  and optional JSON checkpoint/resume (``--metrics`` aggregates the
  grid into a JSON or Prometheus artifact; ``--trace`` writes the
  merged hierarchical span trace).
* ``certify`` — adversarial non-interference certification: fan a
  seed-deterministic attacker strategy batch through paired two-world
  experiments and exit non-zero unless every requested scheme's MI
  upper bound stays within epsilon.
* ``bench``   — the performance ledger: ``bench record`` appends a
  ``BENCH_<n>.json`` suite measurement, ``bench compare`` diffs two
  entries and exits non-zero on regression.
* ``report``  — render one self-contained HTML artifact for a run
  (metrics, leakage histograms, span summary, optional certification
  and bench sections).
* ``store``   — inspect and maintain the content-addressed result
  store (``path``/``ls``/``verify``/``gc``).  ``run``, ``sweep``,
  ``certify``, and ``bench record`` additionally accept
  ``--store [DIR]``/``--no-store`` to reuse cached results across
  sessions (default location ``~/.cache/repro-store`` or
  ``REPRO_STORE_DIR``).

``--log-level`` arms structured JSON-lines logging on stderr for every
command.  Any :class:`~repro.errors.ReproError` (bad config, malformed
trace, unknown fault spec, schedule violation, ...) is reported on
stderr and exits with status 2 instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.covert import run_covert_channel
from .analysis.leakage import interference_report
from .analysis.report import format_table
from .core.pipeline_solver import PipelineSolver
from .core.schedule import (
    build_fs_schedule,
    build_reordered_bp_geometry,
    build_triple_alternation_schedule,
)
from .core.pipeline_solver import PeriodicMode, SharingLevel
from .dram.timing import DDR3_1600_X4
from .errors import ReproError
from .faults import FaultPlan
from .sim.config import SystemConfig
from .sim.runner import ENGINES, SCHEMES, SchemeOptions, run_scheme
from .sim.sweep import Sweep
from .workloads.spec import EVALUATION_SUITE, suite_specs, workload


def _positive_int(text: str) -> int:
    """argparse type for ``--workers``: an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 1, got {text!r}"
        )
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected an integer >= 1, got {text!r}"
        )
    return value


def _nonneg_float(text: str) -> float:
    """argparse type for budgets/tolerances: a number >= 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number >= 0, got {text!r}"
        )
    if not value >= 0:  # rejects negatives and NaN alike
        raise argparse.ArgumentTypeError(
            f"expected a number >= 0, got {text!r}"
        )
    return value


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    """The ``--store``/``--no-store`` pair shared by cache-aware commands."""
    parser.add_argument(
        "--store", nargs="?", const="", default=None, metavar="DIR",
        help="reuse results from the content-addressed store; with no "
             "DIR the default root applies (REPRO_STORE_DIR or "
             "~/.cache/repro-store)",
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="force the result store off (overrides --store)",
    )


def _store_from_args(args):
    """The :class:`~repro.store.ResultStore` a command asked for, or None.

    The store is strictly opt-in: absent ``--store`` (or with
    ``--no-store``) nothing is read or written, so determinism gates
    that compare serial vs parallel artifacts always measure real
    executions.
    """
    if getattr(args, "no_store", False) or args.store is None:
        return None
    from .store import ResultStore

    return ResultStore(args.store or None)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--accesses", type=int, default=1000,
        help="memory accesses per core (default 1000)",
    )
    parser.add_argument(
        "--cores", type=int, default=8, help="cores / security domains"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="trace generation seed"
    )


def _config(args) -> SystemConfig:
    config = SystemConfig(
        accesses_per_core=args.accesses, seed=args.seed
    )
    if args.cores != config.num_cores:
        config = config.with_cores(args.cores)
    return config


def cmd_solve(args) -> int:
    """Print the solved pipeline constants for the default part."""
    solver = PipelineSolver(DDR3_1600_X4)
    rows = []
    for sharing in SharingLevel:
        for mode in PeriodicMode:
            rows.append([sharing.value, mode.value,
                         solver.solve(mode, sharing)])
    print(format_table(
        ["sharing", "periodic mode", "minimal l"], rows,
        title="Minimal conflict-free slot gaps (DDR3-1600, Table 1)",
    ))
    n = args.cores
    rp = build_fs_schedule(DDR3_1600_X4, n, SharingLevel.RANK)
    ta = build_triple_alternation_schedule(DDR3_1600_X4, n)
    re = build_reordered_bp_geometry(DDR3_1600_X4, n)
    print(f"\n{n}-domain geometry: FS_RP Q={rp.interval_length} "
          f"({rp.peak_utilization():.0%}), reordered BP "
          f"Q={re.interval_length} ({re.peak_utilization(4):.0%}), "
          f"triple alternation Q={ta.interval_length} "
          f"({ta.peak_utilization():.0%})")
    return 0


def _write_registry(registry, handle, path: str) -> None:
    """Write a metrics registry: Prometheus text for ``.prom``/``.txt``
    suffixes, the JSON export otherwise."""
    if path.endswith((".prom", ".txt")):
        handle.write(registry.to_prometheus())
    else:
        handle.write(registry.to_json())
        handle.write("\n")


def _run_summary_worker(payload):
    """Store-keyable kernel of ``repro run``: the printed summary fields.

    Module-level and plain-data-in/plain-data-out so the result store
    can content-address it like any substrate job.  Deliberately covers
    only the headline table — fault injection, the invariant monitor,
    and telemetry artifacts need live objects and always run uncached.
    """
    config = SystemConfig(
        accesses_per_core=payload["accesses"], seed=payload["seed"]
    )
    if payload["cores"] != config.num_cores:
        config = config.with_cores(payload["cores"])
    result = run_scheme(
        payload["scheme"], config,
        suite_specs(payload["workload"], payload["cores"]),
        SchemeOptions(prefetch=payload["prefetch"]),
        engine=payload["engine"],
    )
    return {
        "cycles": result.cycles,
        "total_reads": result.total_reads,
        "bus_utilization": result.bus_utilization,
        "mean_read_latency": result.stats.mean_read_latency,
        "dummy_fraction": result.stats.dummy_fraction,
        "energy_mj": result.energy.total_mj,
    }


def _cmd_run_cached(args, store) -> int:
    """The summary-only ``repro run`` path through the result store."""
    from .exec import JobSpec

    payload = {
        "scheme": args.scheme, "workload": args.workload,
        "cores": args.cores, "accesses": args.accesses,
        "seed": args.seed, "prefetch": bool(args.prefetch),
        "engine": args.engine,
    }
    spec = JobSpec(
        key=f"run:{args.scheme}:{args.workload}",
        fn=_run_summary_worker, payload=payload,
    )
    raw = store.lookup(spec)
    if raw is None:
        raw = {"ok": True, "value": _run_summary_worker(payload)}
        store.record(spec, raw)
    value = raw["value"]
    rows = [
        ["cycles", value["cycles"]],
        ["reads completed", value["total_reads"]],
        ["bus utilization", f"{value['bus_utilization']:.1%}"],
        ["mean read latency", f"{value['mean_read_latency']:.1f}"],
        ["dummy fraction", f"{value['dummy_fraction']:.1%}"],
        ["energy (mJ)", f"{value['energy_mj']:.3f}"],
    ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.scheme} on {args.workload} x {args.cores}",
    ))
    print(store.summary(), file=sys.stderr)
    return 0


def cmd_run(args) -> int:
    """Simulate one scheme on one workload and print a summary."""
    from .sim.runner import build_system

    store = _store_from_args(args)
    if store is not None:
        if args.inject or args.monitor or args.metrics or args.trace:
            print(
                "store: bypassed (--inject/--monitor/--metrics/--trace "
                "need live objects)", file=sys.stderr,
            )
        else:
            return _cmd_run_cached(args, store)
    config = _config(args)
    plan = None
    if args.inject:
        plan = FaultPlan.parse(args.inject, seed=args.seed)
    telemetry = None
    metrics_handle = trace_handle = None
    if args.metrics or args.trace:
        from .telemetry import TelemetrySession, TraceCollector, \
            open_sink

        # Open output paths eagerly: an unwritable path fails here, in
        # milliseconds, with a friendly TelemetryError — not after the
        # whole simulation has run.
        if args.metrics:
            metrics_handle = open_sink(args.metrics)
        if args.trace:
            trace_handle = open_sink(args.trace)
        telemetry = TelemetrySession(
            collector=TraceCollector() if args.trace else None,
            profile=True,
        )
    options = SchemeOptions(
        prefetch=args.prefetch, faults=plan, monitor=args.monitor,
        telemetry=telemetry,
    )
    system = build_system(
        args.scheme, config, suite_specs(args.workload, args.cores),
        options, engine=args.engine,
    )
    result = system.run()
    if telemetry is not None:
        telemetry.harvest(result, system.controller)
        if metrics_handle is not None:
            _write_registry(
                telemetry.registry, metrics_handle, args.metrics
            )
            metrics_handle.close()
            print(f"metrics: {args.metrics}", file=sys.stderr)
        if trace_handle is not None:
            from .telemetry import export_chrome_trace

            n = export_chrome_trace(telemetry.collector, trace_handle)
            trace_handle.close()
            print(f"trace: {n} events -> {args.trace}", file=sys.stderr)
    rows = [
        ["cycles", result.cycles],
        ["reads completed", result.total_reads],
        ["bus utilization", f"{result.bus_utilization:.1%}"],
        ["mean read latency",
         f"{result.stats.mean_read_latency:.1f}"],
        ["dummy fraction", f"{result.stats.dummy_fraction:.1%}"],
        ["energy (mJ)", f"{result.energy.total_mj:.3f}"],
    ]
    if plan is not None:
        rows.append(["faulted slots", result.stats.faulted_slots])
        rows.append(
            ["squashed duplicates", result.stats.squashed_duplicates]
        )
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.scheme} on {args.workload} x {args.cores}",
    ))
    injector = getattr(system.controller, "fault_injector", None)
    if injector is not None:
        print("\nfault campaign:")
        print(injector.summary())
    monitor = system.controller.monitor
    if monitor is not None:
        status = "CLEAN" if monitor.ok else (
            f"{len(monitor.violations)} violation(s)"
        )
        print(f"\nonline invariant monitor: {status}")
        for violation in monitor.violations[:10]:
            print(f"  {violation}")
        if not monitor.ok:
            return 1
    return 0


def cmd_compare(args) -> int:
    """Run schemes against the non-secure baseline and tabulate."""
    config = _config(args)
    specs = suite_specs(args.workload, args.cores)
    baseline = run_scheme("baseline", config, specs)
    rows = [["baseline", float(args.cores), "1.000"]]
    for scheme in args.schemes:
        result = run_scheme(scheme, config, specs)
        w = result.weighted_ipc(baseline)
        rows.append([scheme, round(w, 3),
                     f"{w / args.cores:.3f}"])
    print(format_table(
        ["scheme", "sum weighted IPC", "normalized"], rows,
        title=f"{args.workload} x {args.cores} cores",
    ))
    return 0


def cmd_audit(args) -> int:
    """Non-interference check; exit 0 iff the scheme is isolating."""
    config = _config(args)
    report = interference_report(
        args.scheme, workload(args.workload), config=config
    )
    print(f"scheme {args.scheme}, victim {args.workload}:")
    if report.identical:
        print("  NON-INTERFERING: victim timing is bit-for-bit "
              "identical under co-runner variation")
        return 0
    print("  LEAKS: profile divergence up to "
          f"{report.max_profile_divergence_cycles} cycles, read-release "
          f"divergence up to {report.max_release_divergence_cycles}")
    return 1


def cmd_covert(args) -> int:
    """Covert-channel measurement; exit 0 iff the channel is dead."""
    config = _config(args)
    result = run_covert_channel(args.scheme, config=config)
    print(f"covert channel through {args.scheme}:")
    print(f"  sent:    {''.join(map(str, result.sent_bits))}")
    print(f"  decoded: {''.join(map(str, result.decoded_bits))}")
    print(f"  bit error rate {result.bit_error_rate:.2f}, latency "
          f"swing {result.signal_swing:.1f} cycles")
    return 0 if result.bit_error_rate >= 0.3 else 1


def cmd_stats(args) -> int:
    """Leakage-aware statistics for one run.

    Prints the per-domain inter-service-time distribution — the paper's
    invariance observable — plus engine throughput, and optionally
    writes the full metrics registry.  Exit status 1 when an FS scheme's
    distribution is *not* degenerate (a timing-channel candidate the
    dashboard must catch); 0 otherwise.
    """
    from .sim.runner import build_system
    from .telemetry import TelemetrySession, histogram_report, \
        inter_service_histogram, is_degenerate, open_sink

    config = _config(args)
    handle = open_sink(args.metrics) if args.metrics else None
    telemetry = TelemetrySession(profile=True)
    options = SchemeOptions(telemetry=telemetry)
    system = build_system(
        args.scheme, config, suite_specs(args.workload, args.cores),
        options, engine=args.engine,
    )
    result = system.run()
    telemetry.harvest(result, system.controller)
    histograms = inter_service_histogram(result.service_trace)
    print(histogram_report(histograms, scheme=args.scheme))
    profiler = telemetry.profiler
    if profiler is not None and profiler.wall_seconds > 0:
        line = (
            f"\nengine ({args.engine}): {result.cycles:,} cycles in "
            f"{profiler.wall_seconds:.3f}s "
            f"({profiler.cycles_per_second:,.0f} cycles/s"
        )
        if profiler.stride_count:
            line += f", mean stride {profiler.mean_stride:.1f} cycles"
        print(line + ")")
    if handle is not None:
        _write_registry(telemetry.registry, handle, args.metrics)
        handle.close()
        print(f"metrics: {args.metrics}", file=sys.stderr)
    # The degeneracy gate applies to fixed-service schemes only; the
    # registry spec says which those are (no name sniffing).
    from .schemes import REGISTRY

    if REGISTRY.get(args.scheme).fixed_service and not is_degenerate(
        histograms
    ):
        return 1
    return 0


def cmd_trace(args) -> int:
    """Record one run's timeline and export Chrome trace JSON."""
    from .sim.runner import build_system
    from .telemetry import TelemetrySession, TraceCollector, \
        export_chrome_trace, open_sink

    config = _config(args)
    handle = open_sink(args.output)  # fail fast on a bad path
    collector = TraceCollector(capacity=args.capacity)
    telemetry = TelemetrySession(collector=collector, profile=True)
    options = SchemeOptions(telemetry=telemetry)
    system = build_system(
        args.scheme, config, suite_specs(args.workload, args.cores),
        options, engine=args.engine,
    )
    result = system.run()
    telemetry.harvest(result, system.controller)
    n = export_chrome_trace(collector, handle, metadata={
        "scheme": args.scheme,
        "workload": args.workload,
        "cores": args.cores,
        "cycles": result.cycles,
    })
    handle.close()
    dropped = (
        f" ({collector.dropped_events} oldest dropped by the "
        f"{args.capacity}-event ring)"
        if collector.dropped_events else ""
    )
    print(f"wrote {n} events{dropped} -> {args.output}")
    print("open in https://ui.perfetto.dev (or chrome://tracing)")
    return 0


def cmd_sweep(args) -> int:
    """Run a (scheme x workload) grid with failure isolation.

    Exit status 0 when every cell completed, 1 when any cell failed
    (the failures are tabulated, not fatal — resilient by design).
    """
    config = _config(args)
    store = _store_from_args(args)
    sweep = Sweep(
        config,
        max_cycles=args.max_cycles,
        checkpoint=args.checkpoint,
        point_wall_budget_s=args.wall_budget,
        strict=args.strict,
        workers=args.workers,
        engine=args.engine,
        collect_spans=bool(args.trace),
        fresh=args.fresh,
        store=store,
    )
    sweep.run_grid(args.schemes, args.workloads)
    if store is not None:
        print(store.summary(), file=sys.stderr)
    rows = [
        [p.scheme, p.workload, round(p.weighted_ipc, 3),
         f"{p.bus_utilization:.1%}", f"{p.mean_read_latency:.1f}"]
        for p in sweep.points
    ]
    print(format_table(
        ["scheme", "workload", "weighted IPC", "bus util",
         "read latency"],
        rows, title=f"sweep grid ({args.cores} cores)",
    ))
    if sweep.last_grid_wall_s is not None:
        print(f"\ngrid wall clock: {sweep.last_grid_wall_s:.2f}s "
              f"({args.workers} worker(s))")
    if sweep.failed_points:
        print("\nfailed cells:")
        for f in sweep.failed_points:
            print(f"  {f.scheme} x {f.workload}: "
                  f"{f.error_type}: {f.error}")
    if args.checkpoint:
        print(f"\ncheckpoint: {args.checkpoint}")
    if args.metrics:
        sweep.export_metrics(args.metrics)
        print(f"metrics: {args.metrics}")
    if args.trace:
        n = sweep.export_trace(args.trace)
        print(f"trace: {n} spans -> {args.trace}")
    return 1 if sweep.failed_points else 0


def cmd_certify(args) -> int:
    """Adversarial certification; exit 0 iff every scheme certified.

    Exit status: 0 when every requested scheme certified under the
    strategy batch, 1 when any scheme leaked (or a strategy errored),
    2 on a :class:`~repro.errors.ReproError` — so CI can assert both
    directions: FS schemes must exit 0, the non-secure baseline and the
    test suite's planted leaky scheme must exit 1.
    """
    import dataclasses as _dc

    from .certify import CertificationRun, generate_strategies
    from .certify.harness import write_certificate_jsonl
    from .schemes import REGISTRY
    from .telemetry import certification_report

    config = _config(args)
    schemes = args.scheme or list(REGISTRY.names_where(
        fixed_service=True, certifiable=True
    ))
    strategies = generate_strategies(
        args.strategies, seed=args.seed, families=args.families
    )
    if args.trials != 3:
        strategies = [
            _dc.replace(s, trials=args.trials) for s in strategies
        ]
    store = _store_from_args(args)
    run = CertificationRun(
        config=config,
        engine=args.engine,
        epsilon_bits=args.epsilon,
        max_cycles=args.max_cycles,
        workers=args.workers,
        checkpoint=args.checkpoint,
        budget_s=args.budget,
        collect_spans=bool(args.trace),
        fresh=args.fresh,
        store=store,
    )
    artifact_handle = None
    metrics = None
    if args.artifact:
        from .telemetry import open_sink

        artifact_handle = open_sink(args.artifact)
    all_certified = True
    try:
        for index, scheme in enumerate(schemes):
            certificate = run.run(scheme, strategies)
            all_certified = all_certified and certificate.certified
            if index:
                print()
            print(certification_report(certificate))
            if run.last_wall_s is not None:
                print(f"  ({len(certificate.verdicts)} strategies in "
                      f"{run.last_wall_s:.2f}s, {args.workers} "
                      f"worker(s))", file=sys.stderr)
            if artifact_handle is not None:
                write_certificate_jsonl(certificate, artifact_handle)
            if args.metrics:
                registry = run.metrics_registry(certificate)
                metrics = (
                    registry if metrics is None
                    else metrics.merge(registry)
                )
    finally:
        if artifact_handle is not None:
            artifact_handle.close()
    if store is not None:
        print(store.summary(), file=sys.stderr)
    if args.artifact:
        print(f"artifact: {args.artifact}", file=sys.stderr)
    if args.trace:
        n = run.export_trace(args.trace)
        print(f"trace: {n} spans -> {args.trace}", file=sys.stderr)
    if metrics is not None:
        handle = None
        from .telemetry import open_sink

        handle = open_sink(args.metrics)
        _write_registry(metrics, handle, args.metrics)
        handle.close()
        print(f"metrics: {args.metrics}", file=sys.stderr)
    return 0 if all_certified else 1


def cmd_bench_record(args) -> int:
    """Run the pinned benchmark suite and append a ledger entry."""
    from . import bench

    store = _store_from_args(args)
    path = bench.record(
        args.root,
        accesses=args.accesses,
        cores=args.cores,
        seed=args.seed,
        label=args.label,
        workers=args.workers,
        checkpoint=args.checkpoint,
        fresh=args.fresh,
        store=store,
    )
    if store is not None:
        print(store.summary(), file=sys.stderr)
    print(f"recorded: {path}")
    return 0


def cmd_bench_compare(args) -> int:
    """Diff two ledger entries; exit 1 when a metric regresses."""
    from . import bench

    comparison = bench.compare(
        args.old, args.new, tolerance=args.tolerance
    )
    print(bench.format_comparison(comparison))
    return 0 if comparison.passed else 1


def cmd_store_path(args) -> int:
    """Print the resolved result-store root directory."""
    from .store import resolve_store_root

    print(resolve_store_root(args.store))
    return 0


def cmd_store_ls(args) -> int:
    """List every entry in the result store with its health status."""
    from .store import iter_entries, resolve_store_root

    root = resolve_store_root(args.store)
    rows = []
    total = 0
    for entry in iter_entries(root):
        total += entry.size
        rows.append(
            [entry.key[:16], entry.status, entry.size, entry.fn]
        )
    if not rows:
        print(f"store {root}: empty")
        return 0
    print(format_table(
        ["key", "status", "bytes", "fn"], rows, title=f"store {root}",
    ))
    print(f"\n{len(rows)} entries, {total} bytes")
    return 0


def cmd_store_gc(args) -> int:
    """Reap corrupt/stale (and optionally aged or all) store entries."""
    from .store import gc as store_gc, resolve_store_root

    root = resolve_store_root(args.store)
    older = (
        args.older_than * 86400.0
        if args.older_than is not None else None
    )
    result = store_gc(root, older_than_s=older, everything=args.all)
    print(
        f"store {root}: removed {result.removed}, kept {result.kept}, "
        f"reclaimed {result.reclaimed_bytes} bytes"
    )
    return 0


def cmd_store_verify(args) -> int:
    """Audit every store entry; exit 1 when any is corrupt or stale."""
    from .store import resolve_store_root, verify as store_verify

    root = resolve_store_root(args.store)
    bad = store_verify(root)
    if not bad:
        print(f"store {root}: OK")
        return 0
    for entry in bad:
        print(f"{entry.status}: {entry.path}")
    print(f"store {root}: {len(bad)} bad entries")
    return 1


def cmd_report(args) -> int:
    """Render one self-contained HTML artifact for a run."""
    from .telemetry import (
        SpanTracer,
        TelemetrySession,
        inter_service_histogram,
        render_report,
        write_report,
    )

    config = _config(args)
    tracer = SpanTracer()
    telemetry = TelemetrySession(profile=True, tracer=tracer)
    options = SchemeOptions(telemetry=telemetry)
    result = run_scheme(
        args.scheme, config, suite_specs(args.workload, args.cores),
        options, engine=args.engine,
    )
    telemetry.harvest(result)
    histograms = inter_service_histogram(result.service_trace)

    certificate = None
    if args.certify:
        import dataclasses as _dc

        from .certify.harness import CertificationRun
        from .certify.strategies import generate_strategies

        strategies = [
            _dc.replace(s, trials=args.trials)
            for s in generate_strategies(args.certify, seed=args.seed)
        ]
        run = CertificationRun(
            config=config, engine=args.engine,
            max_cycles=args.max_cycles, collect_spans=True,
        )
        certificate = run.run(args.scheme, strategies)
        tracer.adopt(run.tracer.records, track="certify")

    comparison = None
    if args.bench_dir:
        from . import bench

        entries = bench.ledger_entries(args.bench_dir)
        if len(entries) >= 2:
            comparison = bench.compare(entries[-2][1], entries[-1][1])
        else:
            print(
                f"note: {args.bench_dir} holds {len(entries)} ledger "
                "entries; need 2+ for a bench section",
                file=sys.stderr,
            )

    document = render_report(
        f"{args.scheme} x {args.workload} — run report",
        registry=telemetry.registry,
        histograms=histograms,
        certificate=certificate,
        span_summary=tracer.summary(),
        bench_comparison=comparison,
        metadata={
            "scheme": args.scheme,
            "workload": args.workload,
            "engine": args.engine,
            "cores": args.cores,
            "accesses": args.accesses,
            "seed": args.seed,
            "cycles": result.cycles,
        },
    )
    write_report(args.output, document)
    print(f"report: {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fixed Service memory controllers (MICRO-48 2015) "
                    "— simulation toolkit",
    )
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=["debug", "info", "warning", "error", "critical"],
        help="arm structured JSON-lines logging on stderr at this "
             "level (default: warning, quiet)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="pipeline constants (Sections 3-4)")
    _add_common(p)
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("run", help="simulate one scheme")
    p.add_argument("scheme", choices=SCHEMES)
    p.add_argument("workload", help="benchmark or mix name "
                   f"(e.g. {', '.join(EVALUATION_SUITE[:4])}, ...)")
    p.add_argument("--prefetch", action="store_true")
    p.add_argument(
        "--inject", metavar="SPEC", default=None,
        help="seed-deterministic fault campaign, e.g. "
             "'drop_command:0.02,delay_slot:0.01' "
             "(kinds: see repro.faults.FaultKind)",
    )
    p.add_argument(
        "--monitor", action="store_true",
        help="attach the online invariant monitor and report "
             "violations (exit 1 when any fire)",
    )
    p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the run's metrics registry (JSON; .prom/.txt "
             "selects Prometheus text exposition)",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write the run's timeline as Chrome trace-event JSON "
             "(open in Perfetto)",
    )
    p.add_argument(
        "--engine", choices=ENGINES, default="reference",
        help="simulation engine (default reference)",
    )
    _add_store_flags(p)
    _add_common(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="schemes vs the baseline")
    p.add_argument("workload")
    p.add_argument("schemes", nargs="+",
                   help=f"schemes to compare ({', '.join(SCHEMES)})")
    _add_common(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("audit", help="non-interference check")
    p.add_argument("scheme", choices=SCHEMES)
    p.add_argument("--workload", default="mcf")
    _add_common(p)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("covert", help="covert-channel measurement")
    p.add_argument("scheme", choices=SCHEMES)
    _add_common(p)
    p.set_defaults(func=cmd_covert)

    p = sub.add_parser(
        "stats",
        help="per-domain inter-service-time distribution + metrics",
    )
    p.add_argument("scheme", choices=SCHEMES)
    p.add_argument("workload", help="benchmark or mix name")
    p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the metrics registry (JSON; .prom/.txt selects "
             "Prometheus text exposition)",
    )
    p.add_argument(
        "--engine", choices=ENGINES, default="fast",
        help="simulation engine (default fast)",
    )
    _add_common(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "trace", help="export a run as Chrome trace-event JSON"
    )
    p.add_argument("scheme", choices=SCHEMES)
    p.add_argument("workload", help="benchmark or mix name")
    p.add_argument("output", help="output path (e.g. out.trace.json)")
    p.add_argument(
        "--capacity", type=int, default=1 << 20,
        help="trace ring-buffer bound in events (default 1Mi; the "
             "oldest events are dropped past it)",
    )
    p.add_argument(
        "--engine", choices=ENGINES, default="fast",
        help="simulation engine (default fast)",
    )
    _add_common(p)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "sweep", help="resilient (scheme x workload) grid"
    )
    p.add_argument("--schemes", nargs="+", default=["fs_rp"],
                   help=f"schemes to sweep ({', '.join(SCHEMES)})")
    p.add_argument("--workloads", nargs="+", default=["mcf"],
                   help="workload/mix names, one grid column each")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="JSON checkpoint; a killed sweep resumes from "
                        "the last completed cell")
    p.add_argument("--max-cycles", type=int, default=8_000_000,
                   help="per-cell cycle budget")
    p.add_argument("--fresh", action="store_true",
                   help="discard any existing checkpoint instead of "
                        "resuming (escape hatch for corrupt files)")
    p.add_argument("--wall-budget", type=_nonneg_float, default=None,
                   metavar="SECONDS",
                   help="per-cell wall-clock budget; a cell exceeding "
                        "it is recorded as failed instead of hanging")
    p.add_argument("--strict", action="store_true",
                   help="re-raise the first cell failure (CI gate)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="worker processes for the grid (default 1; "
                        "results are bit-identical at any count)")
    p.add_argument(
        "--engine", choices=ENGINES, default="fast",
        help="simulation engine for every cell (default fast)",
    )
    p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="aggregate the finished grid into a metrics artifact "
             "(JSON; .prom/.txt selects Prometheus text exposition)",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="collect hierarchical spans in every cell and write the "
             "merged Chrome trace-event JSON (deterministic modulo "
             "wall-clock args at any --workers count)",
    )
    _add_store_flags(p)
    _add_common(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "certify",
        help="adversarial non-interference certification",
    )
    p.add_argument(
        "--scheme", action="append", default=None, metavar="NAME",
        help="scheme to certify (repeatable; default: every "
             "certifiable fixed-service scheme)",
    )
    p.add_argument(
        "--strategies", type=int, default=10, metavar="N",
        help="attacker strategies to generate (default 10; round-"
             "robins the registered families)",
    )
    p.add_argument(
        "--families", nargs="+", default=None,
        help="restrict generation to these strategy families "
             "(default: all registered)",
    )
    p.add_argument(
        "--trials", type=int, default=3,
        help="paired two-world trials per strategy (default 3)",
    )
    p.add_argument(
        "--epsilon", type=float, default=0.01, metavar="BITS",
        help="leakage tolerance: max admissible MI upper bound in "
             "bits (default 0.01)",
    )
    p.add_argument(
        "--budget", type=_nonneg_float, default=None, metavar="SECONDS",
        help="wall-clock budget per scheme batch; strategies past it "
             "are recorded as skipped instead of run",
    )
    p.add_argument(
        "--workers", type=_positive_int, default=1,
        help="worker processes for the batch (default 1; the "
             "artifact is byte-identical at any count)",
    )
    p.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="JSON checkpoint; a killed batch resumes without "
             "re-running finished strategies (single-scheme runs)",
    )
    p.add_argument(
        "--fresh", action="store_true",
        help="discard any existing checkpoint instead of resuming "
             "(escape hatch for corrupt files)",
    )
    p.add_argument(
        "--artifact", default=None, metavar="PATH",
        help="write the certification verdicts as JSONL "
             "(deterministic: serial and parallel runs match bytes)",
    )
    p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="export per-strategy MI gauges as a metrics artifact "
             "(JSON; .prom/.txt selects Prometheus text exposition)",
    )
    p.add_argument(
        "--max-cycles", type=int, default=2_000_000,
        help="per-world cycle budget (default 2M)",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="collect per-trial spans and write the merged Chrome "
             "trace-event JSON",
    )
    p.add_argument(
        "--engine", choices=ENGINES, default="reference",
        help="simulation engine for both worlds (default reference)",
    )
    _add_store_flags(p)
    _add_common(p)
    p.set_defaults(func=cmd_certify)

    p = sub.add_parser(
        "bench", help="performance-regression benchmark ledger"
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    b = bench_sub.add_parser(
        "record",
        help="run the pinned suite, append BENCH_<n>.json",
    )
    b.add_argument(
        "--root", default=".", metavar="DIR",
        help="ledger directory (default: current directory)",
    )
    b.add_argument(
        "--accesses", type=int, default=300,
        help="suite scale: memory accesses per core (default 300)",
    )
    b.add_argument(
        "--cores", type=int, default=4,
        help="suite scale: cores / security domains (default 4)",
    )
    b.add_argument(
        "--seed", type=int, default=7,
        help="suite trace seed (default 7)",
    )
    b.add_argument(
        "--label", default="",
        help="free-form label stored in the entry (e.g. a git sha)",
    )
    b.add_argument(
        "--workers", type=_positive_int, default=1,
        help="worker processes for the suite (default 1; the "
             "recorded deterministic metrics are identical at any "
             "count, wall-clock-derived ones are noisier)",
    )
    b.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="JSON checkpoint; a killed suite resumes without "
             "re-running finished cases",
    )
    b.add_argument(
        "--fresh", action="store_true",
        help="discard any existing checkpoint instead of resuming "
             "(escape hatch for corrupt files)",
    )
    _add_store_flags(b)
    b.set_defaults(func=cmd_bench_record)

    b = bench_sub.add_parser(
        "compare",
        help="diff two ledger entries; exit 1 on regression",
    )
    b.add_argument("old", help="baseline BENCH_<n>.json")
    b.add_argument("new", help="candidate BENCH_<n>.json")
    b.add_argument(
        "--tolerance", type=_nonneg_float, default=None, metavar="FRAC",
        help="relative move treated as noise (default 0.15, or the "
             "REPRO_BENCH_TOLERANCE environment variable)",
    )
    b.set_defaults(func=cmd_bench_compare)

    p = sub.add_parser(
        "store", help="content-addressed result-store maintenance"
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)

    def _store_root_flag(sp):
        sp.add_argument(
            "--store", default=None, metavar="DIR",
            help="store root (default: REPRO_STORE_DIR or "
                 "~/.cache/repro-store)",
        )

    s = store_sub.add_parser(
        "path", help="print the resolved store root"
    )
    _store_root_flag(s)
    s.set_defaults(func=cmd_store_path)

    s = store_sub.add_parser("ls", help="list cached entries")
    _store_root_flag(s)
    s.set_defaults(func=cmd_store_ls)

    s = store_sub.add_parser(
        "verify",
        help="audit entry health; exit 1 on corrupt/stale entries",
    )
    _store_root_flag(s)
    s.set_defaults(func=cmd_store_verify)

    s = store_sub.add_parser(
        "gc", help="reap corrupt/stale (and optionally aged) entries"
    )
    _store_root_flag(s)
    s.add_argument(
        "--older-than", type=_nonneg_float, default=None,
        metavar="DAYS",
        help="also remove healthy entries untouched for this many days",
    )
    s.add_argument(
        "--all", action="store_true",
        help="remove every entry (empty the store)",
    )
    s.set_defaults(func=cmd_store_gc)

    p = sub.add_parser(
        "report", help="self-contained HTML run report"
    )
    p.add_argument("scheme", choices=SCHEMES)
    p.add_argument("workload", help="benchmark or mix name")
    p.add_argument(
        "--output", default="report.html", metavar="PATH",
        help="output HTML path (default report.html)",
    )
    p.add_argument(
        "--certify", type=int, default=0, metavar="N",
        help="also run N attacker strategies and include the "
             "certification section (default 0: skip)",
    )
    p.add_argument(
        "--trials", type=int, default=2,
        help="paired trials per strategy for --certify (default 2)",
    )
    p.add_argument(
        "--max-cycles", type=int, default=2_000_000,
        help="per-world cycle budget for --certify (default 2M)",
    )
    p.add_argument(
        "--bench-dir", default=None, metavar="DIR",
        help="benchmark ledger directory; includes the delta between "
             "its two newest entries",
    )
    p.add_argument(
        "--engine", choices=ENGINES, default="fast",
        help="simulation engine (default fast)",
    )
    _add_common(p)
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.log_level:
            from .telemetry import configure

            configure(args.log_level)
        return args.func(args)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
