"""Address mapping and OS-level spatial partitioning policies."""

from .address import AddressMapper, Geometry, FIELDS
from .partition import (
    PartitionPolicy,
    ChannelPartition,
    RankPartition,
    BankPartition,
    NoPartition,
    make_partition,
)

__all__ = [
    "AddressMapper", "Geometry", "FIELDS",
    "PartitionPolicy", "ChannelPartition", "RankPartition",
    "BankPartition", "NoPartition", "make_partition",
]
