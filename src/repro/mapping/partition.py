"""Spatial partitioning policies (Section 4 of the paper).

A partition policy plays the role of the OS/hypervisor page-coloring
component: it owns the mapping from a security domain's *private* line
address space onto the physical DRAM resources that domain is allowed to
touch.  Four levels are modelled:

* :class:`ChannelPartition` — domain -> channel(s); no shared resources.
* :class:`RankPartition` — domain -> rank(s); channel buses shared.
* :class:`BankPartition` — domain -> disjoint banks; ranks shared.
* :class:`NoPartition` — everything shared.

Every policy exposes ``decode(domain, line)`` returning a physical
:class:`~repro.dram.commands.Address` inside the domain's allocation, plus
introspection helpers the FS schedulers use to build their pipelines.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

from ..dram.commands import Address
from .address import AddressMapper, Geometry


def interleave_decode(
    resources: Sequence[Tuple[int, int, int]],
    geometry: Geometry,
    line: int,
) -> Address:
    """Map a domain-local line onto a resource list, row-interleaved.

    Consecutive lines stay in the same DRAM row (preserving row-buffer
    locality) while successive rows rotate across the domain's banks and
    ranks — the page-coloring layout an OS would actually use, and the
    one that preserves bank-level parallelism inside a partition.
    """
    if not resources:
        raise ValueError("cannot decode into an empty resource list")
    cols = geometry.columns
    n = len(resources)
    line %= n * geometry.rows * cols
    column = line % cols
    chunk = line // cols
    channel, rank, bank = resources[chunk % n]
    row = (chunk // n) % geometry.rows
    return Address(channel, rank, bank, row, column)


class PartitionPolicy(abc.ABC):
    """Maps (domain, domain-local line address) -> physical address."""

    def __init__(self, geometry: Geometry, num_domains: int) -> None:
        if num_domains < 1:
            raise ValueError("need at least one domain")
        self.geometry = geometry
        self.num_domains = num_domains

    @abc.abstractmethod
    def decode(self, domain: int, line: int) -> Address:
        """Physical address for the domain-local ``line``."""

    @abc.abstractmethod
    def resources(self, domain: int) -> List[Tuple[int, int, int]]:
        """(channel, rank, bank) triples the domain may touch."""

    @property
    @abc.abstractmethod
    def level(self) -> str:
        """'channel' | 'rank' | 'bank' | 'none'."""

    def domains_share_rank(self) -> bool:
        """Do two different domains ever touch the same rank?"""
        seen: Dict[Tuple[int, int], int] = {}
        for d in range(self.num_domains):
            for ch, rk, _ in self.resources(d):
                owner = seen.setdefault((ch, rk), d)
                if owner != d:
                    return True
        return False

    def domains_share_bank(self) -> bool:
        """Do two different domains ever touch the same bank?"""
        seen: Dict[Tuple[int, int, int], int] = {}
        for d in range(self.num_domains):
            for key in self.resources(d):
                owner = seen.setdefault(key, d)
                if owner != d:
                    return True
        return False

    def _check_domain(self, domain: int) -> None:
        if not 0 <= domain < self.num_domains:
            raise ValueError(f"domain {domain} out of range")


class ChannelPartition(PartitionPolicy):
    """Each domain owns ``channels / num_domains`` whole channels."""

    def __init__(self, geometry: Geometry, num_domains: int) -> None:
        super().__init__(geometry, num_domains)
        if geometry.channels < num_domains:
            raise ValueError(
                "channel partitioning needs at least one channel per domain"
            )
        self._per_domain = geometry.channels // num_domains

    @property
    def level(self) -> str:
        return "channel"

    def channels_of(self, domain: int) -> List[int]:
        self._check_domain(domain)
        start = domain * self._per_domain
        return list(range(start, start + self._per_domain))

    def decode(self, domain: int, line: int) -> Address:
        return interleave_decode(
            self.resources(domain), self.geometry, line
        )

    def resources(self, domain: int) -> List[Tuple[int, int, int]]:
        out = []
        for ch in self.channels_of(domain):
            for rk in range(self.geometry.ranks):
                for bk in range(self.geometry.banks):
                    out.append((ch, rk, bk))
        return out


class RankPartition(PartitionPolicy):
    """Each domain owns one or more whole ranks (round-robin assignment).

    With N domains over C*R ranks, domain ``d`` owns ranks
    ``{d, d+N, d+2N, ...}`` in channel-major numbering; the common 8-thread
    / 1-channel / 8-rank configuration gives exactly one rank per domain,
    the Figure-1 setup.
    """

    def __init__(self, geometry: Geometry, num_domains: int) -> None:
        super().__init__(geometry, num_domains)
        total_ranks = geometry.channels * geometry.ranks
        if total_ranks < num_domains:
            raise ValueError(
                "rank partitioning needs at least one rank per domain"
            )
        self._assignment: Dict[int, List[Tuple[int, int]]] = {
            d: [] for d in range(num_domains)
        }
        for idx in range(total_ranks):
            ch, rk = divmod(idx, geometry.ranks)
            self._assignment[idx % num_domains].append((ch, rk))

    @property
    def level(self) -> str:
        return "rank"

    def ranks_of(self, domain: int) -> List[Tuple[int, int]]:
        self._check_domain(domain)
        return list(self._assignment[domain])

    def decode(self, domain: int, line: int) -> Address:
        return interleave_decode(
            self.resources(domain), self.geometry, line
        )

    def resources(self, domain: int) -> List[Tuple[int, int, int]]:
        return [
            (ch, rk, bk)
            for ch, rk in self.ranks_of(domain)
            for bk in range(self.geometry.banks)
        ]


class BankPartition(PartitionPolicy):
    """Each domain owns a disjoint set of banks spread across all ranks.

    Domain ``d`` owns bank ``b`` of rank ``r`` whenever
    ``(r * banks + b) % num_domains == d``; with 8 domains over 8x8
    banks each domain gets one bank in every rank, so its accesses spread
    across ranks while banks are never shared — the Section 4.2 setup.
    """

    def __init__(self, geometry: Geometry, num_domains: int) -> None:
        super().__init__(geometry, num_domains)
        total_banks = geometry.channels * geometry.ranks * geometry.banks
        if total_banks < num_domains:
            raise ValueError(
                "bank partitioning needs at least one bank per domain"
            )
        self._assignment: Dict[int, List[Tuple[int, int, int]]] = {
            d: [] for d in range(num_domains)
        }
        for idx in range(total_banks):
            ch, rest = divmod(idx, geometry.ranks * geometry.banks)
            rk, bk = divmod(rest, geometry.banks)
            self._assignment[idx % num_domains].append((ch, rk, bk))

    @property
    def level(self) -> str:
        return "bank"

    def banks_of(self, domain: int) -> List[Tuple[int, int, int]]:
        self._check_domain(domain)
        return list(self._assignment[domain])

    def decode(self, domain: int, line: int) -> Address:
        return interleave_decode(
            self.banks_of(domain), self.geometry, line
        )

    def resources(self, domain: int) -> List[Tuple[int, int, int]]:
        return self.banks_of(domain)


class NoPartition(PartitionPolicy):
    """All domains interleave over the whole memory system.

    Virtual-to-physical translation is modelled: the OS hands out 4 KB
    physical pages in effectively random order, so a domain-sequential
    stream scatters across banks at page granularity (``page_scatter``).
    This matches the full-system environment the paper measured in; a
    physically-contiguous layout is available for experiments by passing
    ``page_scatter=False``.
    """

    #: Cache lines per OS page (4 KB pages of 64 B lines).
    LINES_PER_PAGE = 64

    def __init__(
        self,
        geometry: Geometry,
        num_domains: int,
        mapper: AddressMapper = None,
        page_scatter: bool = True,
    ) -> None:
        super().__init__(geometry, num_domains)
        self.mapper = mapper or AddressMapper(geometry)
        self.page_scatter = page_scatter

    @property
    def level(self) -> str:
        return "none"

    def decode(self, domain: int, line: int) -> Address:
        self._check_domain(domain)
        # Offset domains so identical local streams do not alias to the
        # same physical lines (they still share banks freely).
        stride = self.geometry.lines_total // max(1, self.num_domains)
        if self.page_scatter:
            page, offset = divmod(line, self.LINES_PER_PAGE)
            # Deterministic pseudo-random page frame (a Weyl/odd-multiplier
            # permutation keeps distinct pages distinct).
            frame = (page * 0x9E3779B1 + domain * 0x85EBCA6B) & 0x7FFFFFFF
            line = frame * self.LINES_PER_PAGE + offset
        return self.mapper.decode(line + domain * stride)

    def resources(self, domain: int) -> List[Tuple[int, int, int]]:
        self._check_domain(domain)
        return [
            (ch, rk, bk)
            for ch in range(self.geometry.channels)
            for rk in range(self.geometry.ranks)
            for bk in range(self.geometry.banks)
        ]


def make_partition(
    level: str, geometry: Geometry, num_domains: int
) -> PartitionPolicy:
    """Factory keyed by partitioning level name."""
    policies = {
        "channel": ChannelPartition,
        "rank": RankPartition,
        "bank": BankPartition,
        "none": NoPartition,
    }
    try:
        cls = policies[level]
    except KeyError:
        raise ValueError(
            f"unknown partition level {level!r}; "
            f"expected one of {sorted(policies)}"
        ) from None
    return cls(geometry, num_domains)
