"""Physical-address to DRAM-coordinate mapping.

Addresses are cache-line granular (one line = one column burst).  The
mapper splits a line address into channel / rank / bank / row / column
fields according to an interleaving order; the default,
``row:rank:bank:column``, keeps consecutive lines in the same row (open
page friendly), matching the baseline system in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..dram.commands import Address

#: Field-order names accepted by :class:`AddressMapper`.
FIELDS = ("channel", "rank", "bank", "row", "column")


@dataclass(frozen=True)
class Geometry:
    """DRAM geometry in cache-line units.

    The default is one channel of eight ranks x eight banks with 64K rows
    of 128 lines (8 KB rows of 64 B lines) — a 4 GB rank built from 4 Gb
    parts, as in Table 1.
    """

    channels: int = 1
    ranks: int = 8
    banks: int = 8
    rows: int = 65536
    columns: int = 128

    def __post_init__(self) -> None:
        for name in ("channels", "ranks", "banks", "rows", "columns"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def lines_total(self) -> int:
        return (
            self.channels * self.ranks * self.banks
            * self.rows * self.columns
        )

    @property
    def lines_per_bank(self) -> int:
        return self.rows * self.columns

    def size(self, field: str) -> int:
        return {
            "channel": self.channels,
            "rank": self.ranks,
            "bank": self.banks,
            "row": self.rows,
            "column": self.columns,
        }[field]


class AddressMapper:
    """Split a line address into DRAM coordinates.

    ``order`` lists fields from most- to least-significant; the default
    ``("row", "rank", "bank", "column")`` with channel innermost-above-
    column gives open-page row locality with bank/rank interleaving at row
    granularity.
    """

    DEFAULT_ORDER: Tuple[str, ...] = (
        "row", "rank", "bank", "channel", "column"
    )

    def __init__(
        self,
        geometry: Geometry = Geometry(),
        order: Sequence[str] = DEFAULT_ORDER,
    ) -> None:
        order = tuple(order)
        if sorted(order) != sorted(FIELDS):
            raise ValueError(
                f"order must be a permutation of {FIELDS}, got {order}"
            )
        self.geometry = geometry
        self.order = order

    def decode(self, line_addr: int) -> Address:
        """Map a line address to DRAM coordinates (wraps modulo capacity)."""
        if line_addr < 0:
            raise ValueError("line address must be non-negative")
        remaining = line_addr % self.geometry.lines_total
        values = {}
        for field in reversed(self.order):  # least significant first
            size = self.geometry.size(field)
            values[field] = remaining % size
            remaining //= size
        return Address(
            channel=values["channel"],
            rank=values["rank"],
            bank=values["bank"],
            row=values["row"],
            column=values["column"],
        )

    def encode(self, address: Address) -> int:
        """Inverse of :meth:`decode`."""
        values = {
            "channel": address.channel,
            "rank": address.rank,
            "bank": address.bank,
            "row": address.row,
            "column": address.column,
        }
        for field, value in values.items():
            if not 0 <= value < self.geometry.size(field):
                raise ValueError(f"{field}={value} out of range")
        line = 0
        for field in self.order:  # most significant first
            line = line * self.geometry.size(field) + values[field]
        return line
