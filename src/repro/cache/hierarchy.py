"""Two-level cache hierarchy and raw-trace filtering.

:func:`filter_trace` converts a raw (pre-cache) access stream into the
post-LLC :class:`~repro.cpu.trace.Trace` that the cores feed to the
memory system: LLC read misses become memory reads, dirty evictions
become memory writes.  This mirrors the paper's Simics cache setup
(32 KB L1, 4 MB shared L2) at line granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..cpu.trace import Trace, TraceRecord
from ..dram.commands import OpType
from .cache import AccessOutcome, Cache, CacheConfig

#: Table-1-like hierarchy: 32 KB / 2-way L1 and a 4 MB / 8-way L2, with
#: 64-byte lines.
L1_CONFIG = CacheConfig(name="L1D", lines=512, associativity=2)
L2_CONFIG = CacheConfig(name="L2", lines=65536, associativity=8)


@dataclass
class HierarchyStats:
    l1_hit_rate: float
    l2_hit_rate: float
    memory_reads: int
    memory_writes: int


class CacheHierarchy:
    """L1 + shared-L2 filter for one thread's access stream."""

    def __init__(
        self,
        l1: CacheConfig = L1_CONFIG,
        l2: CacheConfig = L2_CONFIG,
    ) -> None:
        self.l1 = Cache(l1)
        self.l2 = Cache(l2)

    def access(self, line: int, is_write: bool) -> List[Tuple[OpType, int]]:
        """One CPU access; returns resulting memory transactions."""
        memory: List[Tuple[OpType, int]] = []
        outcome = self.l1.access(line, is_write)
        if outcome.writeback_line is not None:
            l2_out = self.l2.access(outcome.writeback_line, True)
            if l2_out.writeback_line is not None:
                memory.append((OpType.WRITE, l2_out.writeback_line))
        if outcome.hit:
            return memory
        l2_out = self.l2.access(line, is_write)
        if l2_out.writeback_line is not None:
            memory.append((OpType.WRITE, l2_out.writeback_line))
        if not l2_out.hit:
            memory.append((OpType.READ, line))
        return memory

    def stats(self) -> HierarchyStats:
        return HierarchyStats(
            l1_hit_rate=self.l1.hit_rate,
            l2_hit_rate=self.l2.hit_rate,
            memory_reads=self.l2.stat_misses,
            memory_writes=self.l2.stat_writebacks,
        )


def filter_trace(
    raw_accesses: Iterable[Tuple[int, int, bool]],
    name: str = "filtered",
    hierarchy: CacheHierarchy = None,
) -> Trace:
    """Filter raw accesses into a post-LLC memory trace.

    ``raw_accesses`` yields (gap_instructions, line, is_write) triples at
    CPU level.  Returns a :class:`Trace` of the resulting memory
    transactions; each carries the instruction gap accumulated since the
    previous transaction.
    """
    hierarchy = hierarchy or CacheHierarchy()
    records: List[TraceRecord] = []
    pending_gap = 0
    for gap, line, is_write in raw_accesses:
        pending_gap += gap + 1  # the access itself is an instruction
        for op, mem_line in hierarchy.access(line, is_write):
            records.append(TraceRecord(
                gap=max(0, pending_gap - 1),
                op=op,
                line=mem_line,
            ))
            pending_gap = 0
    return Trace(records, name=name)
