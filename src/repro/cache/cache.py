"""Set-associative cache model with LRU replacement.

Used by the trace tooling (:mod:`repro.cache.hierarchy`) to filter raw
address streams into the post-LLC miss streams the memory controllers
actually see — the role Simics' cache hierarchy plays in the paper's
methodology.  Addresses are cache-line granular throughout.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level, in cache lines."""

    name: str
    lines: int
    associativity: int

    def __post_init__(self) -> None:
        if self.lines < 1 or self.associativity < 1:
            raise ValueError("cache dimensions must be positive")
        if self.lines % self.associativity != 0:
            raise ValueError("lines must divide evenly into ways")

    @property
    def sets(self) -> int:
        return self.lines // self.associativity


@dataclass
class AccessOutcome:
    """Result of one cache access."""

    hit: bool
    #: Dirty line pushed out, if the access caused a writeback.
    writeback_line: Optional[int] = None


class Cache:
    """One level: LRU, write-back, write-allocate."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(config.sets)
        ]
        self.stat_hits = 0
        self.stat_misses = 0
        self.stat_writebacks = 0

    def _set_of(self, line: int) -> "OrderedDict[int, bool]":
        return self._sets[line % self.config.sets]

    def access(self, line: int, is_write: bool) -> AccessOutcome:
        """Touch ``line``; returns hit/miss and any eviction writeback."""
        if line < 0:
            raise ValueError("line must be non-negative")
        entries = self._set_of(line)
        if line in entries:
            self.stat_hits += 1
            entries.move_to_end(line)
            if is_write:
                entries[line] = True
            return AccessOutcome(hit=True)
        self.stat_misses += 1
        writeback: Optional[int] = None
        if len(entries) >= self.config.associativity:
            victim, dirty = entries.popitem(last=False)
            if dirty:
                writeback = victim
                self.stat_writebacks += 1
        entries[line] = is_write
        return AccessOutcome(hit=False, writeback_line=writeback)

    def contains(self, line: int) -> bool:
        return line in self._set_of(line)

    @property
    def hit_rate(self) -> float:
        total = self.stat_hits + self.stat_misses
        return self.stat_hits / total if total else 0.0
