"""Cache models used to derive post-LLC traces from raw access streams."""

from .cache import AccessOutcome, Cache, CacheConfig
from .hierarchy import (
    CacheHierarchy,
    HierarchyStats,
    L1_CONFIG,
    L2_CONFIG,
    filter_trace,
)

__all__ = [
    "AccessOutcome", "Cache", "CacheConfig",
    "CacheHierarchy", "HierarchyStats", "L1_CONFIG", "L2_CONFIG",
    "filter_trace",
]
