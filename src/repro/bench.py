"""The benchmark ledger: a recorded performance trajectory for the repo.

ROADMAP's north star says the simulator should run "as fast as the
hardware allows"; this module makes that claim *auditable* by pinning a
small benchmark suite and appending each measurement to a
schema-versioned ledger entry at the repository root::

    BENCH_0.json   # committed seed entry
    BENCH_1.json   # next `repro bench record`
    ...

Suite cases (all built on existing public surfaces):

* ``cycles_per_second/<engine>/<scheme>`` — simulated cycles per wall
  second from :class:`~repro.telemetry.profiler.EngineProfiler`, per
  engine on representative schemes (the headline engine-throughput
  numbers);
* ``sweep_cells_per_second`` — serial grid throughput through
  :class:`~repro.sim.sweep.Sweep` (orchestration overhead included);
* ``certify_trials_per_second`` — two-world trials per second through
  :func:`~repro.certify.harness.certify_strategy`;
* ``template_cache_hit_rate`` — the fast engine's schedule-template
  cache effectiveness (deterministic; measured from cold).

``compare`` diffs two entries with a noise-aware relative threshold:
wall-clock throughput on shared CI runners jitters, so the default
tolerance is 15% (override per invocation or via the
``REPRO_BENCH_TOLERANCE`` environment variable — CI pins an honest
floor there).  Only *regressions* beyond tolerance fail; improvements
and deterministic metrics moving within tolerance are reported but
pass.

The suite itself runs on the execution substrate (:mod:`repro.exec`),
like every other batch in the repository: ``workers=N`` fans the cases
over spawn-started processes (each case's throughput is still measured
inside its own process, but co-running cases share the machine — use
workers for wall-clock of the whole suite, serial for the least noisy
per-case numbers), and a ``checkpoint`` path makes a killed suite
resume without re-running finished cases.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import ConfigError, ExecError, ReproError
from .exec import CheckpointStore, JobSpec, run_jobs
from .telemetry.log import get_logger

#: Ledger entry schema version (bump on incompatible change).
SCHEMA_VERSION = 1

#: Suite checkpoint schema version (bump on incompatible change).
CHECKPOINT_VERSION = 1

#: Default relative regression tolerance (15%): generous enough for
#: shared-runner noise, tight enough to catch a real >=20% regression.
DEFAULT_TOLERANCE = 0.15

#: Environment override for the comparison tolerance.
TOLERANCE_ENV = "REPRO_BENCH_TOLERANCE"

_LEDGER_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

_LOG = get_logger("bench")

#: (engine, scheme) pairs whose cycles/s the suite pins.  fs_rp is the
#: paper's headline Fixed Service scheme, baseline the conventional
#: controller; both engines are measured on fs_rp so the fast path's
#: speedup itself is tracked.
ENGINE_CASES: Tuple[Tuple[str, str], ...] = (
    ("fast", "fs_rp"),
    ("fast", "baseline"),
    ("reference", "fs_rp"),
)


@dataclass(frozen=True)
class BenchMetric:
    """One measured suite number."""

    name: str
    value: float
    unit: str
    #: Direction of goodness: regressions are moves *against* it.
    higher_better: bool = True

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "value": round(self.value, 6),
            "unit": self.unit,
            "higher_better": self.higher_better,
        }


@dataclass(frozen=True)
class BenchDelta:
    """One metric's movement between two ledger entries."""

    name: str
    old: float
    new: float
    #: Relative change in the *goodness* direction (positive = better).
    rel_change: float
    regression: bool


@dataclass
class BenchComparison:
    """The outcome of diffing two ledger entries."""

    old_label: str
    new_label: str
    tolerance: float
    deltas: List[BenchDelta] = field(default_factory=list)
    #: Metrics present in only one entry (never a failure by itself).
    missing: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def passed(self) -> bool:
        return not self.regressions


# ----------------------------------------------------------------------
# Suite execution.
# ----------------------------------------------------------------------

def _engine_case(
    engine: str, scheme: str, accesses: int, cores: int, seed: int,
) -> List[BenchMetric]:
    from .sim.config import SystemConfig
    from .sim.runner import SchemeOptions, run_scheme
    from .telemetry.session import TelemetrySession
    from .workloads.spec import suite_specs

    session = TelemetrySession(profile=True)
    config = SystemConfig(
        num_cores=cores, accesses_per_core=accesses, seed=seed
    )
    run_scheme(
        scheme, config, suite_specs("mix1", cores),
        SchemeOptions(telemetry=session),
        max_cycles=50_000_000, engine=engine,
    )
    profiler = session.profiler
    return [BenchMetric(
        name=f"cycles_per_second/{engine}/{scheme}",
        value=profiler.cycles_per_second,
        unit="cycles/s",
    )]


def _sweep_case(
    accesses: int, cores: int, seed: int
) -> List[BenchMetric]:
    from .sim.config import SystemConfig
    from .sim.sweep import Sweep

    sweep = Sweep(
        SystemConfig(
            num_cores=cores, accesses_per_core=accesses, seed=seed
        ),
        max_cycles=50_000_000, strict=True,
    )
    start = time.monotonic()
    points = sweep.run_grid(["fs_rp", "tp_bp"], ["mcf", "lbm"])
    wall = time.monotonic() - start
    if wall <= 0 or not points:  # pragma: no cover - defensive
        raise ReproError("sweep benchmark produced no cells")
    return [BenchMetric(
        name="sweep_cells_per_second",
        value=len(points) / wall,
        unit="cells/s",
    )]


def _certify_case(
    accesses: int, cores: int, seed: int
) -> List[BenchMetric]:
    from .certify.harness import certify_strategy
    from .certify.strategies import generate_strategies
    from .sim.config import SystemConfig

    strategy = dataclasses.replace(
        generate_strategies(1, seed=seed)[0], trials=3
    )
    config = SystemConfig(
        num_cores=cores, accesses_per_core=accesses, seed=seed
    )
    start = time.monotonic()
    certify_strategy(
        "fs_rp", strategy, config, engine="fast",
        max_cycles=50_000_000, bootstrap_resamples=50,
    )
    wall = time.monotonic() - start
    if wall <= 0:  # pragma: no cover - defensive
        raise ReproError("certify benchmark measured no wall time")
    return [BenchMetric(
        name="certify_trials_per_second",
        value=strategy.trials / wall,
        unit="trials/s",
    )]


def _template_cache_case(
    accesses: int, cores: int, seed: int
) -> List[BenchMetric]:
    from .sim.config import SystemConfig
    from .sim.fastpath import clear_caches, template_cache_stats
    from .sim.runner import run_scheme
    from .workloads.spec import suite_specs

    clear_caches()
    for workload in ("mcf", "lbm", "mix1"):
        run_scheme(
            "fs_rp",
            SystemConfig(
                num_cores=cores, accesses_per_core=accesses, seed=seed
            ),
            suite_specs(workload, cores),
            max_cycles=50_000_000, engine="fast",
        )
    stats = template_cache_stats()
    total = stats["hits"] + stats["misses"]
    rate = stats["hits"] / total if total else 0.0
    return [BenchMetric(
        name="template_cache_hit_rate",
        value=rate,
        unit="ratio",
    )]


# -- substrate adapters (module level: spawn-picklable) -----------------

def _engine_case_job(payload: Dict[str, object]) -> Dict[str, object]:
    """Substrate job wrapping :func:`_engine_case`."""
    return _case_value(_engine_case(
        payload["engine"], payload["scheme"], payload["accesses"],
        payload["cores"], payload["seed"],
    ))


def _sweep_case_job(payload: Dict[str, object]) -> Dict[str, object]:
    """Substrate job wrapping :func:`_sweep_case`."""
    return _case_value(_sweep_case(
        payload["accesses"], payload["cores"], payload["seed"]
    ))


def _certify_case_job(payload: Dict[str, object]) -> Dict[str, object]:
    """Substrate job wrapping :func:`_certify_case`."""
    return _case_value(_certify_case(
        payload["accesses"], payload["cores"], payload["seed"]
    ))


def _template_cache_case_job(
    payload: Dict[str, object]
) -> Dict[str, object]:
    """Substrate job wrapping :func:`_template_cache_case`."""
    return _case_value(_template_cache_case(
        payload["accesses"], payload["cores"], payload["seed"]
    ))


def _case_value(metrics: List[BenchMetric]) -> Dict[str, object]:
    """A case's metrics as the plain-data job value (checkpointable)."""
    return {"metrics": [dataclasses.asdict(m) for m in metrics]}


def _suite_jobs(
    accesses: int, cores: int, seed: int
) -> List[JobSpec]:
    """The pinned suite as substrate jobs, in suite order."""
    base = {"accesses": accesses, "cores": cores, "seed": seed}
    jobs: List[JobSpec] = []
    for engine, scheme in ENGINE_CASES:
        jobs.append(JobSpec(
            key=f"engine/{engine}/{scheme}", fn=_engine_case_job,
            payload=dict(base, engine=engine, scheme=scheme),
        ))
    jobs.append(JobSpec(key="sweep", fn=_sweep_case_job,
                        payload=dict(base)))
    jobs.append(JobSpec(key="certify", fn=_certify_case_job,
                        payload=dict(base)))
    jobs.append(JobSpec(key="template_cache",
                        fn=_template_cache_case_job,
                        payload=dict(base)))
    return jobs


def run_suite(
    accesses: int = 300,
    cores: int = 4,
    seed: int = 7,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    fresh: bool = False,
    store=None,
) -> List[BenchMetric]:
    """Run the pinned suite and return its metrics (suite order).

    One substrate batch: ``workers=N`` fans the cases over processes,
    ``checkpoint`` resumes a killed suite without re-running finished
    cases (keyed on the suite scale, so a checkpoint from a different
    scale is discarded), ``fresh`` deliberately discards any existing
    checkpoint.  A failing case fails the whole suite — a performance
    ledger with silently missing numbers would be worse than no entry.

    ``store`` (duck-typed — see :func:`repro.exec.run_jobs`) replays
    cached case results.  Bench metrics are *wall-clock throughputs*, so
    a warm store reports the timings of the machine state that populated
    it — useful for exercising the plumbing, wrong for recording a real
    ledger entry.  It is therefore opt-in here exactly like everywhere
    else, and a recorded entry should normally run cold.
    """
    jobs = _suite_jobs(accesses, cores, seed)
    ckpt = CheckpointStore(
        checkpoint, CHECKPOINT_VERSION,
        batch_key=json.dumps(
            {"accesses": accesses, "cores": cores, "seed": seed},
            sort_keys=True,
        ),
        fresh=fresh, tmp_prefix=".bench-ckpt-",
    )
    completed: Dict[str, List[Dict[str, object]]] = {}
    data = ckpt.load()
    if data is not None:
        for key, metrics in data.get("cases", {}).items():
            completed[str(key)] = metrics

    def merge(job, result, _aux):
        if not result.ok:
            if result.exception is not None:
                raise result.exception
            raise ExecError(
                f"bench case {job.key!r} failed: "
                f"{result.error_type}: {result.error}"
            )
        completed[job.key] = result.value["metrics"]
        ckpt.save({"cases": completed})

    run_jobs(
        jobs, merge, workers=workers,
        skip=lambda job: job.key in completed,
        store=store,
    )
    return [
        BenchMetric(**raw)
        for job in jobs
        for raw in completed[job.key]
    ]


# ----------------------------------------------------------------------
# The ledger.
# ----------------------------------------------------------------------

def ledger_entries(root: str) -> List[Tuple[int, str]]:
    """Existing ``(index, path)`` ledger entries under ``root``, sorted."""
    out: List[Tuple[int, str]] = []
    for name in os.listdir(root):
        match = _LEDGER_PATTERN.match(name)
        if match:
            out.append((int(match.group(1)), os.path.join(root, name)))
    return sorted(out)


def load_entry(path: str) -> Dict[str, object]:
    """Load and schema-check one ledger entry."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read ledger entry: {exc}") from exc
    except ValueError as exc:
        raise ReproError(
            f"ledger entry {path!r} is not valid JSON: {exc}"
        ) from exc
    if data.get("schema") != SCHEMA_VERSION:
        raise ReproError(
            f"ledger entry {path!r} has schema "
            f"{data.get('schema')!r}; this build reads "
            f"{SCHEMA_VERSION}"
        )
    if not isinstance(data.get("metrics"), dict):
        raise ReproError(
            f"ledger entry {path!r} has no metrics table"
        )
    return data


def record(
    root: str,
    accesses: int = 300,
    cores: int = 4,
    seed: int = 7,
    label: str = "",
    workers: int = 1,
    checkpoint: Optional[str] = None,
    fresh: bool = False,
    store=None,
) -> str:
    """Run the suite and append the next ``BENCH_<n>.json``.

    Returns the written path.  The entry is self-describing: schema
    version, suite scale (so entries at different scales are never
    silently compared — :func:`compare` refuses), platform fingerprint,
    and one named metric table.  ``workers``, ``checkpoint``, ``fresh``,
    and ``store`` pass through to :func:`run_suite` (see its caveat on
    recording warm-cache timings).
    """
    if accesses < 1 or cores < 1:
        raise ConfigError(
            "bench suite needs accesses >= 1 and cores >= 1"
        )
    metrics = run_suite(
        accesses=accesses, cores=cores, seed=seed, workers=workers,
        checkpoint=checkpoint, fresh=fresh, store=store,
    )
    entries = ledger_entries(root)
    index = entries[-1][0] + 1 if entries else 0
    path = os.path.join(root, f"BENCH_{index}.json")
    entry = {
        "schema": SCHEMA_VERSION,
        "index": index,
        "label": label or f"bench-{index}",
        "created": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "suite": {"accesses": accesses, "cores": cores, "seed": seed},
        "metrics": {m.name: m.to_json_dict() for m in metrics},
    }
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=1, sort_keys=True)
        handle.write("\n")
    _LOG.info("ledger entry written", extra={
        "path": path, "index": index,
        "metrics": len(entry["metrics"]),
    })
    return path


def resolve_tolerance(tolerance: Optional[float] = None) -> float:
    """The effective comparison tolerance.

    Precedence: explicit argument > ``REPRO_BENCH_TOLERANCE`` >
    :data:`DEFAULT_TOLERANCE`.
    """
    if tolerance is not None:
        value = tolerance
    else:
        raw = os.environ.get(TOLERANCE_ENV)
        if raw is None:
            return DEFAULT_TOLERANCE
        try:
            value = float(raw)
        except ValueError:
            raise ConfigError(
                f"{TOLERANCE_ENV} must be a number, got {raw!r}"
            ) from None
    if value < 0:
        raise ConfigError(
            f"bench tolerance must be non-negative, got {value}"
        )
    return value


def compare(
    old_path: str,
    new_path: str,
    tolerance: Optional[float] = None,
) -> BenchComparison:
    """Diff two ledger entries; regressions beyond tolerance fail.

    A metric regresses when it moves against its ``higher_better``
    direction by more than the relative tolerance.  Entries recorded at
    different suite scales are not comparable and raise
    :class:`~repro.errors.ReproError`.
    """
    old = load_entry(old_path)
    new = load_entry(new_path)
    if old.get("suite") != new.get("suite"):
        raise ReproError(
            f"ledger entries were recorded at different suite scales "
            f"({old.get('suite')} vs {new.get('suite')}); "
            f"re-record at a matching scale to compare"
        )
    tol = resolve_tolerance(tolerance)
    result = BenchComparison(
        old_label=str(old.get("label", old_path)),
        new_label=str(new.get("label", new_path)),
        tolerance=tol,
    )
    old_metrics = old["metrics"]
    new_metrics = new["metrics"]
    for name in sorted(set(old_metrics) | set(new_metrics)):
        if name not in old_metrics or name not in new_metrics:
            result.missing.append(name)
            continue
        o = old_metrics[name]
        n = new_metrics[name]
        old_value = float(o["value"])
        new_value = float(n["value"])
        higher_better = bool(o.get("higher_better", True))
        if old_value == 0:
            rel = 0.0 if new_value == 0 else float("inf")
            if not higher_better:
                rel = -rel
        else:
            rel = (new_value - old_value) / abs(old_value)
        if not higher_better:
            rel = -rel
        result.deltas.append(BenchDelta(
            name=name,
            old=old_value,
            new=new_value,
            rel_change=rel,
            regression=rel < -tol,
        ))
    return result


def format_comparison(comparison: BenchComparison) -> str:
    """Human-readable comparison table (stdout of ``bench compare``)."""
    lines = [
        f"bench compare: {comparison.old_label} -> "
        f"{comparison.new_label} "
        f"(tolerance {comparison.tolerance:.0%})"
    ]
    for d in comparison.deltas:
        verdict = "REGRESSION" if d.regression else "ok"
        lines.append(
            f"  {d.name}: {d.old:.4g} -> {d.new:.4g} "
            f"({d.rel_change:+.1%}) {verdict}"
        )
    for name in comparison.missing:
        lines.append(f"  {name}: present in only one entry (skipped)")
    lines.append(
        "PASS" if comparison.passed else
        f"FAIL: {len(comparison.regressions)} regression(s)"
    )
    return "\n".join(lines)


__all__ = [
    "BenchComparison",
    "BenchDelta",
    "BenchMetric",
    "CHECKPOINT_VERSION",
    "DEFAULT_TOLERANCE",
    "ENGINE_CASES",
    "SCHEMA_VERSION",
    "TOLERANCE_ENV",
    "compare",
    "format_comparison",
    "ledger_entries",
    "load_entry",
    "record",
    "resolve_tolerance",
    "run_suite",
]
