"""Unified telemetry: metrics registry, trace export, engine profiling.

The observability layer for the whole simulation stack (ISSUE 3).  One
:class:`TelemetrySession` attaches to a controller and streams every
slot grant, DRAM command, fault strike, and invariant violation into a
deterministic :class:`MetricsRegistry` and an optional cycle-accurate
:class:`TraceCollector`; after the run, the legacy stat structs are
harvested into the same registry (:mod:`repro.telemetry.compat`), and
the timeline can be exported as Chrome trace-event JSON
(:func:`export_chrome_trace`) for Perfetto.

Design rules:

* **inert when absent** — controllers guard each hook behind one
  ``is None`` check; a run without a session allocates nothing;
* **passive when present** — collection never feeds back into any
  simulated observable, so enabling telemetry cannot perturb a run;
* **deterministic** — :meth:`MetricsRegistry.snapshot` excludes every
  wall-clock-derived (volatile) metric and sorts everything else, so
  the fast and reference engines produce byte-identical snapshots
  (pinned by ``tests/test_differential.py``).
"""

from .chrome import (
    chrome_trace_dict,
    export_chrome_trace,
    export_span_trace,
    write_trace_dict,
)
from .collector import TraceCollector, TraceEvent, open_sink
from .compat import harvest_run, run_to_registry
from .html_report import render_report, write_report
from .log import configure, get_logger, get_run_id, set_run_id
from .profiler import EngineProfiler
from .registry import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    parse_prometheus_text,
)
from .report import (
    certification_report,
    histogram_report,
    histogram_to_registry,
    inter_service_histogram,
    is_degenerate,
)
from .session import KIND_NAMES, TelemetrySession
from .spans import (
    EPOCH_CYCLES,
    SpanRecord,
    SpanTracer,
    scrub_volatile_args,
    spans_to_events,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EPOCH_CYCLES",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "KIND_NAMES",
    "Metric",
    "MetricsRegistry",
    "SpanRecord",
    "SpanTracer",
    "TelemetrySession",
    "TraceCollector",
    "TraceEvent",
    "certification_report",
    "chrome_trace_dict",
    "configure",
    "export_chrome_trace",
    "export_span_trace",
    "get_logger",
    "get_run_id",
    "harvest_run",
    "histogram_report",
    "histogram_to_registry",
    "inter_service_histogram",
    "is_degenerate",
    "open_sink",
    "parse_prometheus_text",
    "render_report",
    "run_to_registry",
    "scrub_volatile_args",
    "set_run_id",
    "spans_to_events",
    "write_report",
    "write_trace_dict",
]
