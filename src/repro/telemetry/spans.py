"""Hierarchical, seed-deterministic span tracing (the Run Observatory).

A :class:`SpanTracer` records a tree of timed spans covering a whole
invocation — ``run → sweep cell / certify batch → engine phase →
controller epoch`` — cheaply enough to leave armed in production runs
and deterministically enough to diff byte-for-byte across worker
counts.  The design follows the telemetry layer's three rules:

* **inert when absent** — engines and executors hold a ``tracer`` that
  is ``None`` by default and guard every hook behind one ``is None``
  check; a run without spans allocates nothing;
* **passive when present** — spans observe clocks, they never feed back
  into any simulated observable;
* **deterministic** — span timestamps come from *deterministic clocks*
  only: simulated memory-controller cycles for engine-level spans, and
  a logical call-sequence counter for orchestration-level spans (grid
  cells, certification strategies) that have no simulated clock.  Wall
  time is welcome, but only inside ``args`` under keys prefixed
  ``wall_`` — the one namespace :func:`scrub_volatile_args` strips
  before byte-comparing traces.

Cross-process capture works exactly like the metrics-registry merge:
a worker builds its own tracer, ships the (picklable)
:class:`SpanRecord` list back in its result payload, and the parent
:meth:`~SpanTracer.adopt`\\ s the records in deterministic submission
order under a per-cell track name — so a ``--workers 4`` grid merges
into the same trace a serial grid writes, modulo ``wall_*`` values.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional

from ..errors import TelemetryError
from .collector import TraceEvent

#: Controller-epoch granularity, in memory-controller cycles.  A pure
#: function of the (engine-identical) final clock, so both engines emit
#: the same epoch spans for the same run.
EPOCH_CYCLES = 8192

#: The Chrome-trace process (pid track group) all spans export into.
SPAN_PID = "spans"

#: ``args`` keys with this prefix hold wall-clock-derived values; they
#: are exported but stripped by :func:`scrub_volatile_args` before any
#: byte-identity comparison.
VOLATILE_ARG_PREFIX = "wall_"


class SpanRecord(NamedTuple):
    """One completed span.  Plain data: pickles across spawn workers.

    ``track`` is the Chrome-trace thread name the span exports under;
    ``start``/``end`` are deterministic-clock values (cycles or logical
    ticks, depending on the span's origin); ``seq`` orders spans by
    begin time within a tracer and doubles as the parent handle.
    """

    track: str
    name: str
    category: str
    start: int
    end: int
    depth: int
    seq: int
    parent: int
    args: Optional[Dict[str, object]] = None

    def to_json_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "track": self.track, "name": self.name,
            "category": self.category, "start": self.start,
            "end": self.end, "depth": self.depth, "seq": self.seq,
            "parent": self.parent,
        }
        if self.args:
            out["args"] = self.args
        return out


class _OpenSpan:
    __slots__ = ("name", "category", "start", "seq", "parent", "depth",
                 "args")

    def __init__(self, name, category, start, seq, parent, depth, args):
        self.name = name
        self.category = category
        self.start = start
        self.seq = seq
        self.parent = parent
        self.depth = depth
        self.args = args


class SpanTracer:
    """Builds one process-local span tree.

    ``track`` names the tracer's Chrome-trace thread (orchestrators use
    a stable name like ``"grid"``; engine tracers keep the default and
    are re-tracked by :meth:`adopt` at merge time).  Begin/end pairs
    must nest; :meth:`span` enforces that with a context manager.
    """

    def __init__(self, track: str = "main") -> None:
        self.track = track
        self.records: List[SpanRecord] = []
        self._open: List[_OpenSpan] = []
        self._seq = 0
        #: Logical clock for spans with no simulated-cycle extent: one
        #: tick per begin/end call, so timestamps are a pure function of
        #: the (deterministic) call sequence.
        self._logical = 0

    # -- core API -------------------------------------------------------

    def _tick(self) -> int:
        self._logical += 1
        return self._logical

    def begin(
        self,
        name: str,
        category: str,
        start: Optional[int] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> int:
        """Open a span; returns its ``seq`` handle for :meth:`end`.

        ``start=None`` stamps the logical clock; pass a cycle count for
        engine-level spans.
        """
        seq = self._seq
        self._seq += 1
        parent = self._open[-1].seq if self._open else -1
        span = _OpenSpan(
            name, category,
            self._tick() if start is None else start,
            seq, parent, len(self._open), args,
        )
        self._open.append(span)
        return seq

    def end(
        self,
        seq: int,
        end: Optional[int] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> SpanRecord:
        """Close the innermost open span (which must be ``seq``)."""
        if not self._open or self._open[-1].seq != seq:
            raise TelemetryError(
                f"span end out of order: seq {seq} is not the "
                f"innermost open span"
            )
        span = self._open.pop()
        merged = span.args
        if args:
            merged = dict(span.args or {})
            merged.update(args)
        record = SpanRecord(
            track=self.track,
            name=span.name,
            category=span.category,
            start=span.start,
            end=self._tick() if end is None else end,
            depth=span.depth,
            seq=span.seq,
            parent=span.parent,
            args=merged,
        )
        self.records.append(record)
        return record

    def span(self, name: str, category: str,
             args: Optional[Dict[str, object]] = None):
        """Context manager over :meth:`begin`/:meth:`end` (logical
        clock)."""
        return _SpanContext(self, name, category, args)

    def complete(
        self,
        name: str,
        category: str,
        start: int,
        end: int,
        args: Optional[Dict[str, object]] = None,
    ) -> SpanRecord:
        """Record an already-closed span (epoch slices, post-hoc
        phases) as a child of the innermost open span."""
        seq = self._seq
        self._seq += 1
        parent = self._open[-1].seq if self._open else -1
        depth = len(self._open)
        record = SpanRecord(
            track=self.track, name=name, category=category,
            start=start, end=end, depth=depth, seq=seq,
            parent=parent, args=args,
        )
        self.records.append(record)
        return record

    # -- cross-process merge --------------------------------------------

    def adopt(
        self,
        records: Iterable,
        track: str,
    ) -> int:
        """Fold a child tracer's shipped records in, re-tracked.

        Child ``seq``/``parent`` links are kept intact (they are only
        compared within one track), and every record is re-labelled with
        ``track`` so a grid's cells land on distinct, deterministic
        Chrome-trace threads.  Call in submission order: the adopted
        sequence — hence the merged trace — is then identical at any
        worker count.  Accepts raw tuples (a spawn worker may ship
        plain data); returns the number of adopted spans.
        """
        count = 0
        for raw in records:
            record = (
                raw if isinstance(raw, SpanRecord)
                else SpanRecord(*raw)
            )
            self.records.append(record._replace(track=track))
            count += 1
        return count

    # -- engine hook ----------------------------------------------------

    def record_engine_run(
        self,
        scheme: str,
        engine: str,
        cycles: int,
        epoch_cycles: int = EPOCH_CYCLES,
        wall_seconds: Optional[float] = None,
    ) -> None:
        """One engine run's span slice: run → phases → epochs.

        Called once per ``System.run`` / ``FastSystem.run`` completion;
        every value is a pure function of the (engine-identical) final
        clock, so the two engines emit byte-identical records for the
        same simulation.  Wall time rides along under the volatile
        ``wall_`` namespace only.
        """
        args: Dict[str, object] = {"engine": engine}
        if wall_seconds is not None:
            args["wall_s"] = round(wall_seconds, 6)
        run_seq = self.begin(
            f"run {scheme}", "run", start=0, args=args
        )
        phase = self.begin("main-loop", "phase", start=0)
        epochs = max(1, -(-cycles // epoch_cycles)) if cycles else 1
        for k in range(epochs):
            lo = k * epoch_cycles
            hi = min((k + 1) * epoch_cycles, cycles) if cycles else 0
            self.complete(f"epoch {k}", "epoch", lo, hi)
        self.end(phase, end=cycles)
        finalize = self.begin("finalize", "phase", start=cycles)
        self.end(finalize, end=cycles)
        self.end(run_seq, end=cycles)

    # -- export ---------------------------------------------------------

    def to_events(self) -> List[TraceEvent]:
        """The span tree as Chrome complete (``ph="X"``) events."""
        return spans_to_events(self.records)

    def summary(self) -> List[Dict[str, object]]:
        """Flamegraph-style aggregate: per (category, name) totals.

        Deterministic order: by category, then name.  Durations are in
        the span's own clock (cycles for engine spans, logical ticks
        for orchestration spans) — comparable within a category.
        """
        agg: Dict[tuple, Dict[str, object]] = {}
        for r in self.records:
            key = (r.category, r.name)
            entry = agg.get(key)
            if entry is None:
                entry = {
                    "category": r.category, "name": r.name,
                    "count": 0, "total": 0, "max": 0,
                }
                agg[key] = entry
            dur = r.end - r.start
            entry["count"] += 1
            entry["total"] += dur
            if dur > entry["max"]:
                entry["max"] = dur
        return [agg[k] for k in sorted(agg)]


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_category", "_args", "_seq")

    def __init__(self, tracer, name, category, args):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args

    def __enter__(self):
        self._seq = self._tracer.begin(
            self._name, self._category, args=self._args
        )
        return self

    def __exit__(self, *exc):
        self._tracer.end(self._seq)


def spans_to_events(records: Iterable[SpanRecord]) -> List[TraceEvent]:
    """Convert span records to Chrome ``ph="X"`` trace events.

    Spans export under the ``"spans"`` process with one thread per
    track; ``seq``/``depth``/``category`` travel in ``args`` so a
    Perfetto query can rebuild the tree.
    """
    events: List[TraceEvent] = []
    for r in records:
        args: Dict[str, object] = {
            "category": r.category, "depth": r.depth, "seq": r.seq,
        }
        if r.parent >= 0:
            args["parent"] = r.parent
        if r.args:
            args.update(r.args)
        events.append(TraceEvent(
            ts=r.start, pid=SPAN_PID, tid=r.track, name=r.name,
            ph="X", dur=r.end - r.start, args=args,
        ))
    return events


def scrub_volatile_args(trace: Dict[str, object]) -> Dict[str, object]:
    """A deep-copied Chrome trace dict with every volatile field gone.

    Strips ``args`` keys prefixed ``wall_`` from every event (the one
    namespace allowed to carry wall-clock values) — what the worker-
    count byte-identity contract compares (``tests/test_sweep_parallel
    .py`` and the CI ``bench-ledger`` job dump the scrubbed dict with
    sorted keys and ``cmp`` the bytes).
    """
    import copy

    out = copy.deepcopy(trace)
    for event in out.get("traceEvents", []):
        args = event.get("args")
        if not isinstance(args, dict):
            continue
        for key in [k for k in args
                    if k.startswith(VOLATILE_ARG_PREFIX)]:
            del args[key]
        if not args:
            event.pop("args", None)
    return out


__all__ = [
    "EPOCH_CYCLES",
    "SPAN_PID",
    "SpanRecord",
    "SpanTracer",
    "VOLATILE_ARG_PREFIX",
    "scrub_volatile_args",
    "spans_to_events",
]
