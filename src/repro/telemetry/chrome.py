"""Chrome trace-event export: load a simulated run in Perfetto.

Converts the :class:`~repro.telemetry.collector.TraceCollector` timeline
into the Chrome trace-event JSON format (the ``chrome://tracing`` /
`Perfetto <https://ui.perfetto.dev>`_ "JSON array with metadata" flavor):

* one **process** per track group — the per-security-domain slot
  timeline, and one per DRAM channel for the command stream;
* one **thread** per security domain (slot grants: demand reads/writes,
  dummies, prefetches, bubbles, faults) or per rank/bank (ACT / column /
  PRE / REF commands);
* counter tracks for per-domain queue depths.

Within every (pid, tid) track the exported ``ts`` values are
monotonically non-decreasing (events are sorted before id assignment),
which is what trace viewers require and what
``tests/test_telemetry.py`` asserts.

Timestamps are memory-controller cycles exported 1:1 as microseconds —
trace viewers have no "cycles" unit, and a 1 cycle = 1 us mapping keeps
the numbers readable and exact (no float scaling).
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Tuple, Union

from .collector import TraceCollector, TraceEvent, open_sink


def chrome_trace_dict(
    events: Iterable[TraceEvent],
    metadata: Union[Dict[str, object], None] = None,
) -> Dict[str, object]:
    """Build the Chrome trace-event JSON object.

    Track-name pids/tids are mapped to deterministic small integers
    (sorted by name), and ``process_name`` / ``thread_name`` metadata
    events are emitted so viewers show the human-readable names.
    """
    ordered = sorted(events, key=lambda e: (e.ts, e.pid, e.tid, e.name))
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    for event in ordered:
        if event.pid not in pids:
            pids[event.pid] = 0
        key = (event.pid, event.tid)
        if key not in tids:
            tids[key] = 0
    for i, name in enumerate(sorted(pids)):
        pids[name] = i + 1
    for i, key in enumerate(sorted(tids)):
        tids[key] = i + 1

    trace_events: List[Dict[str, object]] = []
    for name, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    for (pname, tname), tid in sorted(tids.items(),
                                      key=lambda kv: kv[1]):
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": pids[pname],
            "tid": tid, "args": {"name": tname},
        })
    for event in ordered:
        entry: Dict[str, object] = {
            "name": event.name,
            "ph": event.ph,
            "ts": event.ts,
            "pid": pids[event.pid],
            "tid": tids[(event.pid, event.tid)],
        }
        if event.ph == "X":
            entry["dur"] = event.dur
        if event.args:
            entry["args"] = event.args
        trace_events.append(entry)
    out: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "memory-controller cycles (1 cycle = 1us)"},
    }
    if metadata:
        out["otherData"].update(metadata)
    return out


def write_trace_dict(
    payload: Dict[str, object],
    path_or_file: Union[str, IO[str]],
) -> None:
    """Write a built trace dict as canonical (compact, sorted) JSON.

    One serialization for every producer — collector exports, merged
    span traces — so byte-identity contracts compare a single format.
    """
    handle = (
        open_sink(path_or_file) if isinstance(path_or_file, str)
        else path_or_file
    )
    try:
        json.dump(payload, handle, indent=None,
                  separators=(",", ":"), sort_keys=True)
        handle.write("\n")
    finally:
        if isinstance(path_or_file, str):
            handle.close()


def export_chrome_trace(
    collector: TraceCollector,
    path_or_file: Union[str, IO[str]],
    metadata: Union[Dict[str, object], None] = None,
) -> int:
    """Write the collector's retained events as Chrome trace JSON.

    Returns the number of exported (non-metadata) events.  Path errors
    surface as :class:`~repro.errors.TelemetryError`.
    """
    events = collector.events()
    payload = chrome_trace_dict(events, metadata)
    write_trace_dict(payload, path_or_file)
    return len(events)


def export_span_trace(
    tracer,
    path_or_file: Union[str, IO[str]],
    metadata: Union[Dict[str, object], None] = None,
) -> int:
    """Write a :class:`~repro.telemetry.spans.SpanTracer`'s merged span
    tree as Chrome trace JSON; returns the span count."""
    events = tracer.to_events()
    payload = chrome_trace_dict(events, metadata)
    write_trace_dict(payload, path_or_file)
    return len(events)


__all__ = [
    "chrome_trace_dict",
    "export_chrome_trace",
    "export_span_trace",
    "write_trace_dict",
]
