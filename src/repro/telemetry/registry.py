"""A deterministic metrics registry: counters, gauges, histograms.

The registry is the unified export surface for every statistic the
simulation stack produces (controller counters, DRAM activity, fault and
monitor events, sweep aggregates, engine profiles).  Design constraints,
in order:

1. **Determinism.**  Two runs that produce the same simulated
   observables must produce byte-identical metric snapshots —
   ``tests/test_differential.py`` pins metric snapshots across the fast
   and reference engines.  Everything is therefore stored and exported
   in sorted order, and metrics that depend on wall-clock time (engine
   profiling) are flagged ``volatile`` and excluded from
   :meth:`MetricsRegistry.snapshot`.
2. **Zero third-party dependencies.**  The export formats are plain
   JSON (:meth:`MetricsRegistry.to_json_dict`) and Prometheus text
   exposition (:meth:`MetricsRegistry.to_prometheus`), both produced
   with the standard library only.
3. **Cheap when idle.**  An unreferenced registry costs nothing; the
   simulation hot paths guard every telemetry call behind a single
   ``is None`` check (see :mod:`repro.telemetry.session`).

Labels are passed as keyword arguments and validated against the
metric's declared label names, Prometheus-client style::

    faults = registry.counter(
        "faults_injected_total", "faults that struck", ("kind",)
    )
    faults.inc(kind="drop_command")
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import TelemetryError

#: Default histogram bucket upper bounds (cycles-oriented powers of two).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
    4096, 16384, 65536, 262144, 1048576,
)


def _label_key(
    labelnames: Tuple[str, ...], labels: Dict[str, object], name: str
) -> Tuple[str, ...]:
    """Validate and canonicalize one sample's labels."""
    if set(labels) != set(labelnames):
        raise TelemetryError(
            f"metric {name!r} expects labels {sorted(labelnames)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[k]) for k in labelnames)


def _escape(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')
    )


def _escape_help(value: str) -> str:
    # Help text escapes only backslash and newline (exposition format
    # 0.0.4) — quotes stay literal.
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (ints stay ints)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
        and abs(value) < 2 ** 53
    ):
        return str(int(value))
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


class Metric:
    """Base class: one named family of labeled samples."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        volatile: bool = False,
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        #: Volatile metrics depend on wall-clock time (profiling); they
        #: are exported but excluded from determinism snapshots.
        self.volatile = volatile
        self._samples: Dict[Tuple[str, ...], object] = {}

    # -- introspection --------------------------------------------------

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Samples in deterministic (sorted label) order."""
        return sorted(self._samples.items())

    def value(self, **labels) -> object:
        """The sample value for one label set (0 when never touched)."""
        key = _label_key(self.labelnames, labels, self.name)
        return self._samples.get(key, 0)

    def _labels_text(self, key: Tuple[str, ...],
                     extra: str = "") -> str:
        parts = [
            f'{n}="{_escape(v)}"' for n, v in zip(self.labelnames, key)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def _help_line(self) -> str:
        if self.help_text:
            return (
                f"# HELP {self.name} {_escape_help(self.help_text)}"
            )
        return f"# HELP {self.name}"

    def expose(self) -> List[str]:
        """Prometheus text lines for this family.

        Every family gets its ``# HELP`` and ``# TYPE`` header —
        including help-less families (bare ``# HELP name``), as the
        exposition format expects one header pair per family.
        """
        lines = [self._help_line(), f"# TYPE {self.name} {self.kind}"]
        for key, value in self.samples():
            lines.append(
                f"{self.name}{self._labels_text(key)} "
                f"{_format_value(value)}"
            )
        return lines

    def snapshot_samples(self) -> Dict[str, object]:
        """JSON-friendly sample map keyed by a canonical label string."""
        out = {}
        for key, value in self.samples():
            label = ",".join(
                f"{n}={v}" for n, v in zip(self.labelnames, key)
            )
            out[label] = value
        return out


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        key = _label_key(self.labelnames, labels, self.name)
        self._samples[key] = self._samples.get(key, 0) + amount


class Gauge(Metric):
    """A value that can go up and down (set to the latest observation)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels, self.name)
        self._samples[key] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(self.labelnames, labels, self.name)
        self._samples[key] = self._samples.get(key, 0) + amount


class Histogram(Metric):
    """A bucketed distribution with exact ``sum`` and ``count``.

    Buckets are cumulative upper bounds, Prometheus style; ``+Inf`` is
    implicit.  Per label set the stored sample is a dict
    ``{"buckets": {le: count}, "sum": s, "count": n}``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        volatile: bool = False,
    ) -> None:
        super().__init__(name, help_text, labelnames, volatile)
        bounds = sorted(set(float(b) for b in buckets))
        if not bounds:
            raise TelemetryError(
                f"histogram {self.name!r} needs at least one bucket"
            )
        self.bounds: Tuple[float, ...] = tuple(bounds)

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels, self.name)
        sample = self._samples.get(key)
        if sample is None:
            sample = {
                "buckets": [0] * (len(self.bounds) + 1),
                "sum": 0,
                "count": 0,
            }
            self._samples[key] = sample
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        sample["buckets"][idx] += 1
        sample["sum"] += value
        sample["count"] += 1

    def expose(self) -> List[str]:
        lines = [self._help_line(), f"# TYPE {self.name} {self.kind}"]
        for key, sample in self.samples():
            cumulative = 0
            for bound, count in zip(self.bounds, sample["buckets"]):
                cumulative += count
                le = f'le="{_format_value(bound)}"'
                lines.append(
                    f"{self.name}_bucket{self._labels_text(key, le)} "
                    f"{cumulative}"
                )
            cumulative += sample["buckets"][-1]
            inf = 'le="+Inf"'
            lines.append(
                f"{self.name}_bucket{self._labels_text(key, inf)} "
                f"{cumulative}"
            )
            lines.append(
                f"{self.name}_sum{self._labels_text(key)} "
                f"{_format_value(sample['sum'])}"
            )
            lines.append(
                f"{self.name}_count{self._labels_text(key)} "
                f"{sample['count']}"
            )
        return lines

    def snapshot_samples(self) -> Dict[str, object]:
        out = {}
        for key, sample in self.samples():
            label = ",".join(
                f"{n}={v}" for n, v in zip(self.labelnames, key)
            )
            out[label] = {
                "buckets": {
                    _format_value(b): c
                    for b, c in zip(self.bounds, sample["buckets"])
                    if c
                },
                "overflow": sample["buckets"][-1],
                "sum": sample["sum"],
                "count": sample["count"],
            }
        return out


class MetricsRegistry:
    """A named collection of metrics with idempotent registration.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    for an existing name returns the existing family (kind and label
    names must match — a mismatch is a programming error surfaced as
    :class:`~repro.errors.TelemetryError`).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # -- registration ---------------------------------------------------

    def _get_or_create(self, cls, name: str, help_text: str,
                       labelnames: Sequence[str], volatile: bool,
                       **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls) or (
                metric.labelnames != tuple(labelnames)
            ):
                raise TelemetryError(
                    f"metric {name!r} re-registered with a different "
                    f"kind or label set"
                )
            return metric
        metric = cls(
            name, help_text, labelnames, volatile=volatile, **kwargs
        )
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = (),
                volatile: bool = False) -> Counter:
        return self._get_or_create(
            Counter, name, help_text, labelnames, volatile
        )

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = (),
              volatile: bool = False) -> Gauge:
        return self._get_or_create(
            Gauge, name, help_text, labelnames, volatile
        )

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  volatile: bool = False) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames, volatile,
            buckets=buckets,
        )

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    # -- merging --------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's samples into this one, in place.

        The multiprocess sweep executor gives every worker cell its own
        registry and merges them back in deterministic (cell submission)
        order, so a ``workers=N`` grid exports the same aggregate
        artifact as a serial run.  Merge semantics per metric kind:

        * **counter** — sample values add (counts across cells sum);
        * **gauge** — the incoming value wins (last-writer, which the
          deterministic merge order makes reproducible);
        * **histogram** — per-bucket counts, ``sum`` and ``count`` add.

        A family present in both registries must agree on kind, label
        names and (for histograms) bucket bounds; a mismatch is a
        programming error surfaced as
        :class:`~repro.errors.TelemetryError`.  Returns ``self`` so
        merges chain.
        """
        for name in sorted(other._metrics):
            theirs = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                kwargs = {}
                if isinstance(theirs, Histogram):
                    kwargs["buckets"] = theirs.bounds
                mine = self._get_or_create(
                    type(theirs), name, theirs.help_text,
                    theirs.labelnames, theirs.volatile, **kwargs
                )
            elif type(mine) is not type(theirs) or (
                mine.labelnames != theirs.labelnames
            ):
                raise TelemetryError(
                    f"cannot merge metric {name!r}: kind or label set "
                    f"differs between registries"
                )
            elif isinstance(mine, Histogram) and (
                mine.bounds != theirs.bounds
            ):
                raise TelemetryError(
                    f"cannot merge histogram {name!r}: bucket bounds "
                    f"differ between registries"
                )
            for key, value in theirs.samples():
                if isinstance(mine, Histogram):
                    sample = mine._samples.get(key)
                    if sample is None:
                        sample = {
                            "buckets": [0] * (len(mine.bounds) + 1),
                            "sum": 0,
                            "count": 0,
                        }
                        mine._samples[key] = sample
                    for i, count in enumerate(value["buckets"]):
                        sample["buckets"][i] += count
                    sample["sum"] += value["sum"]
                    sample["count"] += value["count"]
                elif isinstance(mine, Counter):
                    mine._samples[key] = (
                        mine._samples.get(key, 0) + value
                    )
                else:  # gauge / untyped: incoming value wins
                    mine._samples[key] = value
        return self

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def metrics(self) -> List[Metric]:
        """All families in deterministic (name) order."""
        return [self._metrics[k] for k in sorted(self._metrics)]

    # -- export ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic view of every **non-volatile** metric.

        This is the object the differential suite compares across
        engines: wall-clock-dependent (volatile) profiling metrics are
        excluded, everything else must be bit-identical.
        """
        out: Dict[str, Dict[str, object]] = {}
        for metric in self.metrics():
            if metric.volatile:
                continue
            out[metric.name] = {
                "kind": metric.kind,
                "samples": metric.snapshot_samples(),
            }
        return out

    def to_json_dict(self) -> Dict[str, object]:
        """Full JSON export (volatile metrics included, flagged)."""
        metrics: Dict[str, object] = {}
        for metric in self.metrics():
            entry = {
                "kind": metric.kind,
                "help": metric.help_text,
                "samples": metric.snapshot_samples(),
            }
            if metric.volatile:
                entry["volatile"] = True
            metrics[metric.name] = entry
        return {"version": 1, "metrics": metrics}

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_json_dict(), indent=indent,
                          sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for metric in self.metrics():
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n" if lines else ""


def _unescape_label(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ("\\", '"'):
                out.append(nxt)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _parse_labels(text: str) -> Dict[str, str]:
    """Parse the ``k="v",...`` body of a label set (escapes honored)."""
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise TelemetryError(
                f"malformed label value near {text[i:]!r}"
            )
        j = eq + 2
        raw: List[str] = []
        while j < len(text):
            ch = text[j]
            if ch == "\\" and j + 1 < len(text):
                raw.append(text[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise TelemetryError(
                f"unterminated label value near {text[i:]!r}"
            )
        labels[name] = _unescape_label("".join(raw))
        i = j + 1
    return labels


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition-format text back into family structures.

    Returns ``{family: {"help": str, "type": str, "samples":
    [(sample_name, labels_dict, value), ...]}}`` where histogram
    ``_bucket``/``_sum``/``_count`` samples fold into their family.
    The promtext round-trip test feeds :meth:`MetricsRegistry.
    to_prometheus` through this and checks nothing is lost or
    mis-escaped.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family_for(sample_name: str) -> Dict[str, object]:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)]
            if sample_name.endswith(suffix) and trimmed in families:
                base = trimmed
                break
        return families.setdefault(
            base, {"help": "", "type": "untyped", "samples": []}
        )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            entry = families.setdefault(
                name, {"help": "", "type": "untyped", "samples": []}
            )
            entry["help"] = _unescape_label(help_text)
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            entry = families.setdefault(
                name, {"help": "", "type": "untyped", "samples": []}
            )
            entry["type"] = kind.strip() or "untyped"
            continue
        if line.startswith("#"):
            continue  # comment
        if "{" in line:
            brace = line.index("{")
            sample_name = line[:brace]
            close = line.rfind("}")
            if close < brace:
                raise TelemetryError(
                    f"unterminated label set in sample {line!r}"
                )
            labels = _parse_labels(line[brace + 1:close])
            value_text = line[close + 1:].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
            value_text = value_text.strip()
        try:
            value = _parse_number(value_text)
        except ValueError:
            raise TelemetryError(
                f"sample {line!r} has no parseable value"
            ) from None
        entry = family_for(sample_name)
        entry["samples"].append((sample_name, labels, value))
    return families


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "parse_prometheus_text",
]
