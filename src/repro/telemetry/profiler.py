"""Engine profiling: how hard is the fast path actually working?

:class:`EngineProfiler` is the hook the cycle-skipping driver
(:class:`repro.sim.fastpath.FastSystem`) reports into when profiling is
enabled: per-stride horizon-jump sizes, total driver iterations,
simulated cycles, and wall-clock time.  Combined with the fast path's
process-global schedule-template cache counters it yields the three
numbers the ROADMAP's perf work steers by:

* **events per second** — driver iterations / wall second (the fast
  engine's overhead floor);
* **cycles per second** — simulated cycles / wall second (the headline
  throughput number);
* **horizon-jump distribution** — how far each stride skipped; a
  healthy fast run jumps hundreds of cycles per event, a degraded one
  (deep queues, fault injection) degenerates toward 1-cycle reference
  stepping;
* **template cache hit rate** — fraction of runs that reused a solved
  schedule instead of re-running the pipeline solver.

Everything wall-clock-derived is exported as **volatile** metrics:
present in JSON/Prometheus artifacts, excluded from the determinism
snapshots the differential suite compares.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from .registry import MetricsRegistry

class EngineProfiler:
    """Accumulates fast-driver activity across one or more runs."""

    def __init__(self) -> None:
        self.runs = 0
        self.iterations = 0
        self.cycles = 0
        self.wall_seconds = 0.0
        self.stride_count = 0
        self.stride_cycles = 0
        self.max_stride = 0
        #: Power-of-two bucketed horizon-jump sizes:
        #: ``stride.bit_length() -> count`` (bucket k holds strides in
        #: ``[2**(k-1), 2**k)``).
        self.stride_hist: Counter = Counter()

    # -- hot-path hooks (called from FastSystem.run) --------------------

    def note_stride(self, stride: int) -> None:
        """One driver iteration advanced the clock by ``stride``."""
        self.iterations += 1
        self.stride_count += 1
        self.stride_cycles += stride
        if stride > self.max_stride:
            self.max_stride = stride
        self.stride_hist[stride.bit_length()] += 1

    def note_run(self, cycles: int, wall_seconds: float) -> None:
        """One simulation finished."""
        self.runs += 1
        self.cycles += cycles
        self.wall_seconds += wall_seconds

    # -- derived --------------------------------------------------------

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.iterations / self.wall_seconds

    @property
    def cycles_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_seconds

    @property
    def mean_stride(self) -> float:
        if self.stride_count == 0:
            return 0.0
        return self.stride_cycles / self.stride_count

    # -- export ---------------------------------------------------------

    def to_registry(self, registry: MetricsRegistry) -> None:
        """Export the profile.

        Every ``engine_*`` metric is **volatile**: either it is
        wall-clock-derived, or it exists only under the fast engine —
        both would break the cross-engine determinism snapshot.
        """
        registry.counter(
            "engine_driver_iterations_total",
            "fast-driver loop iterations (one per demand-side event)",
            volatile=True,
        ).inc(self.iterations)
        registry.counter(
            "engine_stride_cycles_total",
            "cycles covered by fast-driver strides", volatile=True,
        ).inc(self.stride_cycles)
        registry.gauge(
            "engine_max_stride_cycles",
            "largest single horizon jump observed", volatile=True,
        ).set(self.max_stride)
        registry.gauge(
            "engine_mean_stride_cycles",
            "mean horizon-jump size (cycles per driver event)",
            volatile=True,
        ).set(round(self.mean_stride, 6))
        stride_counter = registry.counter(
            "engine_stride_size_total",
            "horizon-jump size distribution; bucket k holds strides in "
            "[2^(k-1), 2^k) cycles", ("bucket",), volatile=True,
        )
        for bits, count in sorted(self.stride_hist.items()):
            stride_counter.inc(count, bucket=f"2^{bits}")
        # Wall-clock-derived: volatile by construction.
        registry.gauge(
            "engine_wall_seconds", "wall-clock simulation time",
            volatile=True,
        ).set(self.wall_seconds)
        registry.gauge(
            "engine_events_per_second",
            "fast-driver iterations per wall second", volatile=True,
        ).set(round(self.events_per_second, 3))
        registry.gauge(
            "engine_cycles_per_second",
            "simulated cycles per wall second", volatile=True,
        ).set(round(self.cycles_per_second, 3))
        # Template-cache effectiveness (process-global counters owned by
        # repro.sim.fastpath; volatile because the cache outlives runs —
        # the hit rate depends on what ran earlier in the process).
        from ..sim import fastpath

        stats = fastpath.template_cache_stats()
        registry.gauge(
            "engine_template_cache_hits",
            "schedule-template cache hits (process-global)",
            volatile=True,
        ).set(stats["hits"])
        registry.gauge(
            "engine_template_cache_misses",
            "schedule-template cache misses (process-global)",
            volatile=True,
        ).set(stats["misses"])
        total = stats["hits"] + stats["misses"]
        registry.gauge(
            "engine_template_cache_hit_rate",
            "fraction of schedule builds served from the template cache",
            volatile=True,
        ).set(round(stats["hits"] / total, 6) if total else 0.0)


__all__ = ["EngineProfiler"]
