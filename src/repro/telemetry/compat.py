"""Compatibility shim: legacy stat structs -> the metrics registry.

The simulator predates the registry: controllers accumulate a
:class:`~repro.controllers.base.ControllerStats` dataclass, DRAM channels
keep ``stat_commands`` / ``stat_data_cycles`` integers, ranks keep
:class:`~repro.dram.rank.RankEnergyCounters`, the power model returns an
:class:`~repro.dram.power.EnergyBreakdown`, the fault injector a
``Counter`` of struck kinds, and the monitor a violation total.  None of
that plumbing changes — this module *harvests* each legacy struct into
registry metrics after a run, so every consumer (JSON, Prometheus,
snapshots, dashboards) sees one unified namespace while the hot paths
keep their plain-integer accounting.

Field lists are discovered with :func:`dataclasses.fields`, so a new
``ControllerStats`` / ``RankEnergyCounters`` / ``EnergyBreakdown`` field
shows up as a metric automatically.

Everything harvested here is a pure function of simulated observables —
no wall-clock, no engine internals — so nothing is volatile and the
cross-engine snapshot comparison in ``tests/test_differential.py``
covers all of it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from .registry import MetricsRegistry
from .report import (
    histogram_to_registry,
    inter_service_histogram,
    is_degenerate,
)

#: Fault kinds whose built-in recovery keeps the run inside the FS
#: invariants.  ``borrow_foreign_slot`` is the deliberately broken
#: recovery used to prove the watchdog fires — it never counts as
#: recovered.
_UNRECOVERED_KINDS = frozenset({"borrow_foreign_slot"})


def harvest_controller_stats(registry: MetricsRegistry, stats) -> None:
    """Export a :class:`ControllerStats` (or compatible dataclass)."""
    for field in dataclasses.fields(stats):
        value = getattr(stats, field.name)
        registry.counter(
            f"controller_{field.name}_total",
            f"controller stat: {field.name}",
        ).inc(value)
    registry.gauge(
        "controller_mean_read_latency_cycles",
        "mean demand-read latency (enqueue to release)",
    ).set(round(stats.mean_read_latency, 6))
    registry.gauge(
        "controller_dummy_fraction",
        "fraction of serviced slots filled by dummy transactions",
    ).set(round(stats.dummy_fraction, 6))
    registry.gauge(
        "controller_prefetch_fraction",
        "fraction of serviced slots filled by prefetches",
    ).set(round(stats.prefetch_fraction, 6))


def harvest_dram(registry: MetricsRegistry, dram) -> None:
    """Export per-channel bus stats and per-rank energy counters."""
    commands = registry.counter(
        "dram_channel_commands_total",
        "DRAM commands accepted by each channel", ("channel",),
    )
    data_cycles = registry.counter(
        "dram_channel_data_cycles_total",
        "data-bus busy cycles per channel", ("channel",),
    )
    for channel in dram.channels:
        commands.inc(channel.stat_commands, channel=channel.channel_id)
        data_cycles.inc(
            channel.stat_data_cycles, channel=channel.channel_id
        )
        for rank_id, rank in enumerate(channel.ranks):
            for field in dataclasses.fields(rank.energy):
                registry.counter(
                    f"dram_rank_{field.name}_total",
                    f"rank activity counter: {field.name}",
                    ("channel", "rank"),
                ).inc(
                    getattr(rank.energy, field.name),
                    channel=channel.channel_id, rank=rank_id,
                )


def harvest_energy(registry: MetricsRegistry, energy) -> None:
    """Export an :class:`EnergyBreakdown` as per-component gauges."""
    for field in dataclasses.fields(energy):
        registry.gauge(
            f"energy_{field.name}",
            f"energy component: {field.name} (picojoules)",
        ).set(round(getattr(energy, field.name), 3))
    registry.gauge(
        "energy_total_pj", "total DRAM energy (picojoules)",
    ).set(round(energy.total_pj, 3))


def harvest_cores(registry: MetricsRegistry, cores) -> None:
    """Export per-core outcomes (labeled by security domain)."""
    ipc = registry.gauge(
        "core_ipc", "retired instructions per cycle", ("domain",)
    )
    reads = registry.counter(
        "core_reads_completed_total",
        "demand reads completed per core", ("domain",),
    )
    instructions = registry.counter(
        "core_instructions_total",
        "instructions retired per core", ("domain",),
    )
    done = registry.gauge(
        "core_done", "1 when the core finished its trace", ("domain",)
    )
    for core in cores:
        ipc.set(round(core.ipc, 6), domain=core.domain)
        reads.inc(core.reads_completed, domain=core.domain)
        instructions.inc(core.instructions, domain=core.domain)
        done.set(1 if core.done else 0, domain=core.domain)


def harvest_faults(
    registry: MetricsRegistry, counts: Optional[Dict[str, int]]
) -> None:
    """Export fault strike counts (``{kind: count}``) as labeled
    counters plus the aggregate recovery counter.

    Only for *offline* harvesting (``repro stats`` on a finished run):
    a live :class:`~repro.telemetry.session.TelemetrySession` already
    counts every strike as it happens, and calling this too would
    double-count.
    """
    if not counts:
        return
    faults = registry.counter(
        "faults_injected_total", "injected faults that struck", ("kind",)
    )
    recoveries = registry.counter(
        "recoveries_total",
        "faults recovered within the victim domain's own slots",
    )
    for kind, count in sorted(counts.items()):
        faults.inc(count, kind=kind)
        if kind not in _UNRECOVERED_KINDS:
            recoveries.inc(count)


def harvest_monitor(registry: MetricsRegistry, monitor) -> None:
    """Export the online watchdog's verdict."""
    if monitor is None:
        return
    registry.gauge(
        "monitor_ok",
        "1 when the online invariant monitor saw zero violations",
    ).set(1 if monitor.ok else 0)
    registry.gauge(
        "monitor_total_violations",
        "invariant violations flagged by the online monitor",
    ).set(monitor.total_violations)


def harvest_run(
    registry: MetricsRegistry,
    result,
    controller=None,
    faults: bool = True,
) -> None:
    """Harvest one :class:`~repro.sim.system.RunResult` end to end.

    ``controller`` additionally pulls DRAM channel/rank activity and the
    monitor verdict.  ``faults=False`` skips the fault counters for
    callers that streamed them live (see :func:`harvest_faults`).
    """
    registry.gauge("run_info", "1; labels carry run identity",
                   ("scheme",)).set(1, scheme=result.scheme)
    registry.gauge("run_cycles", "simulated memory-controller cycles")\
        .set(result.cycles)
    registry.gauge("bus_utilization", "data-bus busy fraction")\
        .set(round(result.bus_utilization, 6))
    harvest_controller_stats(registry, result.stats)
    harvest_energy(registry, result.energy)
    harvest_cores(registry, result.cores)
    histograms = inter_service_histogram(result.service_trace)
    histogram_to_registry(registry, histograms)
    registry.gauge(
        "service_cadence_degenerate",
        "1 when every domain's inter-service-time histogram has a "
        "single bucket (the FS invariance)",
    ).set(1 if is_degenerate(histograms) else 0)
    if faults:
        harvest_faults(registry, getattr(result, "faults", None))
    if controller is not None:
        harvest_dram(registry, controller.dram)
        harvest_monitor(registry, getattr(controller, "monitor", None))


def run_to_registry(result, controller=None) -> MetricsRegistry:
    """Fresh registry holding everything one finished run exposes."""
    registry = MetricsRegistry()
    harvest_run(registry, result, controller, faults=True)
    return registry


__all__ = [
    "harvest_controller_stats",
    "harvest_cores",
    "harvest_dram",
    "harvest_energy",
    "harvest_faults",
    "harvest_monitor",
    "harvest_run",
    "run_to_registry",
]
