"""Per-domain inter-service-time distributions: the invariance picture.

The paper's security argument (Sections 3-5) collapses to one
observable statement: under a Fixed Service policy, the spacing between
a domain's consecutive service events is a constant fixed by the
timetable — it carries **zero bits** about co-runners (or anything
else).  Under FR-FCFS the spacing is workload- and co-runner-dependent,
which is exactly the distribution Gong & Kiyavash and Kadloor et al.
compute leakage from.

:func:`inter_service_histogram` turns any run's per-domain service
trace (``RunResult.service_trace``) into that distribution; a **FS
scheme yields a degenerate (single-bucket) histogram per domain**,
FR-FCFS a spread.  ``tests/test_telemetry.py`` pins both directions.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

#: service_trace type alias: domain -> [(cycle, kind_code), ...]
ServiceTrace = Dict[int, List[Tuple[int, str]]]


def inter_service_histogram(
    service_trace: ServiceTrace,
    kinds: Optional[Iterable[str]] = None,
) -> Dict[int, Counter]:
    """Histogram of deltas between consecutive service events per domain.

    ``kinds`` optionally restricts which event codes count as a service
    observation (default: every trace event, including bubbles ``"-"`` —
    the attacker observes the *slot cadence*, and FS slots fire whether
    or not they carry demand).
    """
    wanted = set(kinds) if kinds is not None else None
    out: Dict[int, Counter] = {}
    for domain, events in service_trace.items():
        cycles = [
            c for c, kind in events
            if wanted is None or kind in wanted
        ]
        out[domain] = Counter(
            b - a for a, b in zip(cycles, cycles[1:])
        )
    return out


def is_degenerate(histograms: Dict[int, Counter]) -> bool:
    """True when every domain's histogram has at most one bucket —
    i.e. the service cadence is a constant (the FS invariance)."""
    return all(len(h) <= 1 for h in histograms.values())


def histogram_report(
    histograms: Dict[int, Counter],
    scheme: str = "",
    max_buckets: int = 8,
) -> str:
    """Human-readable per-domain summary of the distributions."""
    lines = []
    title = "per-domain inter-service-time histogram (cycles)"
    if scheme:
        title += f" — {scheme}"
    lines.append(title)
    for domain in sorted(histograms):
        hist = histograms[domain]
        if not hist:
            lines.append(f"  domain {domain}: <2 events")
            continue
        shown = sorted(hist.items())[:max_buckets]
        body = "  ".join(f"{delta}x{count}" for delta, count in shown)
        if len(hist) > max_buckets:
            body += f"  ... ({len(hist)} buckets total)"
        tag = (
            "FIXED CADENCE (degenerate)" if len(hist) == 1
            else f"{len(hist)} distinct gaps"
        )
        lines.append(f"  domain {domain}: {body}   [{tag}]")
    verdict = (
        "invariant service timing: the timeline reveals nothing"
        if is_degenerate(histograms)
        else "workload-dependent service timing: a timing channel "
             "candidate"
    )
    lines.append(f"  => {verdict}")
    return "\n".join(lines)


def histogram_to_registry(registry, histograms: Dict[int, Counter],
                          name: str = "inter_service_cycles") -> None:
    """Export the distributions into a metrics registry.

    Uses exact per-delta counters (``{domain, delta}`` labels) plus a
    per-domain distinct-bucket gauge, so a dashboard can alert on
    ``inter_service_distinct_gaps > 1`` for any FS run.
    """
    exact = registry.counter(
        name + "_total",
        "observed inter-service gaps (exact-delta counters)",
        ("domain", "delta"),
    )
    spread = registry.gauge(
        "inter_service_distinct_gaps",
        "distinct inter-service gap sizes per domain "
        "(1 = degenerate = the FS invariance holds)",
        ("domain",),
    )
    for domain in sorted(histograms):
        hist = histograms[domain]
        for delta, count in sorted(hist.items()):
            exact.inc(count, domain=domain, delta=delta)
        spread.set(len(hist), domain=domain)


def certification_report(certificate, max_rows: int = 12) -> str:
    """Human-readable summary of a certification
    :class:`~repro.certify.harness.Certificate` — per-strategy MI
    bounds, worst strategy first, and the aggregate verdict."""
    lines = [
        f"certification — scheme {certificate.scheme} "
        f"(engine {certificate.engine}, "
        f"epsilon {certificate.epsilon_bits:g} bits)"
    ]
    ranked = sorted(
        certificate.verdicts,
        key=lambda v: (
            v.error_type is None, v.passed, -v.mi_upper_bits,
        ),
    )
    for verdict in ranked[:max_rows]:
        if verdict.error_type is not None:
            detail = f"ERROR {verdict.error_type}: {verdict.error}"
        else:
            detail = (
                f"MI<= {verdict.mi_upper_bits:.6f} bits  "
                f"capacity {verdict.capacity_bits:.6f}  "
                f"{'exact-match' if verdict.exact_match else 'DIVERGED'}"
            )
        tag = "pass" if verdict.passed else "LEAK"
        lines.append(f"  [{tag}] {verdict.strategy}: {detail}")
    if len(certificate.verdicts) > max_rows:
        lines.append(
            f"  ... ({len(certificate.verdicts)} strategies total)"
        )
    if certificate.skipped:
        lines.append(
            f"  {len(certificate.skipped)} strategies skipped "
            f"(budget exhausted)"
        )
    verdict = (
        "CERTIFIED: no strategy extracted more than epsilon"
        if certificate.certified
        else "NOT CERTIFIED: at least one strategy read the secret"
    )
    lines.append(f"  => {verdict}")
    return "\n".join(lines)


__all__ = [
    "certification_report",
    "histogram_report",
    "histogram_to_registry",
    "inter_service_histogram",
    "is_degenerate",
]
