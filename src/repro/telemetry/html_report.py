"""One self-contained HTML artifact for a whole run (`repro report`).

Renders everything the observatory knows about one simulated scheme —
metrics snapshot, per-domain inter-service (leakage) histograms,
certification verdicts, span flamegraph summary, and benchmark-ledger
deltas — into a single HTML file with inline CSS and no external
resources, so the artifact can be archived from CI and opened anywhere.

Everything is standard library: :mod:`html` for escaping, CSS bar
charts for histograms (no JS, no plotting dependency).  Sections whose
inputs are absent (no certificate, no ledger) are omitted rather than
rendered empty.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 70em; color: #1a1a2e;
       line-height: 1.45; }
h1 { border-bottom: 3px solid #0f3460; padding-bottom: .3em; }
h2 { color: #0f3460; margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; font-size: .92em; }
th, td { border: 1px solid #cbd5e1; padding: .3em .7em;
         text-align: left; }
th { background: #e2e8f0; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { display: inline-block; background: #16537e; height: .75em;
       vertical-align: baseline; }
.pass { color: #0a7d36; font-weight: 600; }
.fail { color: #b91c1c; font-weight: 600; }
.volatile { color: #92400e; }
.meta { color: #64748b; font-size: .85em; }
code { background: #f1f5f9; padding: 0 .25em; border-radius: 3px; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _section(title: str, body: str) -> str:
    return f"<h2>{_esc(title)}</h2>\n{body}"


def _table(headers: List[str], rows: List[List[str]]) -> str:
    """Rows hold pre-rendered cell HTML; headers are escaped here."""
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "\n".join(
        "<tr>" + "".join(rows_cells) + "</tr>"
        for rows_cells in (r for r in rows)
    )
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>\n{body}\n</tbody></table>"
    )


def _td(value: object, cls: str = "") -> str:
    attr = f' class="{cls}"' if cls else ""
    return f"<td{attr}>{_esc(_fmt(value))}</td>"


# ----------------------------------------------------------------------
# Sections.
# ----------------------------------------------------------------------

def _metrics_section(registry) -> str:
    rows: List[List[str]] = []
    for metric in registry.metrics():
        for label, value in metric.snapshot_samples().items():
            if isinstance(value, dict):  # histogram sample
                value = (
                    f"count={value.get('count')} "
                    f"sum={_fmt(value.get('sum'))}"
                )
            rows.append([
                _td(metric.name,
                    "volatile" if metric.volatile else ""),
                _td(metric.kind),
                _td(label or "—"),
                _td(value, "num"),
            ])
    if not rows:
        return "<p>No metrics recorded.</p>"
    return _table(["metric", "kind", "labels", "value"], rows)


def _histogram_section(histograms: Dict[int, Dict[int, int]]) -> str:
    """Per-domain inter-service delta histograms as CSS bar charts.

    A Fixed Service scheme shows one dominant bar per domain (the fixed
    slot period); spread across many deltas is the visual signature of
    a timing channel.
    """
    parts: List[str] = []
    for domain in sorted(histograms):
        counts = histograms[domain]
        total = sum(counts.values()) or 1
        peak = max(counts.values(), default=1)
        rows = []
        for delta in sorted(counts):
            count = counts[delta]
            width = max(1, round(180 * count / peak))
            bar = (
                f'<td><span class="bar" '
                f'style="width:{width}px"></span> '
                f'{count} ({count / total:.1%})</td>'
            )
            rows.append([_td(delta, "num"), bar])
        parts.append(
            f"<h3>domain {domain} "
            f'<span class="meta">({total} intervals, '
            f"{len(counts)} distinct deltas)</span></h3>"
            + _table(["delta (cycles)", "frequency"], rows)
        )
    if not parts:
        return "<p>No service trace captured.</p>"
    return "\n".join(parts)


def _certificate_section(certificate) -> str:
    rows = []
    for v in certificate.verdicts:
        verdict = (
            '<td class="fail">error</td>' if v.error_type is not None
            else '<td class="pass">pass</td>' if v.passed
            else '<td class="fail">leak</td>'
        )
        rows.append([
            _td(v.strategy), _td(v.family), _td(v.trials, "num"),
            _td("yes" if v.exact_match else "no"),
            _td(v.mi_upper_bits, "num"),
            _td(v.capacity_bits, "num"),
            verdict,
        ])
    aggregate = (
        '<p class="pass">CERTIFIED</p>' if certificate.certified
        else '<p class="fail">NOT CERTIFIED</p>'
    )
    meta = (
        f'<p class="meta">scheme <code>{_esc(certificate.scheme)}</code>'
        f" · engine {_esc(certificate.engine)}"
        f" · ε = {_fmt(certificate.epsilon_bits)} bits"
        f" · {len(certificate.skipped)} skipped</p>"
    )
    return aggregate + meta + _table(
        ["strategy", "family", "trials", "exact", "MI upper (bits)",
         "capacity (bits)", "verdict"],
        rows,
    )


def _spans_section(summary: List[Dict[str, object]]) -> str:
    """Flamegraph-style aggregate: total self-clock per (category,
    name), bar-scaled within each category."""
    if not summary:
        return "<p>No spans recorded.</p>"
    peak_by_category: Dict[str, int] = {}
    for entry in summary:
        cat = str(entry["category"])
        peak_by_category[cat] = max(
            peak_by_category.get(cat, 1), int(entry["total"]) or 1
        )
    rows = []
    for entry in summary:
        cat = str(entry["category"])
        total = int(entry["total"])
        width = max(1, round(180 * total / peak_by_category[cat]))
        bar = (
            f'<td><span class="bar" style="width:{width}px"></span> '
            f"{total}</td>"
        )
        rows.append([
            _td(cat), _td(entry["name"]), _td(entry["count"], "num"),
            bar, _td(entry["max"], "num"),
        ])
    return _table(
        ["category", "span", "count", "total duration", "max"], rows
    )


def _bench_section(comparison) -> str:
    rows = []
    for d in comparison.deltas:
        verdict = (
            '<td class="fail">REGRESSION</td>' if d.regression
            else '<td class="pass">ok</td>'
        )
        rows.append([
            _td(d.name), _td(d.old, "num"), _td(d.new, "num"),
            _td(f"{d.rel_change:+.1%}", "num"), verdict,
        ])
    meta = (
        f'<p class="meta">{_esc(comparison.old_label)} → '
        f"{_esc(comparison.new_label)} · tolerance "
        f"{comparison.tolerance:.0%}</p>"
    )
    status = (
        '<p class="pass">no regressions</p>' if comparison.passed else
        f'<p class="fail">{len(comparison.regressions)} '
        f"regression(s)</p>"
    )
    return meta + status + _table(
        ["metric", "old", "new", "change", "verdict"], rows
    )


# ----------------------------------------------------------------------
# Entry point.
# ----------------------------------------------------------------------

def render_report(
    title: str,
    registry=None,
    histograms: Optional[Dict[int, Dict[int, int]]] = None,
    certificate=None,
    span_summary: Optional[List[Dict[str, object]]] = None,
    bench_comparison=None,
    metadata: Optional[Dict[str, object]] = None,
) -> str:
    """Build the whole self-contained HTML document as a string.

    Every argument except ``title`` is optional; only sections with
    data are rendered.  ``histograms`` maps domain -> {delta: count}
    (what :func:`~repro.telemetry.report.inter_service_histogram`
    returns), ``span_summary`` is
    :meth:`~repro.telemetry.spans.SpanTracer.summary` output.
    """
    sections: List[str] = []
    if metadata:
        items = " · ".join(
            f"{_esc(k)}: <code>{_esc(v)}</code>"
            for k, v in sorted(metadata.items())
        )
        sections.append(f'<p class="meta">{items}</p>')
    if registry is not None:
        sections.append(
            _section("Metrics snapshot", _metrics_section(registry))
        )
    if histograms is not None:
        sections.append(_section(
            "Inter-service leakage histograms",
            _histogram_section(histograms),
        ))
    if certificate is not None:
        sections.append(_section(
            "Certification verdicts",
            _certificate_section(certificate),
        ))
    if span_summary is not None:
        sections.append(_section(
            "Span flamegraph summary", _spans_section(span_summary)
        ))
    if bench_comparison is not None:
        sections.append(_section(
            "Benchmark ledger deltas",
            _bench_section(bench_comparison),
        ))
    body = "\n".join(sections) or "<p>Nothing to report.</p>"
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_STYLE}</style>\n</head>\n<body>\n"
        f"<h1>{_esc(title)}</h1>\n{body}\n</body>\n</html>\n"
    )


def write_report(path: str, document: str) -> None:
    """Write a rendered report; path errors surface as
    :class:`~repro.errors.TelemetryError`."""
    from .collector import open_sink

    handle = open_sink(path)
    try:
        handle.write(document)
    finally:
        handle.close()


__all__ = ["render_report", "write_report"]
