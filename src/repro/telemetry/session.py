"""The live telemetry session: one object the whole stack reports into.

A :class:`TelemetrySession` bundles the three telemetry surfaces —
:class:`~repro.telemetry.registry.MetricsRegistry`,
:class:`~repro.telemetry.collector.TraceCollector`, and
:class:`~repro.telemetry.profiler.EngineProfiler` — behind the hook
methods the simulation stack calls:

* ``on_service`` — every slot grant, from
  :meth:`repro.controllers.base.MemoryController._trace`;
* ``on_command`` — every DRAM command, from the issue paths (checked
  and trusted);
* ``on_fault`` — every struck fault, from
  :meth:`repro.faults.FaultInjector.record`;
* ``on_violation`` — every invariant violation, from the online monitor.

**Zero overhead when absent** is the design rule: controllers hold
``self.telemetry = None`` and guard each hook behind one ``is None``
check — the same pattern as the online monitor — so a run without a
session pays a single attribute load per event and allocates nothing.

Attachment goes through :meth:`attach`, which delegates to the
controller's ``attach_telemetry`` so composites
(:class:`~repro.sim.multichannel.MultiChannelFsController`) can fan the
session out to their per-channel sub-controllers and register the
local-to-global domain renumbering via :meth:`register_domain_map` —
metric labels and trace tracks always carry *global* domain ids.
"""

from __future__ import annotations

from typing import Dict, Optional

from .collector import TraceCollector
from .profiler import EngineProfiler
from .registry import MetricsRegistry

#: Service-trace kind codes -> human-readable event names.
KIND_NAMES: Dict[str, str] = {
    "R": "demand-read",
    "W": "demand-write",
    "P": "prefetch",
    "D": "dummy",
    "-": "bubble",
    "F": "fault",
    "p": "power-down",
}


class TelemetrySession:
    """Registry + collector + profiler behind the simulator's hooks.

    Parameters
    ----------
    registry:
        Metrics registry to populate (fresh one when omitted).
    collector:
        Optional cycle-accurate trace collector; ``None`` keeps the
        session metrics-only (no per-event records retained).
    profile:
        Arm an :class:`EngineProfiler`; the fast driver reports stride
        sizes and wall time into it when present.
    tracer:
        Optional :class:`~repro.telemetry.spans.SpanTracer`; the engines
        record run/phase/epoch spans into it when present (same single
        ``is None`` guard as every other surface).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        collector: Optional[TraceCollector] = None,
        profile: bool = False,
        tracer=None,
    ) -> None:
        self.registry = registry if registry is not None else (
            MetricsRegistry()
        )
        self.collector = collector
        self.profiler = EngineProfiler() if profile else None
        self.tracer = tracer
        #: id(controller) -> {local domain: global domain} for
        #: composite controllers whose sub-controllers renumber domains.
        self._domain_maps: Dict[int, Dict[int, int]] = {}
        # Hot-path metric families, resolved once.
        r = self.registry
        self._service = r.counter(
            "service_events_total",
            "slot grants by security domain and kind code",
            ("domain", "kind"),
        )
        # Queue occupancy is sampled live at service time.  Whether a
        # request arriving *on the service cycle itself* is already
        # enqueued depends on the engine's core/controller interleaving
        # (the fast driver batches core advancement), so — like wall
        # clock — the sample is volatile: useful for dashboards,
        # excluded from the cross-engine determinism contract.
        self._queue_depth = r.gauge(
            "queue_depth",
            "pending demand per domain at its last service event",
            ("domain",), volatile=True,
        )
        self._commands = r.counter(
            "commands_issued_total",
            "DRAM commands issued, by command type and channel",
            ("type", "channel"),
        )
        self._faults = r.counter(
            "faults_injected_total",
            "injected faults that struck", ("kind",),
        )
        self._recoveries = r.counter(
            "recoveries_total",
            "faults recovered within the victim domain's own slots",
        )
        self._violations = r.counter(
            "monitor_violations_total",
            "invariant violations flagged live by the online monitor",
        )

    # -- wiring ---------------------------------------------------------

    def attach(self, controller) -> None:
        """Attach to a controller (and its injector/monitor/subs)."""
        controller.attach_telemetry(self)

    def register_domain_map(
        self, controller, mapping: Dict[int, int]
    ) -> None:
        """Record a sub-controller's local -> global domain renumbering."""
        self._domain_maps[id(controller)] = dict(mapping)

    # -- hot-path hooks -------------------------------------------------

    def on_service(
        self, controller, domain: int, cycle: int, kind: str
    ) -> None:
        """One slot grant, live from the controller's ``_trace``."""
        mapping = self._domain_maps.get(id(controller))
        shown = mapping[domain] if mapping is not None else domain
        self._service.inc(domain=shown, kind=kind)
        depth = controller.pending(domain)
        self._queue_depth.set(depth, domain=shown)
        collector = self.collector
        if collector is not None:
            track = f"domain {shown}"
            collector.record(
                cycle, "slots", track,
                KIND_NAMES.get(kind, kind), ph="i",
            )
            # The "queues" track mirrors the volatile gauge above and
            # carries the same caveat: same-cycle arrivals make it
            # engine-timing-sensitive, so equivalence suites compare
            # every track *except* this one.
            collector.record(
                cycle, "queues", track, "queue_depth", ph="C",
                args={"pending": depth},
            )

    def on_command(self, controller, command) -> None:
        """One DRAM command, live from the issue path."""
        self._commands.inc(
            type=command.type.value, channel=command.channel
        )
        collector = self.collector
        if collector is not None:
            tid = (
                f"rank {command.rank} bank {command.bank}"
                if command.bank >= 0 else f"rank {command.rank}"
            )
            args = None
            if command.domain >= 0:
                mapping = self._domain_maps.get(id(controller))
                shown = (
                    mapping[command.domain] if mapping is not None
                    else command.domain
                )
                args = {"domain": shown}
            collector.record(
                command.cycle, f"channel {command.channel}", tid,
                command.type.value, ph="i", args=args,
            )

    def on_fault(
        self, kind, domain: int, cycle: int, detail: str = ""
    ) -> None:
        """One struck fault, live from :meth:`FaultInjector.record`."""
        name = kind.value if hasattr(kind, "value") else str(kind)
        self._faults.inc(kind=name)
        if name != "borrow_foreign_slot":
            self._recoveries.inc()
        if self.collector is not None:
            self.collector.record(
                cycle, "faults", f"domain {domain}", name, ph="i",
                args={"detail": detail} if detail else None,
            )

    def on_violation(
        self, domain: Optional[int], cycle: int, reason: str
    ) -> None:
        """One invariant violation, live from the online monitor."""
        self._violations.inc()
        if self.collector is not None:
            track = (
                f"domain {domain}"
                if domain is not None and domain >= 0 else "channel"
            )
            self.collector.record(
                cycle, "monitor", track, "violation", ph="i",
                args={"reason": reason},
            )

    # -- post-run -------------------------------------------------------

    def harvest(self, result, controller=None) -> None:
        """Fold a finished run's legacy stat structs into the registry.

        Faults are *not* re-harvested — every strike was already counted
        live through :meth:`on_fault`.
        """
        from .compat import harvest_run

        harvest_run(self.registry, result, controller, faults=False)
        if self.profiler is not None:
            self.profiler.to_registry(self.registry)

    def close(self) -> None:
        """Flush and close the collector's sink, if any (idempotent)."""
        if self.collector is not None:
            self.collector.close()

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["KIND_NAMES", "TelemetrySession"]
