"""Structured JSON-lines logging with run-id correlation.

Every long-running surface (sweep grids, certification batches, CLI
status) logs through :func:`get_logger` instead of ad-hoc prints.
Records render as one JSON object per line on stderr::

    {"ts": "...", "level": "INFO", "logger": "repro.sweep",
     "run_id": "a1b2c3d4", "msg": "cell done", "scheme": "fs_rp", ...}

so a multiprocess sweep's interleaved output stays machine-parseable
and every line can be joined back to its invocation via ``run_id``.

Design notes:

* built on stdlib :mod:`logging` under the ``repro.`` namespace — the
  root ``repro`` logger gets one stderr handler and does not propagate,
  so embedding applications keep their own logging untouched;
* the run id is process-global (:func:`set_run_id` /
  :func:`get_run_id`), defaulting to a fresh ``uuid4`` prefix per
  process — wall-clock-adjacent and therefore *volatile*: it never
  flows into metrics snapshots, traces, or artifacts, only log lines;
* extra fields ride in ``logger.info("msg", extra={"scheme": ...})``
  and are emitted as top-level JSON keys (standard ``LogRecord``
  attributes are filtered out);
* logging is **off by default** (level ``WARNING``); the CLI's
  ``--log-level`` flag calls :func:`configure`.
"""

from __future__ import annotations

import json
import logging
import sys
import time
import uuid
from typing import Optional

_run_id: Optional[str] = None

#: ``LogRecord.__dict__`` keys that are plumbing, not user payload.
_RESERVED = frozenset((
    "args", "asctime", "created", "exc_info", "exc_text", "filename",
    "funcName", "levelname", "levelno", "lineno", "message", "module",
    "msecs", "msg", "name", "pathname", "process", "processName",
    "relativeCreated", "stack_info", "taskName", "thread", "threadName",
))


def get_run_id() -> str:
    """The process-global correlation id (created on first use)."""
    global _run_id
    if _run_id is None:
        _run_id = uuid.uuid4().hex[:12]
    return _run_id


def set_run_id(run_id: str) -> None:
    """Pin the correlation id (workers inherit the parent's)."""
    global _run_id
    _run_id = run_id


class JsonLineFormatter(logging.Formatter):
    """One compact JSON object per record, sorted keys."""

    def format(self, record: logging.LogRecord) -> str:
        out = {
            "ts": round(record.created, 3),
            "level": record.levelname,
            "logger": record.name,
            "run_id": get_run_id(),
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key in out:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            out[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            out["exc"] = self.formatException(record.exc_info)
        return json.dumps(out, sort_keys=True)


def _root() -> logging.Logger:
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(JsonLineFormatter())
        root.addHandler(handler)
        root.propagate = False
        root.setLevel(logging.WARNING)
    return root


def get_logger(name: str) -> logging.Logger:
    """A namespaced structured logger (``repro.<name>``)."""
    _root()
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def configure(level: str = "warning") -> None:
    """Set the shared log level (``--log-level`` flag backend)."""
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        from ..errors import TelemetryError

        raise TelemetryError(f"unknown log level: {level!r}")
    _root().setLevel(numeric)


def log_duration(logger: logging.Logger, msg: str, **fields):
    """Context manager logging ``msg`` with a ``wall_s`` field on exit."""
    return _DurationContext(logger, msg, fields)


class _DurationContext:
    __slots__ = ("_logger", "_msg", "_fields", "_start")

    def __init__(self, logger, msg, fields):
        self._logger = logger
        self._msg = msg
        self._fields = fields

    def __enter__(self):
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, *exc):
        fields = dict(self._fields)
        fields["wall_s"] = round(time.monotonic() - self._start, 4)
        if exc_type is not None:
            fields["outcome"] = "error"
            self._logger.warning(self._msg, extra=fields)
        else:
            self._logger.info(self._msg, extra=fields)


__all__ = [
    "JsonLineFormatter",
    "configure",
    "get_logger",
    "get_run_id",
    "log_duration",
    "set_run_id",
]
