"""Cycle-accurate trace collection: bounded ring buffer + JSONL sink.

:class:`TraceCollector` records the simulator's observable timeline —
slot grants (demand / dummy / prefetch / bubble), DRAM commands, queue
depths, fault strikes, and monitor verdicts — as a stream of
:class:`TraceEvent` records.  Two retention policies compose:

* an in-memory **ring buffer** bounded at ``capacity`` events (the
  total event count stays exact past the cap), which feeds the Chrome
  trace exporter and the in-process analyses; and
* an optional **streaming JSONL sink**: every event is serialized to one
  JSON line the moment it is recorded, so a multi-million-cycle run can
  be traced without holding the timeline in memory.  The sink is plain
  ``{"ts": ..., "pid": ..., "tid": ..., "name": ..., "ph": ...,
  "dur": ..., "args": {...}}`` objects — trivially re-loadable and
  convertible.

Timestamps are **memory-controller cycles** (the simulator's native
clock), recorded exactly as the controllers observe them; collection is
strictly passive, so enabling it cannot perturb any simulated
observable (``tests/test_telemetry.py`` pins this).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, IO, List, NamedTuple, Optional, Union

from ..errors import TelemetryError


class TraceEvent(NamedTuple):
    """One timeline record.

    ``pid``/``tid`` are *track names* (strings), resolved to integer ids
    only at Chrome-trace export time; ``ph`` follows the trace-event
    phase vocabulary (``X`` complete, ``i`` instant, ``C`` counter).
    """

    ts: int
    pid: str
    tid: str
    name: str
    ph: str = "X"
    dur: int = 0
    args: Optional[Dict[str, object]] = None

    def to_json_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "ts": self.ts, "pid": self.pid, "tid": self.tid,
            "name": self.name, "ph": self.ph,
        }
        if self.ph == "X":
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out


def open_sink(path: str) -> IO[str]:
    """Open a writable telemetry sink with a friendly failure mode."""
    try:
        return open(path, "w")
    except OSError as exc:
        raise TelemetryError(
            f"cannot write telemetry output {path!r}: {exc}"
        ) from None


class TraceCollector:
    """Bounded, optionally-streaming event collector.

    Parameters
    ----------
    capacity:
        Ring-buffer bound on retained events.  ``total_events`` keeps
        counting past it; the ring holds the **most recent** events.
    sink:
        ``None`` (ring only), a path string (opened eagerly, errors
        surfaced as :class:`~repro.errors.TelemetryError`), or any
        object with a ``write(str)`` method.
    """

    def __init__(
        self,
        capacity: int = 65536,
        sink: Union[None, str, IO[str]] = None,
    ) -> None:
        if capacity < 1:
            raise TelemetryError("trace capacity must be >= 1")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self.total_events = 0
        self.dropped_events = 0
        self._owns_sink = isinstance(sink, str)
        self._sink: Optional[IO[str]] = (
            open_sink(sink) if isinstance(sink, str) else sink
        )

    # ------------------------------------------------------------------

    def record(
        self,
        ts: int,
        pid: str,
        tid: str,
        name: str,
        ph: str = "X",
        dur: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Append one event (ring + sink)."""
        event = TraceEvent(ts, pid, tid, name, ph, dur, args)
        self.total_events += 1
        if len(self._ring) == self.capacity:
            self.dropped_events += 1
        self._ring.append(event)
        sink = self._sink
        if sink is not None:
            try:
                sink.write(json.dumps(event.to_json_dict(),
                                      sort_keys=True))
                sink.write("\n")
            except OSError as exc:
                raise TelemetryError(
                    f"telemetry sink write failed: {exc}"
                ) from None

    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def close(self) -> None:
        """Flush and close an owned path sink (idempotent)."""
        if self._sink is not None:
            try:
                self._sink.flush()
                if self._owns_sink:
                    self._sink.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            if self._owns_sink:
                self._sink = None

    def __enter__(self) -> "TraceCollector":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["TraceCollector", "TraceEvent", "open_sink"]
