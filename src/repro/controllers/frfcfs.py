"""Non-secure baseline: FR-FCFS with open-page policy and write drain.

This stands in for the paper's baseline (the best scheduler from the 2012
Memory Scheduling Championship).  It captures the two behaviours that make
the baseline fast — row-buffer-hit-first scheduling and batched write
drains — while remaining deterministic.

Scheduling is event-driven: for every bank with pending work the
controller computes the earliest legal issue time of that bank's next
command, then issues the globally best candidate (earliest time first;
ties prefer column commands, i.e. row hits, then age).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dram.commands import (
    Address,
    Command,
    CommandType,
    OpType,
    Request,
    RequestKind,
)
from ..dram.system import DramSystem
from .base import MemoryController


@dataclass
class _Candidate:
    issue_at: int
    is_column: bool
    arrival: int
    command: Command
    request: Optional[Request]
    channel: int

    def sort_key(self) -> Tuple[int, int, int]:
        # Earliest first; at equal time prefer column commands (row hits),
        # then the oldest transaction.
        return (self.issue_at, 0 if self.is_column else 1, self.arrival)


class FrFcfsController(MemoryController):
    """Open-page FR-FCFS with read priority and write-drain hysteresis."""

    #: How deep into a bank's queue to look for a row hit.
    ROW_HIT_SCAN = 16
    #: Age (cycles) past which a transaction refuses to be bypassed.
    STARVATION_LIMIT = 2000

    def __init__(
        self,
        dram: DramSystem,
        num_domains: int,
        write_queue_high: int = 32,
        write_queue_low: int = 8,
        refresh=None,
        log_commands: bool = False,
    ) -> None:
        super().__init__(dram, num_domains, log_commands)
        if not 0 <= write_queue_low < write_queue_high:
            raise ValueError("need 0 <= low watermark < high watermark")
        self.write_queue_high = write_queue_high
        self.write_queue_low = write_queue_low
        nch = dram.num_channels
        self._reads: List[List[Request]] = [[] for _ in range(nch)]
        self._writes: List[List[Request]] = [[] for _ in range(nch)]
        self._draining: List[bool] = [False] * nch
        self._idle_hint: List[int] = [0] * nch
        #: Request ids we issued an ACTIVATE for (row-hit accounting).
        self._activated: set = set()
        self.refresh = refresh
        self.stat_refreshes = 0
        if refresh is not None and refresh.enabled:
            ranks = len(dram.channels[0].ranks)
            self._next_ref = {
                (ch, rk): refresh.next_refresh(rk, 0)
                for ch in range(nch) for rk in range(ranks)
            }

    # ------------------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        ch = request.address.channel
        if request.is_read:
            # Forward from a queued write to the same line, as a real
            # transaction queue would.
            for w in self._writes[ch]:
                a, b = w.address, request.address
                if (a.channel, a.rank, a.bank, a.row, a.column) == (
                    b.channel, b.rank, b.bank, b.row, b.column
                ):
                    request.row_hit = True
                    self._schedule_release(request, request.arrival + 1)
                    self.stats.record_service(request)
                    return
            self._reads[ch].append(request)
        else:
            self._writes[ch].append(request)
        self._idle_hint[ch] = 0

    def pending(self, domain: Optional[int] = None) -> int:
        count = 0
        for queue in self._reads + self._writes:
            for request in queue:
                if domain is None or request.domain == domain:
                    count += 1
        return count

    def write_queue_full(self, channel: int = 0) -> bool:
        """Hard write-queue limit for one channel."""
        return len(self._writes[channel]) >= 2 * self.write_queue_high

    #: Per-channel read transaction-queue capacity (back-pressure bound).
    READ_QUEUE_CAPACITY = 64

    def can_accept(self, domain: int) -> bool:
        """Back-pressure when any channel's queues are at capacity (a
        domain's requests may target any channel)."""
        del domain
        return all(
            len(self._reads[ch]) < self.READ_QUEUE_CAPACITY
            and not self.write_queue_full(ch)
            for ch in range(self.dram.num_channels)
        )

    def next_event(self) -> Optional[int]:
        upcoming: List[int] = []
        for ch in range(self.dram.num_channels):
            if self._reads[ch] or self._writes[ch]:
                hint = max(self._idle_hint[ch], self.now + 1)
                upcoming.append(hint)
        if self._release_heap:
            upcoming.append(max(self.now + 1, self._release_heap[0][0]))
        return min(upcoming) if upcoming else None

    # ------------------------------------------------------------------

    def _work(self, until: int) -> None:
        for ch in range(self.dram.num_channels):
            self._work_channel(ch, until)
            self.dram.channels[ch].prune(self.now)

    def _work_channel(self, ch: int, until: int) -> None:
        while True:
            if self.refresh is not None and self.refresh.enabled:
                self._service_refreshes(ch, until)
            candidate = self._best_candidate(ch, until)
            if candidate is None:
                return
            if candidate.issue_at > until:
                self._idle_hint[ch] = candidate.issue_at
                return
            self._issue_candidate(ch, candidate)

    def _service_refreshes(self, ch: int, until: int) -> None:
        """Demand-based refresh: once a rank's window opens, close its
        banks and issue REF before any further work on that rank."""
        channel = self.dram.channels[ch]
        for rank_id in range(len(channel.ranks)):
            window = self._next_ref[(ch, rank_id)]
            while window.start <= until:
                rank = channel.ranks[rank_id]
                cursor = max(self.now, window.start)
                for bank_id, bank in enumerate(rank.banks):
                    if bank.is_open:
                        pre_at = channel.earliest_precharge(
                            cursor, rank_id, bank_id
                        )
                        self._issue(Command(
                            CommandType.PRECHARGE, pre_at, ch, rank_id,
                            bank_id,
                        ))
                        cursor = pre_at + 1
                ref_at = rank.earliest_refresh(cursor)
                ref_at = channel.next_free_cmd_cycle(ref_at)
                self._issue(Command(
                    CommandType.REFRESH, ref_at, ch, rank_id
                ))
                self.stat_refreshes += 1
                window = self.refresh.next_refresh(
                    rank_id, window.start + 1
                )
                self._next_ref[(ch, rank_id)] = window

    # ------------------------------------------------------------------

    def _update_drain(self, ch: int) -> None:
        """Write-drain hysteresis (a pure function of queue occupancy,
        so scheduling stays independent of when it is evaluated)."""
        occupancy = len(self._writes[ch])
        if self._draining[ch] and occupancy <= self.write_queue_low:
            self._draining[ch] = False
        elif not self._draining[ch] and occupancy >= self.write_queue_high:
            self._draining[ch] = True

    def _best_candidate(self, ch: int, until: int) -> Optional[_Candidate]:
        """Best next command across both queues.

        Reads have priority at equal issue time, but a *ready* write is
        never held back behind a read that cannot issue yet — that is
        what a cycle-accurate read-priority scheduler does, and it keeps
        issue times a pure function of controller state.
        """
        self._update_drain(ch)
        best_read = None
        if not self._draining[ch]:
            best_read = self._best_from_queue(ch, self._reads[ch])
        best_write = self._best_from_queue(ch, self._writes[ch])
        if best_read is None:
            return best_write
        if best_write is None:
            return best_read
        # Read priority on ties; otherwise strictly earlier wins.
        if best_write.issue_at < best_read.issue_at:
            return best_write
        return best_read

    def _best_from_queue(
        self, ch: int, queue: List[Request]
    ) -> Optional[_Candidate]:
        if not queue:
            return None
        channel = self.dram.channels[ch]
        per_bank: Dict[Tuple[int, int], List[Request]] = {}
        for request in queue:
            key = (request.address.rank, request.address.bank)
            per_bank.setdefault(key, []).append(request)
        best: Optional[_Candidate] = None
        for (rank, bank_id), requests in per_bank.items():
            request = self._pick_for_bank(channel, rank, bank_id, requests)
            candidate = self._next_command(ch, request)
            if best is None or candidate.sort_key() < best.sort_key():
                best = candidate
        return best

    def _pick_for_bank(
        self, channel, rank: int, bank_id: int, requests: List[Request]
    ) -> Request:
        """FR-FCFS within a bank: first row hit wins, unless the head is
        starving (measured against the bank's next usable cycle, not the
        wall clock, so the decision is evaluation-time independent)."""
        head = requests[0]
        bank = channel.bank(rank, bank_id)
        if bank.is_open:
            earliest = bank.next_column
            if earliest - head.arrival > self.STARVATION_LIMIT:
                return head
            for request in requests[: self.ROW_HIT_SCAN]:
                if bank.is_row_hit(request.address.row):
                    return request
        return head

    def _next_command(self, ch: int, request: Request) -> _Candidate:
        channel = self.dram.channels[ch]
        addr = request.address
        bank = channel.bank(addr.rank, addr.bank)
        lower = max(self.now, request.arrival)
        if bank.is_open and bank.is_row_hit(addr.row):
            t = channel.earliest_column(
                lower, addr.rank, addr.bank, request.is_read
            )
            cmd_type = (
                CommandType.COL_READ if request.is_read
                else CommandType.COL_WRITE
            )
            cmd = Command(
                cmd_type, t, ch, addr.rank, addr.bank, addr.row,
                request.req_id, request.domain,
            )
            return _Candidate(t, True, request.arrival, cmd, request, ch)
        if bank.is_open:
            t = channel.earliest_precharge(lower, addr.rank, addr.bank)
            cmd = Command(
                CommandType.PRECHARGE, t, ch, addr.rank, addr.bank,
                addr.row, request.req_id, request.domain,
            )
            return _Candidate(t, False, request.arrival, cmd, request, ch)
        t = channel.earliest_activate(lower, addr.rank, addr.bank)
        cmd = Command(
            CommandType.ACTIVATE, t, ch, addr.rank, addr.bank, addr.row,
            request.req_id, request.domain,
        )
        return _Candidate(t, False, request.arrival, cmd, request, ch)

    def _issue_candidate(self, ch: int, candidate: _Candidate) -> None:
        request = candidate.request
        data_start = self._issue(candidate.command)
        if not candidate.is_column:
            if candidate.command.type is CommandType.ACTIVATE:
                # The transaction that forced the activate is a row miss.
                assert request is not None
                request.row_hit = False
                self._activated.add(request.req_id)
            return
        assert request is not None and data_start is not None
        request.issue = candidate.command.cycle
        request.data_start = data_start
        request.completion = data_start + self.params.tBURST
        request.row_hit = request.req_id not in self._activated
        self._activated.discard(request.req_id)
        queue = self._reads[ch] if request.is_read else self._writes[ch]
        queue.remove(request)
        self.stats.record_service(request)
        self._trace(request.domain, candidate.command.cycle,
                    "R" if request.is_read else "W")
        if request.is_read:
            self._schedule_release(request, request.completion)
