"""Memory-controller framework shared by all schedulers.

A controller owns one :class:`~repro.dram.system.DramSystem`, accepts
:class:`~repro.dram.commands.Request` transactions, and advances through
time issuing DRAM commands.  The interface is event-driven:

* :meth:`MemoryController.enqueue` — a new transaction arrives.
* :meth:`MemoryController.advance` — process through ``until`` cycles,
  returning every request *released* (result returned to the core) in the
  meantime.
* :meth:`MemoryController.next_event` — the next cycle at which the
  controller could do something, used by the simulation loop.

Subclasses implement :meth:`_work` which performs scheduling between the
current cycle and ``until``.
"""

from __future__ import annotations

import abc
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..dram.commands import (
    Address,
    Command,
    CommandType,
    OpType,
    Request,
    RequestKind,
)
from ..dram.system import DramSystem
from ..dram.timing import TimingParams


@dataclass
class ControllerStats:
    """Aggregate service statistics, split demand / prefetch / dummy."""

    demand_reads: int = 0
    demand_writes: int = 0
    prefetches: int = 0
    dummies: int = 0
    suppressed_dummies: int = 0
    row_hit_boosts: int = 0
    read_latency_sum: int = 0
    read_count: int = 0
    #: Requests whose slot had to stay empty (intra-domain hazard).
    bubbles: int = 0
    #: Slots filled with a dummy although the domain had pending demand
    #: (blocked by a bank-class restriction or a self-hazard).
    blocked_slots: int = 0
    #: Slots struck by an injected fault (dropped commands, delayed
    #: service, spurious refresh collisions).
    faulted_slots: int = 0
    #: Duplicated commands squashed by the issue-path guard before they
    #: could reach the command bus.
    squashed_duplicates: int = 0

    @property
    def serviced(self) -> int:
        return (
            self.demand_reads + self.demand_writes
            + self.prefetches + self.dummies
        )

    @property
    def dummy_fraction(self) -> float:
        if self.serviced == 0:
            return 0.0
        return self.dummies / self.serviced

    @property
    def prefetch_fraction(self) -> float:
        if self.serviced == 0:
            return 0.0
        return self.prefetches / self.serviced

    @property
    def mean_read_latency(self) -> float:
        if self.read_count == 0:
            return 0.0
        return self.read_latency_sum / self.read_count

    def record_service(self, request: Request) -> None:
        if request.kind is RequestKind.DUMMY:
            self.dummies += 1
        elif request.kind is RequestKind.PREFETCH:
            self.prefetches += 1
        elif request.is_read:
            self.demand_reads += 1
        else:
            self.demand_writes += 1

    def record_release(self, request: Request) -> None:
        if request.kind is RequestKind.DEMAND and request.is_read:
            latency = request.latency
            assert latency is not None
            self.read_latency_sum += latency
            self.read_count += 1


class MemoryController(abc.ABC):
    """Base class: request queues, command log, release plumbing."""

    def __init__(
        self,
        dram: DramSystem,
        num_domains: int,
        log_commands: bool = False,
    ) -> None:
        if num_domains < 1:
            raise ValueError("need at least one domain")
        self.dram = dram
        self.params: TimingParams = dram.params
        self.num_domains = num_domains
        self.now = 0
        self.stats = ControllerStats()
        self.log_commands = log_commands
        #: Optional online watchdog (see
        #: :class:`repro.core.online_monitor.OnlineInvariantMonitor`);
        #: observes every service event and issued command live.
        self.monitor = None
        #: Optional observability session (see
        #: :class:`repro.telemetry.session.TelemetrySession`); strictly
        #: passive, guarded by one ``is None`` check per event.
        self.telemetry = None
        #: Full command log (only when log_commands is set; used by the
        #: timing checker and the security tests).
        self.command_log: List[Command] = []
        self._release_heap: List[Tuple[int, int, Request]] = []
        self._seq = itertools.count()
        #: Per-domain service trace: (slot/issue cycle, kind) — the
        #: observable the non-interference tests compare.
        self.service_trace: Dict[int, List[Tuple[int, str]]] = {
            d: [] for d in range(num_domains)
        }

    # ------------------------------------------------------------------
    # Public interface.
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def enqueue(self, request: Request) -> None:
        """Accept a transaction.

        Contract: requests are delivered in arrival order, no earlier than
        ``advance`` has reached them (``request.arrival`` may not exceed
        the next ``advance`` horizon).  Demand-sensitive policies (write
        drain, FS slot decisions) read queue occupancy, so future-dated
        enqueues would distort scheduling.
        """

    @abc.abstractmethod
    def pending(self, domain: Optional[int] = None) -> int:
        """Number of queued demand transactions (optionally per domain)."""

    def can_accept(self, domain: int) -> bool:
        """Whether a new transaction from ``domain`` may be enqueued now.

        Returning False applies back-pressure: the system holds the
        request and the producing core stalls, exactly as Section 5.1
        describes for a full transaction queue.  Default: unbounded.
        """
        del domain
        return True

    def advance(self, until: int) -> List[Request]:
        """Process through cycle ``until`` and return released requests."""
        if until < self.now:
            raise ValueError("time cannot move backwards")
        self._work(until)
        self.now = until
        released: List[Request] = []
        while self._release_heap and self._release_heap[0][0] <= until:
            _, _, request = heapq.heappop(self._release_heap)
            released.append(request)
            self.stats.record_release(request)
        return released

    @abc.abstractmethod
    def next_event(self) -> Optional[int]:
        """Next cycle > now at which this controller can make progress,
        or None if it is idle until new requests arrive."""

    def drain_deadline(self) -> Optional[int]:
        """Earliest cycle by which every accepted request will have been
        released, if the controller can tell; used for clean shutdown."""
        if self._release_heap:
            return self._release_heap[0][0]
        return None

    # ------------------------------------------------------------------
    # Helpers for subclasses.
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _work(self, until: int) -> None:
        """Scheduling work between ``self.now`` and ``until``."""

    def attach_monitor(self, monitor) -> None:
        """Attach an online invariant watchdog to this controller."""
        self.monitor = monitor

    def attach_telemetry(self, session) -> None:
        """Attach a telemetry session to this controller.

        Also wires the session into the controller's fault injector and
        online monitor when present, so fault strikes and invariant
        violations stream into the same registry/timeline.  Composite
        controllers override this to fan out to their sub-controllers.
        """
        self.telemetry = session
        injector = getattr(self, "fault_injector", None)
        if injector is not None:
            injector.telemetry = session
        if self.monitor is not None:
            self.monitor.telemetry = session

    def _issue(self, command: Command) -> Optional[int]:
        """Issue a command to its channel, with optional logging."""
        data_start = self.dram.channels[command.channel].issue(command)
        if self.log_commands:
            self.command_log.append(command)
        if self.monitor is not None:
            self.monitor.observe_command(command)
        if self.telemetry is not None:
            self.telemetry.on_command(self, command)
        return data_start

    def _schedule_release(self, request: Request, cycle: int) -> None:
        request.release = cycle
        heapq.heappush(
            self._release_heap, (cycle, next(self._seq), request)
        )

    def _trace(self, domain: int, cycle: int, what: str) -> None:
        self.service_trace[domain].append((cycle, what))
        if self.monitor is not None:
            self.monitor.observe_service(domain, cycle, what)
        if self.telemetry is not None:
            self.telemetry.on_service(self, domain, cycle, what)

    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Close out power-state accounting at the current cycle."""
        self.dram.finalize(self.now)
        if self.monitor is not None:
            self.monitor.finalize()

    @property
    def name(self) -> str:
        return type(self).__name__
