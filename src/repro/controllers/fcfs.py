"""Strict FCFS controller (closed-page), a simple reference point.

Serves each channel's transactions strictly in arrival order with
auto-precharge columns.  Not part of the paper's evaluation, but useful as
the simplest correct scheduler for tests and as a lower bound on
non-secure performance.
"""

from __future__ import annotations

from typing import List, Optional

from ..dram.commands import Command, CommandType, Request
from ..dram.system import DramSystem
from .base import MemoryController


class FcfsController(MemoryController):
    """One transaction at a time, in order, closed page."""

    def __init__(
        self,
        dram: DramSystem,
        num_domains: int,
        log_commands: bool = False,
    ) -> None:
        super().__init__(dram, num_domains, log_commands)
        self._queues: List[List[Request]] = [
            [] for _ in range(dram.num_channels)
        ]
        self._idle_hint: List[int] = [0] * dram.num_channels

    def enqueue(self, request: Request) -> None:
        self._queues[request.address.channel].append(request)
        self._idle_hint[request.address.channel] = 0

    def pending(self, domain: Optional[int] = None) -> int:
        return sum(
            1
            for queue in self._queues
            for request in queue
            if domain is None or request.domain == domain
        )

    def next_event(self) -> Optional[int]:
        upcoming = [
            max(self._idle_hint[ch], self.now + 1)
            for ch, queue in enumerate(self._queues)
            if queue
        ]
        if self._release_heap:
            upcoming.append(max(self.now + 1, self._release_heap[0][0]))
        return min(upcoming) if upcoming else None

    def _work(self, until: int) -> None:
        for ch, queue in enumerate(self._queues):
            channel = self.dram.channels[ch]
            while queue:
                request = queue[0]
                addr = request.address
                lower = max(self.now, request.arrival)
                act_at = channel.earliest_activate(
                    lower, addr.rank, addr.bank
                )
                if act_at > until:
                    self._idle_hint[ch] = act_at
                    break
                self._issue(Command(
                    CommandType.ACTIVATE, act_at, ch, addr.rank, addr.bank,
                    addr.row, request.req_id, request.domain,
                ))
                col_at = channel.earliest_column(
                    act_at + self.params.tRCD, addr.rank, addr.bank,
                    request.is_read,
                )
                cmd_type = (
                    CommandType.COL_READ_AP if request.is_read
                    else CommandType.COL_WRITE_AP
                )
                data_start = self._issue(Command(
                    cmd_type, col_at, ch, addr.rank, addr.bank,
                    addr.row, request.req_id, request.domain,
                ))
                assert data_start is not None
                queue.pop(0)
                request.issue = act_at
                request.data_start = data_start
                request.completion = data_start + self.params.tBURST
                self.stats.record_service(request)
                self._trace(request.domain, act_at,
                            "R" if request.is_read else "W")
                if request.is_read:
                    self._schedule_release(request, request.completion)
            channel.prune(self.now)
