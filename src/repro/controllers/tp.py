"""Temporal Partitioning (Wang et al., HPCA 2014) — the prior secure scheme.

The memory controller is time-sliced: during a *turn* only one security
domain may start memory transactions; near the end of each turn new issue
is blocked for the *dead time* so in-flight work cannot contend with the
next domain.  Turn order and lengths are fixed (they never adapt to
demand), which is what makes TP non-interfering and also what makes it
slow: idle turns are wasted and every queued request waits for its turn.

Two variants from the paper:

* **bank-partitioned TP** — each domain has private banks, so the next
  turn only shares the channel buses; the dead time is small
  (``write_to_read`` = 15 cycles ~ the paper's "12 ns").
* **no-partitioning TP** — domains share banks, so the dead time must
  cover the full worst-case bank turnaround (43 cycles ~ "65 ns" with
  command overheads).

Transactions are closed-page (ACT + column-with-auto-precharge), issued
FCFS per bank with bank-level parallelism inside the turn.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dram.commands import Command, CommandType, Request
from ..dram.system import DramSystem
from ..dram.timing import TimingParams
from .base import MemoryController


def default_dead_time(params: TimingParams, bank_partitioned: bool) -> int:
    """Minimal dead time for *exact* non-interference, derived from the
    timing parameters.

    This controller only starts a transaction when its whole command
    pair fits before the issue deadline, so the last column is at most
    ``deadline - 1`` and the last activate at most
    ``deadline - 1 - tRCD``.  The dead time must then absorb every
    rank/bank constraint the old turn can impose on the new one:

    * tFAW — the binding one for bank partitioning:
      ``dead >= tFAW - tRCD - 1`` (12 cycles for Table 1, matching the
      12 ns Wang et al. quote for their bank-partitioned TP);
    * write-to-read column turnaround: ``wr2rd - 2*tRCD - 1`` (negative
      here);
    * shared-bank write turnaround (no partitioning only):
      ``tCWD + tBURST + tWR + tRP - 1`` = 31, and
      ``tRC - tRCD - 1`` = 27.
    """
    p = params
    dead = max(
        p.tFAW - p.tRCD - 1,
        p.write_to_read - 2 * p.tRCD - 1,
        p.tBURST + p.tRTRS,  # data-bus drain floor
    )
    if not bank_partitioned:
        dead = max(
            dead,
            p.tCWD + p.tBURST + p.tWR + p.tRP - 1,
            p.tRC - p.tRCD - 1,
        )
    return dead


#: The best-performing turn lengths from the paper's Figure 5 sweep
#: (the shortest feasible turns it evaluates).
DEFAULT_TURN_BP = 60
DEFAULT_TURN_NP = 172


def default_turn_length(bank_partitioned: bool) -> int:
    """The paper's best turn length for each TP variant."""
    return DEFAULT_TURN_BP if bank_partitioned else DEFAULT_TURN_NP


def min_turn_length(params: TimingParams, bank_partitioned: bool) -> int:
    """Smallest useful turn: room for one transaction plus dead time."""
    one_txn = params.tRCD + max(params.tCAS, params.tCWD) + params.tBURST
    return one_txn + default_dead_time(params, bank_partitioned) + 1


class TemporalPartitioningController(MemoryController):
    """Fixed round-robin turns with a dead-time issue blackout."""

    #: How deep to scan the domain's queue for issuable transactions.
    SCAN_DEPTH = 16

    def __init__(
        self,
        dram: DramSystem,
        num_domains: int,
        turn_length: int,
        dead_time: Optional[int] = None,
        bank_partitioned: bool = True,
        log_commands: bool = False,
    ) -> None:
        super().__init__(dram, num_domains, log_commands)
        if dead_time is None:
            dead_time = default_dead_time(dram.params, bank_partitioned)
        if turn_length <= dead_time:
            raise ValueError(
                f"turn length {turn_length} must exceed dead time "
                f"{dead_time}"
            )
        self.turn_length = turn_length
        self.dead_time = dead_time
        self.bank_partitioned = bank_partitioned
        #: With private banks, rows may stay open across the owner's own
        #: turns; shared banks must close every row (auto-precharge) so
        #: no bank state crosses a turn boundary.
        self.open_page = bank_partitioned
        self._queues: Dict[int, List[Request]] = {
            d: [] for d in range(num_domains)
        }
        self._idle_hint = 0

    # ------------------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        self._queues[request.domain].append(request)
        self._idle_hint = 0

    def pending(self, domain: Optional[int] = None) -> int:
        if domain is not None:
            return len(self._queues[domain])
        return sum(len(q) for q in self._queues.values())

    def turn_of(self, cycle: int) -> Tuple[int, int, int]:
        """(domain, turn start, issue deadline) for the turn at ``cycle``."""
        index = cycle // self.turn_length
        start = index * self.turn_length
        domain = index % self.num_domains
        return domain, start, start + self.turn_length - self.dead_time

    def next_turn_start(self, domain: int, after: int) -> int:
        """First cycle >= ``after`` at which ``domain`` owns a turn."""
        index = after // self.turn_length
        for probe in range(index, index + self.num_domains + 1):
            if probe % self.num_domains == domain:
                start = probe * self.turn_length
                if start + self.turn_length - self.dead_time > after:
                    return max(start, after)
        raise AssertionError("unreachable: round-robin always recurs")

    def next_event(self) -> Optional[int]:
        upcoming: List[int] = []
        for domain, queue in self._queues.items():
            if queue:
                t = self.next_turn_start(domain, self.now)
                upcoming.append(max(t, self.now + 1, self._idle_hint))
        if self._release_heap:
            upcoming.append(max(self.now + 1, self._release_heap[0][0]))
        return min(upcoming) if upcoming else None

    # ------------------------------------------------------------------

    def _work(self, until: int) -> None:
        cursor = self.now
        while cursor <= until:
            domain, start, deadline = self.turn_of(cursor)
            self._serve_turn(domain, max(cursor, start), deadline, until)
            cursor = start + self.turn_length
        for channel in self.dram.channels:
            channel.prune(self.now)

    def _serve_turn(
        self, domain: int, cursor: int, deadline: int, until: int
    ) -> None:
        """Issue as much of ``domain``'s work as fits the issue window.

        Within its own turn a domain schedules freely — no security
        constraint applies to self-interference — so this is a normal
        FR-FCFS engine: row hits first, then oldest.  Every command must
        land strictly before the deadline so no shared-resource state
        (command bus, data bus, tFAW/turnaround windows) can spill into
        the next domain's turn.

        With bank partitioning the domain's banks are private, so rows
        may stay open across its own turns (open-page policy, as in Wang
        et al.'s per-turn scheduler).  Without partitioning banks are
        shared: every access auto-precharges, leaving no bank state for
        the next domain to observe.
        """
        queue = self._queues[domain]
        while queue:
            best = self._best_turn_command(
                domain, cursor, deadline, until
            )
            if best is None:
                return
            commands, request = best
            data_start = None
            for command in commands:
                started = self._issue(command)
                if command.type.is_column:
                    data_start = started
            if request is not None:
                assert data_start is not None
                request.issue = commands[0].cycle
                request.data_start = data_start
                request.completion = data_start + self.params.tBURST
                self.stats.record_service(request)
                self._trace(request.domain, commands[0].cycle,
                            "R" if request.is_read else "W")
                queue.remove(request)
                if request.is_read:
                    self._schedule_release(request, request.completion)

    def _best_turn_command(
        self, domain: int, cursor: int, deadline: int, until: int
    ) -> Optional[Tuple[List[Command], Optional[Request]]]:
        """FR-FCFS candidate selection within the domain's turn."""
        queue = self._queues[domain]
        per_bank: Dict[Tuple[int, int, int], List[Request]] = {}
        scanned = 0
        for request in queue:
            if request.arrival >= deadline or request.arrival > until:
                continue
            scanned += 1
            if scanned > self.SCAN_DEPTH:
                break
            key = request.address.bank_key()
            per_bank.setdefault(key, []).append(request)
        best: Optional[Tuple[Tuple[int, int, int], List[Command],
                             Optional[Request]]] = None
        for (ch, rank, bank_id), requests in per_bank.items():
            candidate = self._bank_candidate(
                ch, rank, bank_id, requests, cursor, deadline, until
            )
            if candidate is None:
                continue
            key, commands, request = candidate
            if best is None or key < best[0]:
                best = candidate
        if best is None:
            return None
        return best[1], best[2]

    def _bank_candidate(
        self, ch: int, rank: int, bank_id: int, requests: List[Request],
        cursor: int, deadline: int, until: int,
    ) -> Optional[Tuple[Tuple[int, int, int], List[Command],
                        Optional[Request]]]:
        """Next command(s) for one bank's queued requests, deadline-gated.

        Open-page mode steps command by command (PRE / ACT / row-hit
        column); closed-page mode returns the whole ACT + auto-precharge
        column pair atomically, so a row can never be left open into
        another domain's turn.
        """
        channel = self.dram.channels[ch]
        bank = channel.bank(rank, bank_id)
        request = requests[0]
        if self.open_page and bank.is_open:
            for candidate in requests:
                if bank.is_row_hit(candidate.address.row):
                    request = candidate
                    break
        addr = request.address
        lower = max(cursor, request.arrival)
        if bank.is_open:
            if bank.is_row_hit(addr.row):
                col_at = channel.earliest_column(
                    lower, rank, bank_id, request.is_read
                )
                if col_at >= deadline or col_at > until:
                    return None
                if self.open_page:
                    cmd_type = (
                        CommandType.COL_READ if request.is_read
                        else CommandType.COL_WRITE
                    )
                else:
                    cmd_type = (
                        CommandType.COL_READ_AP if request.is_read
                        else CommandType.COL_WRITE_AP
                    )
                return (
                    (0, col_at, request.arrival),
                    [Command(cmd_type, col_at, ch, rank, bank_id,
                             addr.row, request.req_id, request.domain)],
                    request,
                )
            # Row conflict (open-page only): close the row first.
            pre_at = channel.earliest_precharge(lower, rank, bank_id)
            if pre_at >= deadline or pre_at > until:
                return None
            return (
                (1, pre_at, request.arrival),
                [Command(CommandType.PRECHARGE, pre_at, ch, rank,
                         bank_id, addr.row, request.req_id,
                         request.domain)],
                None,
            )
        act_at = channel.earliest_activate(lower, rank, bank_id)
        if act_at >= deadline or act_at > until:
            return None
        # The follow-up column must also fit this turn, else the ACT
        # would carry tFAW/tRRD state into the next turn for nothing.
        col_at = channel.earliest_column_after_planned_act(
            act_at, rank, request.is_read
        )
        if col_at >= deadline:
            return None
        act_cmd = Command(
            CommandType.ACTIVATE, act_at, ch, rank, bank_id,
            addr.row, request.req_id, request.domain,
        )
        if self.open_page:
            # Issue the ACT alone; its column follows as a row hit.
            return ((1, act_at, request.arrival), [act_cmd], None)
        # Closed page: the pair issues atomically, so no bank is ever
        # left open across a turn boundary.
        cmd_type = (
            CommandType.COL_READ_AP if request.is_read
            else CommandType.COL_WRITE_AP
        )
        col_cmd = Command(
            cmd_type, col_at, ch, rank, bank_id, addr.row,
            request.req_id, request.domain,
        )
        return ((1, act_at, request.arrival), [act_cmd, col_cmd], request)
