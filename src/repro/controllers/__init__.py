"""Memory-controller schedulers: non-secure baselines and prior work."""

from .base import ControllerStats, MemoryController
from .fcfs import FcfsController
from .frfcfs import FrFcfsController
from .tp import (
    DEFAULT_TURN_BP,
    DEFAULT_TURN_NP,
    TemporalPartitioningController,
    default_dead_time,
    default_turn_length,
    min_turn_length,
)

__all__ = [
    "ControllerStats", "MemoryController",
    "FcfsController", "FrFcfsController",
    "TemporalPartitioningController", "default_dead_time",
    "default_turn_length", "min_turn_length",
    "DEFAULT_TURN_BP", "DEFAULT_TURN_NP",
]
