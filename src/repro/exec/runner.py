"""Serial and parallel job drivers with deterministic merging.

:func:`run_jobs` is the one fan-out loop in the repository.  Its
contract — the property every consumer's byte-identity test pins — is:

* **submission-order merging** — results are merged strictly in the
  order jobs were given, regardless of completion order, so a
  ``workers=N`` batch produces byte-identical checkpoints, artifacts,
  and (scrubbed) span traces to a serial one;
* **per-job failure isolation** — a job that raises, or whose worker
  dies hard and breaks the pool, is merged as a failed
  :class:`~repro.exec.jobs.JobResult` at its own position; completed
  jobs keep checkpointing, so a crashed batch resumes cleanly;
* **identical code path** — ``workers=1`` runs the very same
  :func:`~repro.exec.jobs.run_job` shim inline that a worker process
  runs, so serial and parallel execution cannot drift apart;
* **lazy serial / eager parallel auxiliaries** — an auxiliary job (a
  sweep's baseline run) is submitted eagerly in parallel mode (it
  overlaps with primaries) but resolved lazily in serial mode (it runs
  only when a merge first asks for it, preserving the historical serial
  execution order).  Both modes memoize per call, so each auxiliary
  runs at most once.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .jobs import JobResult, JobSpec, failure_result, result_from_wire, run_job
from .pool import validate_workers, worker_pool

#: Merge callback: ``(spec, result, resolve_aux)`` where ``resolve_aux``
#: maps an auxiliary key (from ``spec.requires``) to its
#: :class:`~repro.exec.jobs.JobResult`.
MergeFn = Callable[[JobSpec, JobResult, Callable[[Any], JobResult]], None]


def adopt_spans(tracer, track: str, category: str, records) -> None:
    """Fold one job's shipped span records into a parent tracer.

    Opens a covering span on ``track``, adopts the records beneath it,
    and closes it — called once per merged job, in submission order, so
    the parent trace's record sequence (and logical clock) is identical
    at any worker count.
    """
    seq = tracer.begin(track, category)
    tracer.adopt(records, track=track)
    tracer.end(seq)


def _out_of_budget(start: float, budget_s: Optional[float]) -> bool:
    return (
        budget_s is not None
        and time.monotonic() - start > budget_s
    )


def _spec_failure(spec: JobSpec) -> JobResult:
    exc = spec.failure
    return failure_result(
        spec.key, type(exc).__name__, str(exc), exception=exc
    )


def _broken_result(key: Any, exc: Optional[BaseException]) -> JobResult:
    reason = str(exc) if exc is not None else (
        "worker pool broke before this job was submitted"
    )
    return failure_result(
        key,
        type(exc).__name__ if exc is not None else "BrokenProcessPool",
        reason,
    )


def _future_result(key: Any, future) -> JobResult:
    """A worker future's outcome; pool breakage becomes a failure
    result (isolated per job) instead of aborting the batch."""
    try:
        raw = future.result()
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover
        raise
    except BaseException as exc:
        # BrokenProcessPool and friends: the worker died hard
        # (os._exit, segfault, OOM-kill).  Every not-yet-merged job
        # inherits the failure; completed jobs stay checkpointed, so
        # the batch resumes cleanly.
        return failure_result(
            key, type(exc).__name__, str(exc) or "worker process died"
        )
    return result_from_wire(key, raw)


def run_jobs(
    jobs: Sequence[JobSpec],
    merge: MergeFn,
    aux: Optional[Mapping[Any, JobSpec]] = None,
    workers: int = 1,
    skip: Optional[Callable[[JobSpec], bool]] = None,
    budget_s: Optional[float] = None,
    on_budget_skip: Optional[Callable[[JobSpec], None]] = None,
) -> None:
    """Run ``jobs`` and merge every outcome in submission order.

    ``merge(spec, result, resolve_aux)`` is invoked exactly once per
    non-skipped job, in the order of ``jobs``; ``resolve_aux`` resolves
    a key from ``spec.requires`` against the ``aux`` table (memoized —
    each auxiliary executes at most once per call).  ``skip`` filters
    already-completed jobs (checkpoint resume) before any execution;
    past ``budget_s`` wall-clock seconds, remaining jobs go to
    ``on_budget_skip`` instead of running.  ``workers=1`` executes
    everything in-process; ``workers>1`` fans out over
    :func:`~repro.exec.pool.worker_pool`.
    """
    validate_workers(workers)
    aux = aux or {}
    if workers <= 1:
        _run_serial(jobs, merge, aux, skip, budget_s, on_budget_skip)
    else:
        _run_parallel(
            jobs, merge, aux, workers, skip, budget_s, on_budget_skip
        )


def _run_serial(jobs, merge, aux, skip, budget_s, on_budget_skip):
    start = time.monotonic()
    cache: Dict[Any, JobResult] = {}

    def resolve(key: Any) -> JobResult:
        got = cache.get(key)
        if got is None:
            got = result_from_wire(key, run_job(aux[key], _local=True))
            cache[key] = got
        return got

    for spec in jobs:
        if skip is not None and skip(spec):
            continue
        if _out_of_budget(start, budget_s):
            if on_budget_skip is not None:
                on_budget_skip(spec)
            continue
        if spec.failure is not None:
            result = _spec_failure(spec)
        else:
            result = result_from_wire(
                spec.key, run_job(spec, _local=True)
            )
        merge(spec, result, resolve)


def _run_parallel(
    jobs, merge, aux, workers, skip, budget_s, on_budget_skip
):
    start = time.monotonic()
    #: (spec, future) in submission order; ``future`` is ``None`` for
    #: pre-resolved failures and for jobs never submitted because the
    #: pool broke first.
    planned: List[Tuple[JobSpec, Optional[object]]] = []
    aux_futures: Dict[Any, object] = {}
    broken: Optional[BaseException] = None
    pool = worker_pool(workers)
    try:
        # -- submission (deterministic order) ---------------------------
        for spec in jobs:
            if skip is not None and skip(spec):
                continue
            if _out_of_budget(start, budget_s):
                if on_budget_skip is not None:
                    on_budget_skip(spec)
                continue
            if spec.failure is not None:
                planned.append((spec, None))
                continue
            future = None
            if broken is None:
                try:
                    for akey in spec.requires:
                        if akey not in aux_futures:
                            aux_futures[akey] = pool.submit(
                                run_job, aux[akey]
                            )
                    future = pool.submit(run_job, spec)
                except (KeyboardInterrupt, SystemExit):  # pragma: no cover
                    raise
                except BaseException as exc:  # pool already broken
                    broken = exc
                    future = None
            planned.append((spec, future))

        # -- merge (same deterministic order) ---------------------------
        aux_cache: Dict[Any, JobResult] = {}

        def resolve(key: Any) -> JobResult:
            got = aux_cache.get(key)
            if got is None:
                future = aux_futures.get(key)
                if future is None:
                    got = _broken_result(key, broken)
                else:
                    got = _future_result(key, future)
                aux_cache[key] = got
            return got

        for spec, future in planned:
            if spec.failure is not None:
                result = _spec_failure(spec)
            elif future is None:
                result = _broken_result(spec.key, broken)
            else:
                result = _future_result(spec.key, future)
            merge(spec, result, resolve)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


__all__ = ["MergeFn", "adopt_spans", "run_jobs"]
