"""Serial and parallel job drivers with deterministic merging.

:func:`run_jobs` is the one fan-out loop in the repository.  Its
contract — the property every consumer's byte-identity test pins — is:

* **submission-order merging** — results are merged strictly in the
  order jobs were given, regardless of completion order, so a
  ``workers=N`` batch produces byte-identical checkpoints, artifacts,
  and (scrubbed) span traces to a serial one;
* **per-job failure isolation** — a job that raises, or whose worker
  dies hard and breaks the pool, is merged as a failed
  :class:`~repro.exec.jobs.JobResult` at its own position; completed
  jobs keep checkpointing, so a crashed batch resumes cleanly;
* **identical code path** — ``workers=1`` runs the very same
  :func:`~repro.exec.jobs.run_job` shim inline that a worker process
  runs, so serial and parallel execution cannot drift apart;
* **lazy serial / eager parallel auxiliaries** — an auxiliary job (a
  sweep's baseline run) is submitted eagerly in parallel mode (it
  overlaps with primaries) but resolved lazily in serial mode (it runs
  only when a merge first asks for it, preserving the historical serial
  execution order).  Both modes memoize per call, so each auxiliary
  runs at most once.
* **transparent result reuse** — an optional ``store`` (duck-typed:
  ``lookup(spec) -> Optional[raw]``, ``record(spec, raw) -> bool``,
  e.g. :class:`repro.store.ResultStore`) is consulted before a job
  executes and written back after it succeeds.  A hit substitutes the
  cached raw wire dict at exactly the point the computed one would have
  appeared, so merge order, aux semantics, and every artifact stay
  byte-identical between cold, warm, serial, and parallel runs.  The
  substrate never imports the store package — only this two-method
  protocol — keeping the layering DAG acyclic.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .jobs import JobResult, JobSpec, failure_result, result_from_wire, run_job
from .pool import validate_workers, worker_pool

#: Merge callback: ``(spec, result, resolve_aux)`` where ``resolve_aux``
#: maps an auxiliary key (from ``spec.requires``) to its
#: :class:`~repro.exec.jobs.JobResult`.
MergeFn = Callable[[JobSpec, JobResult, Callable[[Any], JobResult]], None]


def adopt_spans(tracer, track: str, category: str, records) -> None:
    """Fold one job's shipped span records into a parent tracer.

    Opens a covering span on ``track``, adopts the records beneath it,
    and closes it — called once per merged job, in submission order, so
    the parent trace's record sequence (and logical clock) is identical
    at any worker count.
    """
    seq = tracer.begin(track, category)
    tracer.adopt(records, track=track)
    tracer.end(seq)


def _out_of_budget(start: float, budget_s: Optional[float]) -> bool:
    return (
        budget_s is not None
        and time.monotonic() - start > budget_s
    )


def _spec_failure(spec: JobSpec) -> JobResult:
    exc = spec.failure
    return failure_result(
        spec.key, type(exc).__name__, str(exc), exception=exc
    )


def _broken_result(key: Any, exc: Optional[BaseException]) -> JobResult:
    reason = str(exc) if exc is not None else (
        "worker pool broke before this job was submitted"
    )
    return failure_result(
        key,
        type(exc).__name__ if exc is not None else "BrokenProcessPool",
        reason,
    )


class _CachedRaw:
    """Submission-phase marker: this job's raw result came from the store.

    Sits in the ``planned`` list where a future otherwise would, so the
    merge walk converts it at exactly the same position — the property
    that keeps warm-run artifacts byte-identical to cold ones.
    """

    __slots__ = ("raw",)

    def __init__(self, raw: dict) -> None:
        self.raw = raw


def _settled(spec: JobSpec, future, store) -> JobResult:
    """A worker future's outcome; pool breakage becomes a failure
    result (isolated per job) instead of aborting the batch.  Fresh
    successes are written back to ``store`` *before* wire conversion
    (``result_from_wire`` pops shipped spans out of the value dict, so
    the cache must see the intact raw first)."""
    try:
        raw = future.result()
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover
        raise
    except BaseException as exc:
        # BrokenProcessPool and friends: the worker died hard
        # (os._exit, segfault, OOM-kill).  Every not-yet-merged job
        # inherits the failure; completed jobs stay checkpointed, so
        # the batch resumes cleanly.
        return failure_result(
            spec.key, type(exc).__name__,
            str(exc) or "worker process died",
        )
    if store is not None:
        store.record(spec, raw)
    return result_from_wire(spec.key, raw)


def run_jobs(
    jobs: Sequence[JobSpec],
    merge: MergeFn,
    aux: Optional[Mapping[Any, JobSpec]] = None,
    workers: int = 1,
    skip: Optional[Callable[[JobSpec], bool]] = None,
    budget_s: Optional[float] = None,
    on_budget_skip: Optional[Callable[[JobSpec], None]] = None,
    store=None,
) -> None:
    """Run ``jobs`` and merge every outcome in submission order.

    ``merge(spec, result, resolve_aux)`` is invoked exactly once per
    non-skipped job, in the order of ``jobs``; ``resolve_aux`` resolves
    a key from ``spec.requires`` against the ``aux`` table (memoized —
    each auxiliary executes at most once per call).  ``skip`` filters
    already-completed jobs (checkpoint resume) before any execution;
    past ``budget_s`` wall-clock seconds, remaining jobs go to
    ``on_budget_skip`` instead of running.  ``workers=1`` executes
    everything in-process; ``workers>1`` fans out over
    :func:`~repro.exec.pool.worker_pool`.

    ``store`` (optional, duck-typed — see the module docstring) is
    consulted per job before execution and written back on success; a
    hit short-circuits execution but changes nothing about merge order
    or the results any consumer observes.
    """
    validate_workers(workers)
    aux = aux or {}
    if workers <= 1:
        _run_serial(
            jobs, merge, aux, skip, budget_s, on_budget_skip, store
        )
    else:
        _run_parallel(
            jobs, merge, aux, workers, skip, budget_s, on_budget_skip,
            store,
        )


def _run_serial(jobs, merge, aux, skip, budget_s, on_budget_skip, store):
    start = time.monotonic()
    cache: Dict[Any, JobResult] = {}

    def execute(spec: JobSpec) -> JobResult:
        raw = store.lookup(spec) if store is not None else None
        if raw is None:
            raw = run_job(spec, _local=True)
            if store is not None:
                store.record(spec, raw)
        return result_from_wire(spec.key, raw)

    def resolve(key: Any) -> JobResult:
        got = cache.get(key)
        if got is None:
            got = execute(aux[key])
            cache[key] = got
        return got

    for spec in jobs:
        if skip is not None and skip(spec):
            continue
        if _out_of_budget(start, budget_s):
            if on_budget_skip is not None:
                on_budget_skip(spec)
            continue
        if spec.failure is not None:
            result = _spec_failure(spec)
        else:
            result = execute(spec)
        merge(spec, result, resolve)


def _run_parallel(
    jobs, merge, aux, workers, skip, budget_s, on_budget_skip, store
):
    start = time.monotonic()
    #: (spec, handle) in submission order; ``handle`` is a future, a
    #: :class:`_CachedRaw` for store hits, or ``None`` for pre-resolved
    #: failures and jobs never submitted because the pool broke first.
    planned: List[Tuple[JobSpec, Optional[object]]] = []
    aux_futures: Dict[Any, object] = {}
    aux_raw: Dict[Any, dict] = {}
    broken: Optional[BaseException] = None
    pool = worker_pool(workers)
    try:
        # -- submission (deterministic order) ---------------------------
        for spec in jobs:
            if skip is not None and skip(spec):
                continue
            if _out_of_budget(start, budget_s):
                if on_budget_skip is not None:
                    on_budget_skip(spec)
                continue
            if spec.failure is not None:
                planned.append((spec, None))
                continue
            handle = None
            if broken is None:
                try:
                    # Auxiliaries first — even when this job itself hits
                    # the store, its merge may still resolve the aux.
                    for akey in spec.requires:
                        if akey in aux_futures or akey in aux_raw:
                            continue
                        araw = (
                            store.lookup(aux[akey])
                            if store is not None else None
                        )
                        if araw is not None:
                            aux_raw[akey] = araw
                        else:
                            aux_futures[akey] = pool.submit(
                                run_job, aux[akey]
                            )
                    raw = (
                        store.lookup(spec)
                        if store is not None else None
                    )
                    if raw is not None:
                        handle = _CachedRaw(raw)
                    else:
                        handle = pool.submit(run_job, spec)
                except (KeyboardInterrupt, SystemExit):  # pragma: no cover
                    raise
                except BaseException as exc:  # pool already broken
                    broken = exc
                    handle = None
            planned.append((spec, handle))

        # -- merge (same deterministic order) ---------------------------
        aux_cache: Dict[Any, JobResult] = {}

        def resolve(key: Any) -> JobResult:
            got = aux_cache.get(key)
            if got is None:
                if key in aux_raw:
                    got = result_from_wire(key, aux_raw[key])
                else:
                    future = aux_futures.get(key)
                    if future is None:
                        got = _broken_result(key, broken)
                    else:
                        got = _settled(aux[key], future, store)
                aux_cache[key] = got
            return got

        for spec, handle in planned:
            if spec.failure is not None:
                result = _spec_failure(spec)
            elif isinstance(handle, _CachedRaw):
                result = result_from_wire(spec.key, handle.raw)
            elif handle is None:
                result = _broken_result(spec.key, broken)
            else:
                result = _settled(spec, handle, store)
            merge(spec, result, resolve)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


__all__ = ["MergeFn", "adopt_spans", "run_jobs"]
