"""Picklable job descriptions and results for the execution substrate.

A *job* is one unit of fan-out work: a module-level callable plus a
plain-data payload, both picklable so the same description runs
unchanged in-process (``workers=1``) or in a spawn-started worker.  The
callable's return value is a dict of plain data — never live objects —
keeping the IPC channel small and the parent's merge deterministic.

Two conventions make results byte-reproducible across worker counts:

* **the span side channel** — a worker that collected
  :class:`~repro.telemetry.spans.SpanRecord` lists ships them under the
  reserved :data:`SPANS_KEY` payload key; the substrate pops that key
  off the result *before* the consumer sees it, so span capture can
  never perturb checkpoint or artifact bytes (wall-clock noise inside
  the records themselves is quarantined to ``wall_*`` args, stripped by
  :func:`~repro.telemetry.spans.scrub_volatile_args` at comparison
  time);
* **uniform failure capture** — :func:`run_job` converts a raised
  exception into a failure dict (type name, message, and — when it
  pickles — the exception object for strict-mode re-raise) identically
  in workers and in-process, so a failing job produces the same record
  at any worker count.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Reserved result key carrying picklable span records out of a worker.
#: Popped by the substrate before the consumer's merge callback runs:
#: span capture never changes checkpoint or artifact bytes.
SPANS_KEY = "_spans"


@dataclass(frozen=True)
class JobSpec:
    """One unit of fan-out work.

    ``fn`` must be a module-level callable (spawn-picklable) taking the
    ``payload`` dict and returning a dict of plain data.  ``requires``
    names auxiliary jobs (keys into the runner's ``aux`` table) whose
    results this job's merge will consume — the parallel driver submits
    them eagerly, the serial driver resolves them lazily on first use.

    A spec with ``failure`` set never executes: the parent already
    resolved it to an error (e.g. an unknown scheme name, which only the
    parent's registry can report deterministically), and the runner
    merges that failure at the spec's submission-order position so the
    resulting table is identical at any worker count.
    """

    key: Any
    fn: Optional[Callable[[Dict[str, object]], Dict[str, object]]] = None
    payload: Optional[Dict[str, object]] = None
    requires: Tuple[Any, ...] = ()
    failure: Optional[BaseException] = None


@dataclass
class JobResult:
    """The merged outcome of one job, spans already split off."""

    key: Any
    ok: bool
    #: The job function's return dict (minus :data:`SPANS_KEY`).
    value: Optional[Dict[str, object]] = None
    #: Span records shipped under :data:`SPANS_KEY`, if any.
    spans: Optional[List] = None
    error_type: Optional[str] = None
    error: Optional[str] = None
    #: The original exception, when available (in-process always;
    #: cross-process only when it pickles).  Consumers re-raise it in
    #: strict modes.
    exception: Optional[BaseException] = None


def run_job(spec: JobSpec, _local: bool = False) -> Dict[str, object]:
    """Execute one job and capture its outcome as plain data.

    The single execution shim for both drivers: workers run it via
    ``pool.submit(run_job, spec)``, the serial driver calls it inline
    with ``_local=True`` (which keeps the original exception object even
    when it would not survive pickling).  Success wraps the function's
    return dict as ``{"ok": True, "value": ...}``; an exception becomes
    ``{"ok": False, "error_type": ..., "error": ...}`` with the same
    strings either side of the process boundary.
    """
    try:
        value = spec.fn(spec.payload)
    except (KeyboardInterrupt, SystemExit):  # pragma: no cover
        raise
    except Exception as exc:
        out: Dict[str, object] = {
            "ok": False,
            "error_type": type(exc).__name__,
            "error": str(exc),
        }
        if _local:
            out["exception"] = exc
        else:
            try:  # ship the original exception when it pickles
                pickle.dumps(exc)
                out["exception"] = exc
            except Exception:  # pragma: no cover - exotic exceptions
                pass
        return out
    return {"ok": True, "value": value}


def result_from_wire(key: Any, raw: Dict[str, object]) -> JobResult:
    """Fold a :func:`run_job` dict into a :class:`JobResult`,
    splitting the :data:`SPANS_KEY` side channel off the value."""
    if raw.get("ok"):
        value = raw.get("value")
        spans = None
        if isinstance(value, dict):
            spans = value.pop(SPANS_KEY, None)
        return JobResult(key=key, ok=True, value=value, spans=spans)
    exc = raw.get("exception")
    return JobResult(
        key=key, ok=False,
        error_type=str(raw.get("error_type")),
        error=str(raw.get("error")),
        exception=exc if isinstance(exc, BaseException) else None,
    )


def failure_result(
    key: Any, error_type: str, error: str,
    exception: Optional[BaseException] = None,
) -> JobResult:
    """A failed :class:`JobResult` built parent-side (pre-resolved
    failures, broken pools, hard worker deaths)."""
    return JobResult(
        key=key, ok=False, error_type=error_type, error=error,
        exception=exception,
    )


__all__ = [
    "SPANS_KEY",
    "JobResult",
    "JobSpec",
    "failure_result",
    "result_from_wire",
    "run_job",
]
