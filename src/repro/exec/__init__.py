"""The deterministic execution substrate.

One fan-out / checkpoint / merge recipe under every long-running batch
in the repository — parallel sweep grids (:class:`~repro.sim.sweep.Sweep`),
certification batches (:class:`~repro.certify.harness.CertificationRun`),
and the benchmark suite (:mod:`repro.bench`).  The scheduler
side-channel literature is blunt about why this layer exists: the
experiment harness — trial fan-out, pairing, aggregation — is where
subtle nondeterminism corrupts leakage estimates, so the repository has
exactly one such harness and proves its properties once.

Four layers, one contract:

* :mod:`repro.exec.pool` — spawn-context process-pool lifecycle with
  parent import paths mirrored into workers, and shared ``workers``
  validation;
* :mod:`repro.exec.jobs` — picklable :class:`JobSpec`/:class:`JobResult`
  with a reserved :data:`SPANS_KEY` side channel for shipped span
  records and uniform in-process/cross-process failure capture;
* :mod:`repro.exec.checkpoint` — schema-versioned atomic JSON
  checkpoints (``os.replace`` semantics, keyed batches, an explicit
  corrupt-vs-incompatible distinction raising
  :class:`~repro.errors.ExecError` for unparseable files);
* :mod:`repro.exec.runner` — serial and parallel drivers with
  submission-order merging, per-job failure isolation, wall-clock
  budgets, span adoption, and an optional duck-typed ``store=`` hook
  (``lookup``/``record``) through which :mod:`repro.store` substitutes
  cached results without perturbing merge order.

The contract: a ``workers=N`` batch produces byte-identical
checkpoints, artifacts, and (``wall_*``-scrubbed) span traces to a
serial run, and a killed batch resumes from its checkpoint to the same
bytes an uninterrupted run writes.

Layering: this package imports nothing from :mod:`repro.sim`,
:mod:`repro.certify`, :mod:`repro.bench`, or :mod:`repro.store` —
consumers (and the result store) adapt *onto* the substrate, never the
other way around (CI greps the DAG).
"""

from .checkpoint import CheckpointStore
from .jobs import (
    SPANS_KEY,
    JobResult,
    JobSpec,
    failure_result,
    result_from_wire,
    run_job,
)
from .pool import validate_workers, worker_pool
from .runner import adopt_spans, run_jobs

__all__ = [
    "SPANS_KEY",
    "CheckpointStore",
    "JobResult",
    "JobSpec",
    "adopt_spans",
    "failure_result",
    "result_from_wire",
    "run_job",
    "run_jobs",
    "validate_workers",
    "worker_pool",
]
