"""Schema-versioned atomic JSON checkpointing for long batches.

One checkpoint recipe shared by sweeps, certification batches, and the
benchmark suite:

* **atomic writes** — each save lands in a ``tempfile.mkstemp`` file in
  the target directory and is published with ``os.replace``, so a kill
  mid-dump can never corrupt the file: readers see the previous complete
  checkpoint or the new one, nothing in between;
* **schema versioning** — every file carries a ``version`` field (first
  key, stable insertion order); a file written by an *incompatible*
  schema is silently discarded and the batch starts fresh, because an
  old file holds nothing this build can misread;
* **keyed batches** — an optional ``batch_key`` stamps the experiment's
  identity (scheme, engine, epsilon, config, ...) into the file; a
  checkpoint from a *different* experiment is likewise discarded rather
  than resumed into wrong results;
* **corrupt is not incompatible** — a file that exists but cannot be
  *parsed* (truncated write outside this store, disk corruption,
  hand-editing) raises :class:`~repro.errors.ExecError` naming the
  path.  Hours of completed work may be behind that file; silently
  re-running everything is the one repair the substrate refuses to make
  on its own.  Pass ``fresh=True`` (the CLI's ``--fresh``) to discard
  it deliberately.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Mapping, Optional

from ..errors import ExecError


class CheckpointStore:
    """Load/save one consumer's checkpoint file under the substrate's
    atomicity, versioning, and corrupt-vs-incompatible rules.

    The store adds only the envelope (``version`` first, then the
    optional batch-key field); the consumer owns every other key, so
    adopting the store changes no checkpoint bytes.
    """

    def __init__(
        self,
        path: Optional[str],
        version: int,
        batch_key: Optional[str] = None,
        batch_key_field: str = "batch_key",
        fresh: bool = False,
        tmp_prefix: str = ".exec-ckpt-",
    ) -> None:
        #: Checkpoint file path; ``None`` disables persistence (both
        #: :meth:`load` and :meth:`save` become no-ops).
        self.path = path
        #: Consumer schema version; a file with any other value is
        #: silently discarded on load.
        self.version = version
        #: Experiment identity; a file keyed differently is discarded.
        self.batch_key = batch_key
        self.batch_key_field = batch_key_field
        #: When True, :meth:`load` ignores any existing file (the CLI's
        #: ``--fresh`` escape hatch for deliberately discarding a
        #: corrupt or stale checkpoint).
        self.fresh = fresh
        self.tmp_prefix = tmp_prefix

    def load(self) -> Optional[Dict[str, object]]:
        """The checkpointed dict, or ``None`` to start fresh.

        ``None`` covers: no path configured, no file yet, ``fresh``
        requested, version mismatch, and batch-key mismatch.  A file
        that cannot be parsed raises :class:`~repro.errors.ExecError`
        naming the path — never a silent fresh start.
        """
        if self.path is None or self.fresh:
            return None
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path) as handle:
                data = json.load(handle)
        except ValueError as exc:
            raise ExecError(
                f"checkpoint {self.path!r} exists but cannot be parsed "
                f"({exc}); it may be truncated or corrupt — inspect it, "
                f"or pass --fresh (fresh=True) to discard it and start "
                f"over"
            ) from exc
        except OSError as exc:
            raise ExecError(
                f"checkpoint {self.path!r} cannot be read: {exc}"
            ) from exc
        if not isinstance(data, dict):
            return None  # incompatible shape: start fresh
        if data.get("version") != self.version:
            return None  # incompatible schema: start fresh
        if self.batch_key is not None and (
            data.get(self.batch_key_field) != self.batch_key
        ):
            return None  # different experiment: start fresh
        return data

    def save(self, body: Mapping[str, object]) -> None:
        """Atomically write ``body`` under the version/batch-key
        envelope (a kill mid-dump never corrupts the file)."""
        if self.path is None:
            return
        data: Dict[str, object] = {"version": self.version}
        if self.batch_key is not None:
            data[self.batch_key_field] = self.batch_key
        data.update(body)
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=self.tmp_prefix
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(data, handle, indent=1)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:  # pragma: no cover - already replaced
                pass
            raise


__all__ = ["CheckpointStore"]
