"""Worker-pool lifecycle for the execution substrate.

One process-pool recipe for every simulation fan-out in the repository
(parallel sweep grids, certification batches, the benchmark suite):

* **spawn start method** — fork would duplicate parent state (schedule
  template caches, telemetry registries, open sinks) into workers and
  make results depend on *when* the pool was created; spawn re-executes
  the interpreter so every worker starts from the same blank slate.
* **import-path mirroring** — spawn loses ``sys.path`` edits the parent
  made (pytest rootdir insertion, scripts prepending ``src``), so the
  initializer replays them; without this the repro package — or a
  test-local controller module a custom
  :class:`~repro.schemes.SchemeSpec` points at — would not import in
  workers.
* **hard-death isolation** — a worker dying without an exception
  (``os._exit``, segfault, OOM-kill) breaks the pool; the runner
  (:mod:`repro.exec.runner`) converts the resulting
  ``BrokenProcessPool`` into per-job failures instead of aborting the
  batch, so completed work stays checkpointed.
"""

from __future__ import annotations

import sys
from typing import List

from ..errors import ConfigError


def validate_workers(workers: int) -> int:
    """Validate a worker count, returning it unchanged.

    Raises :class:`~repro.errors.ConfigError` for anything that is not
    an integer >= 1 — shared by every consumer so ``workers=0`` fails
    the same way on a sweep, a certification batch, and a bench run.
    """
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigError(
            f"workers must be an integer >= 1, got {workers!r}"
        )
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    return workers


def worker_pool(workers: int):
    """A spawn-context :class:`~concurrent.futures.ProcessPoolExecutor`
    with the parent's import paths mirrored into every worker.

    The one process-pool recipe the repository uses for simulation
    fan-out, so worker bootstrap fixes (path mirroring, spawn start
    method) land in one place.
    """
    import concurrent.futures as cf
    import multiprocessing

    validate_workers(workers)
    ctx = multiprocessing.get_context("spawn")
    return cf.ProcessPoolExecutor(
        max_workers=workers, mp_context=ctx,
        initializer=_worker_init, initargs=(list(sys.path),),
    )


def _worker_init(parent_sys_path: List[str]) -> None:
    """Mirror the parent's import paths in a spawn-started worker."""
    for entry in reversed(parent_sys_path):
        if entry not in sys.path:
            sys.path.insert(0, entry)


__all__ = ["validate_workers", "worker_pool"]
