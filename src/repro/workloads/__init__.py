"""Synthetic workloads standing in for the paper's SPEC2k6/NPB suite."""

from .synthetic import (
    LINES_PER_ROW,
    WorkloadSpec,
    generate_trace,
    idle_spec,
    intense_spec,
)
from .spec import (
    EVALUATION_SUITE,
    MIXES,
    NPB,
    SPEC2K6,
    mix,
    rate_mode,
    suite_specs,
    workload,
)
from .trace_io import (
    TraceFormatError,
    dump_trace,
    load_trace,
    round_trip_equal,
)
from .characterize import TraceProfile, calibration_error, characterize

__all__ = [
    "LINES_PER_ROW", "WorkloadSpec", "generate_trace",
    "idle_spec", "intense_spec",
    "EVALUATION_SUITE", "MIXES", "NPB", "SPEC2K6",
    "mix", "rate_mode", "suite_specs", "workload",
    "TraceFormatError", "dump_trace", "load_trace", "round_trip_equal",
    "TraceProfile", "calibration_error", "characterize",
]
