"""SPEC2k6 / NPB benchmark stand-ins (Section 6 workloads).

Feature values are calibrated to published post-L2 characterizations of
the SPEC CPU2006 memory behaviour (MPKI, read share, row-buffer locality,
access irregularity).  The qualitative contrasts the paper leans on are
preserved:

* **libquantum** — extremely memory-intensive streaming: almost no dummy
  operations under FS (2.3% in the paper).
* **xalancbmk** — cache-friendly: FS slots are mostly dummies (87%).
* **mcf** — huge MPKI with dependent pointer chasing (the Figure 4
  attacker).
* **lbm** — streaming with a heavy write share.
"""

from __future__ import annotations

from typing import Dict, List

from .synthetic import WorkloadSpec

#: One spec per benchmark used in the paper's figures.
SPEC2K6: Dict[str, WorkloadSpec] = {
    "libquantum": WorkloadSpec(
        name="libquantum", mpki=32.0, read_fraction=0.75,
        row_locality=0.92, working_set_lines=1 << 19,
        dependency_fraction=0.0, burstiness=0.1, burst_length=6.0, streams=4,
    ),
    "milc": WorkloadSpec(
        name="milc", mpki=16.0, read_fraction=0.72,
        row_locality=0.65, working_set_lines=1 << 20,
        dependency_fraction=0.05, burstiness=0.4, burst_length=4.0, streams=8,
    ),
    "mcf": WorkloadSpec(
        name="mcf", mpki=45.0, read_fraction=0.80,
        row_locality=0.15, working_set_lines=1 << 21,
        dependency_fraction=0.55, burstiness=0.6, burst_length=2.0, streams=2,
    ),
    "GemsFDTD": WorkloadSpec(
        name="GemsFDTD", mpki=12.0, read_fraction=0.70,
        row_locality=0.70, working_set_lines=1 << 20,
        dependency_fraction=0.05, burstiness=0.3, burst_length=4.0, streams=10,
    ),
    "astar": WorkloadSpec(
        name="astar", mpki=3.0, read_fraction=0.78,
        row_locality=0.30, working_set_lines=1 << 18,
        dependency_fraction=0.45, burstiness=0.5, burst_length=1.5, streams=2,
    ),
    "zeusmp": WorkloadSpec(
        name="zeusmp", mpki=6.0, read_fraction=0.70,
        row_locality=0.60, working_set_lines=1 << 19,
        dependency_fraction=0.05, burstiness=0.4, burst_length=3.5, streams=8,
    ),
    "xalancbmk": WorkloadSpec(
        name="xalancbmk", mpki=0.6, read_fraction=0.85,
        row_locality=0.45, working_set_lines=1 << 17,
        dependency_fraction=0.30, burstiness=0.6, burst_length=1.5, streams=2,
    ),
    "lbm": WorkloadSpec(
        name="lbm", mpki=22.0, read_fraction=0.55,
        row_locality=0.85, working_set_lines=1 << 20,
        dependency_fraction=0.0, burstiness=0.2, burst_length=6.0, streams=12,
    ),
    # Benchmarks appearing only inside the mixes.
    "soplex": WorkloadSpec(
        name="soplex", mpki=25.0, read_fraction=0.82,
        row_locality=0.55, working_set_lines=1 << 20,
        dependency_fraction=0.15, burstiness=0.4, burst_length=4.0, streams=6,
    ),
    "omnetpp": WorkloadSpec(
        name="omnetpp", mpki=8.0, read_fraction=0.80,
        row_locality=0.25, working_set_lines=1 << 19,
        dependency_fraction=0.45, burstiness=0.5, burst_length=2.0, streams=2,
    ),
}

#: NPB workloads (Section 6): CG is irregular sparse algebra, SP is a
#: structured solver.
NPB: Dict[str, WorkloadSpec] = {
    "CG": WorkloadSpec(
        name="CG", mpki=14.0, read_fraction=0.80,
        row_locality=0.35, working_set_lines=1 << 20,
        dependency_fraction=0.25, burstiness=0.4, burst_length=3.0, streams=6,
    ),
    "SP": WorkloadSpec(
        name="SP", mpki=10.0, read_fraction=0.68,
        row_locality=0.75, working_set_lines=1 << 20,
        dependency_fraction=0.05, burstiness=0.3, burst_length=4.0, streams=8,
    ),
}


def rate_mode(name: str, copies: int = 8) -> List[WorkloadSpec]:
    """``copies`` instances of one benchmark (the paper's rate mode)."""
    spec = workload(name)
    return [spec] * copies


def mix(names: List[str]) -> List[WorkloadSpec]:
    """A multiprogrammed mix, one spec per hardware thread."""
    return [workload(n) for n in names]


#: The two heterogeneous mixes from Section 6.
MIXES: Dict[str, List[str]] = {
    "mix1": ["xalancbmk", "xalancbmk", "soplex", "soplex",
             "mcf", "mcf", "omnetpp", "omnetpp"],
    "mix2": ["milc", "milc", "lbm", "lbm",
             "xalancbmk", "xalancbmk", "zeusmp", "zeusmp"],
}

#: Workload suite used for the performance/energy figures, in the order
#: the paper's X axes list them.
EVALUATION_SUITE: List[str] = [
    "mix1", "mix2", "CG", "SP", "astar", "lbm", "libquantum", "mcf",
    "milc", "zeusmp", "GemsFDTD", "xalancbmk",
]


def workload(name: str) -> WorkloadSpec:
    """Look up a benchmark spec by name."""
    if name in SPEC2K6:
        return SPEC2K6[name]
    if name in NPB:
        return NPB[name]
    raise KeyError(
        f"unknown workload {name!r}; known: "
        f"{sorted(SPEC2K6) + sorted(NPB)}"
    )


def suite_specs(entry: str, threads: int = 8) -> List[WorkloadSpec]:
    """Expand a suite entry (benchmark name or mix name) to per-thread
    specs for ``threads`` hardware threads."""
    if entry in MIXES:
        names = MIXES[entry]
        if threads != len(names):
            # Repeat / truncate the mix pattern for other thread counts.
            names = [names[i % len(names)] for i in range(threads)]
        return mix(names)
    return rate_mode(entry, threads)
