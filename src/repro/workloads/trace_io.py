"""Trace file I/O (USIMM-compatible text format).

Lets users bring real post-LLC traces instead of the synthetic
generators.  The format is one record per line::

    <gap> <R|W> <hex line address> [D]

``gap`` is the number of non-memory instructions preceding the access,
``R``/``W`` the direction, and the optional ``D`` marks a load that
depends on the previous read (pointer chasing).  Lines starting with
``#`` and blank lines are ignored.
"""

from __future__ import annotations

import io
import re
from typing import Iterable, Iterator, List, TextIO, Union

from ..dram.commands import OpType
from ..errors import TraceError
from ..cpu.trace import Trace, TraceRecord

#: A line address: hex digits, with or without a ``0x`` prefix.  Bare
#: digit runs (``1234``) are *hex* too — the USIMM format is hex-only,
#: so ``10`` means sixteen.  Anything else (``0o17``, ``12g4``, ``1_0``)
#: is rejected rather than silently misparsed.
_ADDRESS_RE = re.compile(r"(?:0[xX])?[0-9a-fA-F]+\Z")


class TraceFormatError(TraceError):
    """Raised when a trace file line cannot be parsed.

    Carries both the 1-based :attr:`line_number` and the bare
    :attr:`reason` (without line context) so tools can aggregate
    failure modes across files.
    """

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        super().__init__(
            f"line {line_number}: {reason}: {line.strip()!r}"
        )
        self.line_number = line_number
        self.reason = reason


def dump_trace(trace: Trace, target: Union[str, TextIO]) -> None:
    """Write a trace in the text format."""
    if isinstance(target, str):
        with open(target, "w") as handle:
            dump_trace(trace, handle)
        return
    target.write(f"# trace: {trace.name}\n")
    target.write(f"# accesses: {len(trace)}  mpki: {trace.mpki:.2f}\n")
    for record in trace:
        op = "R" if record.op is OpType.READ else "W"
        dep = " D" if record.depends_on_prev else ""
        target.write(f"{record.gap} {op} 0x{record.line:x}{dep}\n")


def load_trace(
    source: Union[str, TextIO], name: str = None
) -> Trace:
    """Read a trace in the text format."""
    if isinstance(source, str):
        with open(source) as handle:
            return load_trace(handle, name or source)
    records: List[TraceRecord] = []
    for number, line in enumerate(source, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) not in (3, 4):
            raise TraceFormatError(number, line, "expected 3 or 4 fields")
        try:
            gap = int(parts[0])
        except ValueError:
            raise TraceFormatError(number, line, "bad gap") from None
        if gap < 0:
            raise TraceFormatError(
                number, line, f"gap must be non-negative, got {gap}"
            )
        if parts[1] not in ("R", "W"):
            raise TraceFormatError(number, line, "direction must be R or W")
        if _ADDRESS_RE.match(parts[2]) is None:
            raise TraceFormatError(
                number, line,
                "address must be hex digits with optional 0x prefix",
            )
        addr = int(parts[2], 16)
        depends = False
        if len(parts) == 4:
            if parts[3] != "D":
                raise TraceFormatError(
                    number, line, "fourth field must be 'D'"
                )
            depends = True
        try:
            records.append(TraceRecord(
                gap=gap,
                op=OpType.READ if parts[1] == "R" else OpType.WRITE,
                line=addr,
                depends_on_prev=depends,
            ))
        except ValueError as exc:
            raise TraceFormatError(number, line, str(exc)) from None
    return Trace(records, name=name or "loaded")


def round_trip_equal(a: Trace, b: Trace) -> bool:
    """True when two traces carry identical records."""
    if len(a) != len(b):
        return False
    return all(
        (x.gap, x.op, x.line, x.depends_on_prev)
        == (y.gap, y.op, y.line, y.depends_on_prev)
        for x, y in zip(a, b)
    )
