"""Parametric synthetic workload generation.

The paper drives its evaluation with SPEC2k6 / NPB checkpoints; offline we
synthesize post-LLC traces whose *memory-visible* features match published
characterizations of those programs: intensity (MPKI), read/write mix,
row-buffer locality, working-set size, access regularity (streaming vs
pointer-chasing) and load-dependence (MLP).  Those are the only features
any of the schedulers in this repository react to.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from ..dram.commands import OpType
from ..cpu.trace import Trace, TraceRecord

#: Cache lines per DRAM row in the default geometry (8 KB rows, 64 B lines).
LINES_PER_ROW = 128


@dataclass(frozen=True)
class WorkloadSpec:
    """The tunable features of one synthetic benchmark."""

    name: str
    #: Post-LLC memory accesses per kilo-instruction.
    mpki: float
    #: Fraction of accesses that are reads.
    read_fraction: float = 0.7
    #: Probability that an access stays in the current DRAM row
    #: (sequential next line) rather than jumping to a random line.
    row_locality: float = 0.5
    #: Working set in cache lines.
    working_set_lines: int = 1 << 20
    #: Probability that a read depends on the previous read (limits MLP —
    #: pointer chasing).
    dependency_fraction: float = 0.0
    #: Dispersion of the inter-burst instruction gaps: 0 = regular,
    #: 1 = memoryless.
    burstiness: float = 0.5
    #: Mean memory accesses per burst.  Real programs cluster their
    #: misses (several array streams touched per loop iteration), which
    #: is what lets an out-of-order core expose memory-level parallelism
    #: from a finite reorder buffer.
    burst_length: float = 3.0
    #: Non-memory instructions between accesses inside a burst.
    intra_burst_gap: int = 2
    #: Concurrent sequential streams (distinct arrays touched per loop
    #: iteration); accesses rotate among them, so even a streaming
    #: workload spreads across banks.
    streams: int = 4

    def __post_init__(self) -> None:
        if self.mpki <= 0:
            raise ValueError("mpki must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.row_locality <= 1.0:
            raise ValueError("row_locality must be in [0, 1]")
        if not 0.0 <= self.dependency_fraction <= 1.0:
            raise ValueError("dependency_fraction must be in [0, 1]")
        if self.working_set_lines < LINES_PER_ROW:
            raise ValueError("working set must cover at least one row")
        if self.burst_length < 1.0:
            raise ValueError("burst_length must be >= 1")
        if self.intra_burst_gap < 0:
            raise ValueError("intra_burst_gap must be non-negative")
        if self.streams < 1:
            raise ValueError("streams must be >= 1")

    @property
    def mean_gap(self) -> float:
        """Mean non-memory instructions between accesses."""
        return max(0.0, 1000.0 / self.mpki - 1.0)


def generate_trace(
    spec: WorkloadSpec,
    accesses: int,
    seed: int = 0,
) -> Trace:
    """Materialize ``accesses`` memory operations for ``spec``.

    Deterministic for a given (spec, accesses, seed) — including across
    process restarts: the per-workload stream offset is derived from a
    CRC of the name, not ``hash()``, which is randomized per process
    (``PYTHONHASHSEED``) and would make golden-trace fixtures
    unreproducible.
    """
    if accesses < 1:
        raise ValueError("need at least one access")
    name_tag = zlib.crc32(spec.name.encode("utf-8")) & 0xFFFF
    rng = random.Random(name_tag * 1_000_003 + seed)
    records: List[TraceRecord] = []
    cursors = [
        rng.randrange(spec.working_set_lines) for _ in range(spec.streams)
    ]
    # Accesses arrive in bursts of ~burst_length with a short gap inside
    # the burst; the inter-burst gap absorbs the rest of the instruction
    # budget so overall MPKI matches the spec.
    per_access_budget = 1000.0 / spec.mpki
    inter_burst_mean = max(
        0.0,
        spec.burst_length * per_access_budget
        - (spec.burst_length - 1) * (spec.intra_burst_gap + 1)
        - 1,
    )
    remaining_in_burst = 0
    for _ in range(accesses):
        if remaining_in_burst <= 0:
            remaining_in_burst = _draw_burst_length(
                rng, spec.burst_length
            )
            gap = _draw_gap(rng, inter_burst_mean, spec.burstiness)
        else:
            gap = spec.intra_burst_gap
        remaining_in_burst -= 1
        is_read = rng.random() < spec.read_fraction
        stream = rng.randrange(spec.streams)
        if rng.random() < spec.row_locality:
            # Next line of this stream's row (wrap at the row edge).
            line = cursors[stream]
            if (line + 1) % LINES_PER_ROW == 0:
                line = line + 1 - LINES_PER_ROW
            else:
                line = line + 1
        else:
            line = rng.randrange(spec.working_set_lines)
        cursors[stream] = line
        depends = (
            is_read and rng.random() < spec.dependency_fraction
        )
        records.append(TraceRecord(
            gap=gap,
            op=OpType.READ if is_read else OpType.WRITE,
            line=line,
            depends_on_prev=depends,
        ))
    return Trace(records, name=spec.name)


def _draw_burst_length(rng: random.Random, mean: float) -> int:
    """Draw a burst length with the requested mean (>= 1)."""
    if mean <= 1.0:
        return 1
    return 1 + int(round(rng.expovariate(1.0 / (mean - 1.0))))


def _draw_gap(rng: random.Random, mean: float, burstiness: float) -> int:
    """Draw an instruction gap with the requested dispersion."""
    if mean <= 0:
        return 0
    if burstiness <= 0:
        return int(round(mean))
    # Mix of a regular component and a geometric (memoryless) component.
    geometric = rng.expovariate(1.0 / mean) if mean > 0 else 0.0
    value = (1.0 - burstiness) * mean + burstiness * geometric
    return max(0, int(round(value)))


def idle_spec(name: str = "idle") -> WorkloadSpec:
    """A synthetic thread that makes (almost) no memory accesses —
    the Figure 4 'non-memory-intensive' co-runner."""
    return WorkloadSpec(
        name=name, mpki=0.05, read_fraction=1.0, row_locality=0.9,
        working_set_lines=LINES_PER_ROW * 16,
    )


def intense_spec(name: str = "intense") -> WorkloadSpec:
    """A maximally memory-intensive synthetic thread — the Figure 4
    'memory-intensive' co-runner."""
    return WorkloadSpec(
        name=name, mpki=80.0, read_fraction=0.7, row_locality=0.1,
        working_set_lines=1 << 20,
    )
