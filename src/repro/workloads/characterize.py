"""Trace characterization: measure what the generators promised.

Computes the memory-visible features of a trace — the same features the
synthetic generators are parameterized on — so calibration is checkable:
``characterize(generate_trace(spec, n))`` should come back close to
``spec``.  Also useful for characterizing imported real traces before
running them.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..cpu.trace import Trace
from ..dram.commands import OpType
from .synthetic import LINES_PER_ROW


@dataclass(frozen=True)
class TraceProfile:
    """Measured memory-visible features of a trace."""

    name: str
    accesses: int
    mpki: float
    read_fraction: float
    #: Fraction of accesses whose row was touched within the last
    #: ``window`` accesses (streams interleave, so locality is windowed).
    row_reuse: float
    #: Distinct cache lines touched.
    footprint_lines: int
    #: Distinct DRAM rows touched.
    footprint_rows: int
    #: Fraction of reads marked dependent on the previous read.
    dependent_fraction: float
    #: Mean instruction gap between accesses.
    mean_gap: float

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return (
            f"{self.name}: {self.accesses} accesses, "
            f"mpki {self.mpki:.1f}, reads {self.read_fraction:.0%}, "
            f"row reuse {self.row_reuse:.0%}, "
            f"footprint {self.footprint_lines} lines / "
            f"{self.footprint_rows} rows, "
            f"dependent {self.dependent_fraction:.0%}"
        )


def characterize(trace: Trace, reuse_window: int = 16) -> TraceProfile:
    """Measure a trace's features."""
    if len(trace) == 0:
        raise ValueError("cannot characterize an empty trace")
    if reuse_window < 1:
        raise ValueError("reuse window must be positive")
    reads = 0
    dependent = 0
    reused = 0
    lines = set()
    rows = set()
    gaps = 0
    recent: Deque[int] = deque(maxlen=reuse_window)
    for record in trace:
        row = record.line // LINES_PER_ROW
        if row in recent:
            reused += 1
        recent.append(row)
        lines.add(record.line)
        rows.add(row)
        gaps += record.gap
        if record.op is OpType.READ:
            reads += 1
            if record.depends_on_prev:
                dependent += 1
    n = len(trace)
    return TraceProfile(
        name=trace.name,
        accesses=n,
        mpki=trace.mpki,
        read_fraction=reads / n,
        row_reuse=reused / n,
        footprint_lines=len(lines),
        footprint_rows=len(rows),
        dependent_fraction=dependent / reads if reads else 0.0,
        mean_gap=gaps / n,
    )


def calibration_error(profile: TraceProfile, spec) -> float:
    """Worst relative error of the measurable spec features.

    Compares MPKI and read fraction (the two features with exact spec
    targets); used by the calibration tests.
    """
    mpki_err = abs(profile.mpki - spec.mpki) / spec.mpki
    read_err = abs(profile.read_fraction - spec.read_fraction) / max(
        spec.read_fraction, 1e-9
    )
    return max(mpki_err, read_err)
