"""High-level experiment runner: build and run named scheme comparisons.

The scheme names match the paper's figures:

=================  ====================================================
name               design point
=================  ====================================================
``baseline``       non-secure FR-FCFS with write drain (open page)
``fcfs``           strict FCFS, closed page (reference only)
``tp_bp``          Temporal Partitioning, bank-partitioned
``tp_np``          Temporal Partitioning, no spatial partitioning
``fs_rp``          Fixed Service, rank partitioning (periodic data, l=7)
``fs_bp``          Fixed Service, bank partitioning (periodic RAS, l=15)
``fs_reordered_bp``Fixed Service, reordered bank partitioning (Q=63)
``fs_np``          Fixed Service, no partitioning (l=43)
``fs_np_ta``       Fixed Service, triple alternation (15-cycle slots)
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..controllers.base import MemoryController
from ..controllers.fcfs import FcfsController
from ..controllers.frfcfs import FrFcfsController
from ..controllers.tp import TemporalPartitioningController, \
    default_dead_time, default_turn_length, min_turn_length
from ..core.energy_opts import FsEnergyOptions
from ..core.fs_controller import FixedServiceController
from ..core.fs_reordered import ReorderedBpController
from ..core.pipeline_solver import SharingLevel
from ..core.schedule import build_fs_schedule, \
    build_triple_alternation_schedule
from ..core.online_monitor import OnlineInvariantMonitor
from ..cpu.core_model import Core
from ..dram.system import DramSystem
from ..faults import FaultInjector, FaultPlan
from ..mapping.partition import (
    BankPartition,
    NoPartition,
    PartitionPolicy,
    RankPartition,
)
from ..prefetch.sandbox import SandboxPrefetcher
from ..workloads.synthetic import WorkloadSpec, generate_trace
from .config import SystemConfig
from .system import RunResult, System

SCHEMES = (
    "baseline", "fcfs", "channel_part", "tp_bp", "tp_np",
    "fs_rp", "fs_rp_mc", "fs_bp", "fs_reordered_bp", "fs_np",
    "fs_np_ta",
)

#: Simulation engines: the cycle-stepping reference and the
#: cycle-skipping fast path (:mod:`repro.sim.fastpath`), which is
#: differentially tested to be observationally identical.
ENGINES = ("reference", "fast")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; known: {ENGINES}"
        )


@dataclass
class SchemeOptions:
    """Per-scheme knobs used by the sensitivity benchmarks."""

    turn_length: Optional[int] = None          # TP
    energy: FsEnergyOptions = field(default_factory=FsEnergyOptions)
    prefetch: bool = False                     # FS_RP / baseline
    slots_per_domain: int = 1                  # FS "improving bandwidth"
    #: Model DRAM refresh (baseline: demand-based; FS_RP: deterministic
    #: clock-driven blackouts).  Off by default, like the paper's
    #: pipeline analysis.
    refresh: bool = False
    #: Address-mapping field order for schemes without spatial
    #: partitioning (the abstract's "various page mapping policies can
    #: impact the throughput of our secure memory system").  None keeps
    #: the open-page row-major default; e.g.
    #: ``("row", "column", "rank", "channel", "bank")`` interleaves
    #: consecutive lines across banks, which markedly helps triple
    #: alternation's bank-class coverage.
    address_order: Optional[tuple] = None
    log_commands: bool = False
    #: Seed-deterministic fault campaign (see :mod:`repro.faults`).  An
    #: immutable plan, instantiated afresh for every run so one run's
    #: fault schedule can never bleed into the next.  Slot-level faults
    #: apply to the FS controllers; ``corrupt_trace`` applies to every
    #: scheme's workload generation.
    faults: Optional[FaultPlan] = None
    #: Attach an :class:`~repro.core.online_monitor
    #: .OnlineInvariantMonitor` watchdog to the controller.
    monitor: bool = False
    #: Make the watchdog raise :class:`~repro.errors
    #: .ScheduleViolationError` the cycle an invariant breaks (instead
    #: of accumulating violations for post-run inspection).
    monitor_strict: bool = False
    #: Optional :class:`~repro.telemetry.session.TelemetrySession`.
    #: When set, the controller (and its fault injector / monitor)
    #: streams every service event, DRAM command, fault, and violation
    #: into it, and :func:`run_scheme` harvests the finished run's stats
    #: into the same registry.  ``None`` (the default) keeps every hot
    #: path on the single ``is None`` fast check.
    telemetry: object = None


def _channel_part_geometry(config: SystemConfig):
    """One private channel per domain (Section 4.1, <= 4 threads).

    The configured geometry is widened to ``num_cores`` channels while
    keeping per-channel resources, so each domain owns a whole channel.
    """
    from ..mapping.address import Geometry

    g = config.geometry
    return Geometry(
        channels=max(g.channels, config.num_cores),
        ranks=g.ranks, banks=g.banks, rows=g.rows, columns=g.columns,
    )


def _refresh_for(config: SystemConfig, options: "SchemeOptions"):
    """A refresh timetable when the options ask for one."""
    if not options.refresh:
        return None
    from ..dram.refresh import RefreshScheduler

    return RefreshScheduler(config.timing, config.geometry.ranks)


def partition_for(
    scheme: str,
    config: SystemConfig,
    options: Optional["SchemeOptions"] = None,
) -> PartitionPolicy:
    """The partition level each scheme assumes."""
    if scheme == "channel_part":
        from ..mapping.partition import ChannelPartition

        return ChannelPartition(
            _channel_part_geometry(config), config.num_cores
        )
    if scheme in ("fs_rp", "fs_rp_mc"):
        return RankPartition(config.geometry, config.num_cores)
    if scheme in ("fs_bp", "fs_reordered_bp", "tp_bp"):
        return BankPartition(config.geometry, config.num_cores)
    mapper = None
    if options is not None and options.address_order is not None:
        from ..mapping.address import AddressMapper

        mapper = AddressMapper(config.geometry, options.address_order)
    return NoPartition(config.geometry, config.num_cores, mapper=mapper)


def _attach_runtime_verification(
    controller: MemoryController,
    config: SystemConfig,
    options: SchemeOptions,
) -> None:
    """Hook up the online watchdog when the options ask for one."""
    if not options.monitor:
        return
    schedule = getattr(controller, "schedule", None)
    controller.attach_monitor(OnlineInvariantMonitor(
        config.timing,
        schedule=schedule,
        strict=options.monitor_strict,
    ))


def build_controller(
    scheme: str,
    config: SystemConfig,
    partition: PartitionPolicy,
    options: SchemeOptions,
    fault_injector: Optional[FaultInjector] = None,
    engine: str = "reference",
) -> MemoryController:
    """Instantiate the memory controller for a scheme name.

    ``engine="fast"`` selects the cycle-skipping controller variants
    from :mod:`repro.sim.fastpath` (bit-identical observables, see
    ``tests/test_differential.py``); the default stays the reference.
    """
    _check_engine(engine)
    fast = engine == "fast"
    if fast:
        from . import fastpath

    config.validate_for_scheme(scheme)
    if fault_injector is None and options.faults is not None and (
        not options.faults.empty
    ):
        fault_injector = options.faults.injector()
    dram = DramSystem(
        config.timing,
        num_channels=config.geometry.channels,
        ranks_per_channel=config.geometry.ranks,
        banks_per_rank=config.geometry.banks,
    )
    n = config.num_cores
    if scheme == "channel_part":
        # Private channels: a normal high-performance scheduler is
        # secure because nothing is shared (Section 4.1).
        geometry = _channel_part_geometry(config)
        dram = DramSystem(
            config.timing,
            num_channels=geometry.channels,
            ranks_per_channel=geometry.ranks,
            banks_per_rank=geometry.banks,
        )
        cls = fastpath.FastFrFcfsController if fast else FrFcfsController
        return cls(dram, n, log_commands=options.log_commands)
    if scheme == "baseline":
        cls = fastpath.FastFrFcfsController if fast else FrFcfsController
        return cls(
            dram, n,
            refresh=_refresh_for(config, options),
            log_commands=options.log_commands,
        )
    if scheme == "fcfs":
        # No fast controller: FCFS gains from the fast *driver* alone.
        return FcfsController(dram, n, log_commands=options.log_commands)
    if scheme in ("tp_bp", "tp_np"):
        bank_partitioned = scheme == "tp_bp"
        turn = options.turn_length or default_turn_length(
            bank_partitioned
        )
        cls = (
            fastpath.FastTpController if fast
            else TemporalPartitioningController
        )
        return cls(
            dram, n, turn_length=turn,
            bank_partitioned=bank_partitioned,
            log_commands=options.log_commands,
        )
    if scheme == "fs_rp_mc":
        from .multichannel import MultiChannelFsController

        cls = (
            fastpath.FastMultiChannelFsController if fast
            else MultiChannelFsController
        )
        return cls(
            dram, partition, n, log_commands=options.log_commands
        )
    if scheme in ("fs_rp", "fs_bp", "fs_np"):
        sharing = {
            "fs_rp": SharingLevel.RANK,
            "fs_bp": SharingLevel.BANK,
            "fs_np": SharingLevel.NONE,
        }[scheme]
        if fast:
            schedule = fastpath.cached_fs_schedule(
                config.timing, n, sharing,
                slots_per_domain=options.slots_per_domain,
            )
        else:
            schedule = build_fs_schedule(
                config.timing, n, sharing,
                slots_per_domain=options.slots_per_domain,
            )
        prefetchers = None
        if options.prefetch:
            prefetchers = {
                d: SandboxPrefetcher(seed=d) for d in range(n)
            }
        refresh = None
        if scheme == "fs_rp":
            refresh = _refresh_for(config, options)
        cls = (
            fastpath.FastFixedServiceController if fast
            else FixedServiceController
        )
        return cls(
            dram, schedule, partition,
            energy_options=options.energy,
            prefetchers=prefetchers,
            refresh=refresh,
            log_commands=options.log_commands,
            fault_injector=fault_injector,
        )
    if scheme == "fs_np_ta":
        if fast:
            schedule = fastpath.cached_triple_alternation_schedule(
                config.timing, n
            )
        else:
            schedule = build_triple_alternation_schedule(config.timing, n)
        cls = (
            fastpath.FastFixedServiceController if fast
            else FixedServiceController
        )
        return cls(
            dram, schedule, partition,
            energy_options=options.energy,
            log_commands=options.log_commands,
            fault_injector=fault_injector,
        )
    if scheme == "fs_reordered_bp":
        cls = (
            fastpath.FastReorderedBpController if fast
            else ReorderedBpController
        )
        return cls(
            dram, partition, n,
            energy_options=options.energy,
            log_commands=options.log_commands,
            fault_injector=fault_injector,
        )
    raise ValueError(f"unknown scheme {scheme!r}; known: {SCHEMES}")


def build_system(
    scheme: str,
    config: SystemConfig,
    specs: Sequence[WorkloadSpec],
    options: Optional[SchemeOptions] = None,
    engine: str = "reference",
) -> System:
    """Assemble controller + partition + cores for one run."""
    _check_engine(engine)
    if len(specs) != config.num_cores:
        raise ValueError("one workload spec per core required")
    config.validate_for_scheme(scheme)
    options = options or SchemeOptions()
    fault_injector = None
    if options.faults is not None and not options.faults.empty:
        # One fresh injector per run: the plan is immutable, the
        # injector's progress counters are not.
        fault_injector = options.faults.injector()
    partition = partition_for(scheme, config, options)
    controller = build_controller(
        scheme, config, partition, options, fault_injector, engine=engine
    )
    _attach_runtime_verification(controller, config, options)
    if options.telemetry is not None:
        # After the monitor: attach_telemetry wires into it too.
        options.telemetry.attach(controller)
    cores = []
    for d, spec in enumerate(specs):
        trace = generate_trace(
            spec, config.accesses_per_core, seed=config.seed + d
        )
        if fault_injector is not None:
            trace = fault_injector.corrupt_trace(trace, d)
        cores.append(Core(
            domain=d, trace=trace, params=config.core,
        ))
    if engine == "fast":
        from .fastpath import FastSystem

        system = FastSystem(controller, partition, cores, scheme=scheme)
    else:
        system = System(controller, partition, cores, scheme=scheme)
    system.telemetry = options.telemetry
    return system


def run_scheme(
    scheme: str,
    config: SystemConfig,
    specs: Sequence[WorkloadSpec],
    options: Optional[SchemeOptions] = None,
    max_cycles: int = 10_000_000,
    wall_budget_s: Optional[float] = None,
    engine: str = "reference",
) -> RunResult:
    """Build and run one scheme to completion.

    When the options carry a telemetry session, the finished run's
    legacy stat structs are harvested into its registry before the
    result is returned.
    """
    system = build_system(scheme, config, specs, options, engine=engine)
    result = system.run(
        max_cycles=max_cycles, wall_budget_s=wall_budget_s
    )
    if options is not None and options.telemetry is not None:
        options.telemetry.harvest(result, system.controller)
    return result
