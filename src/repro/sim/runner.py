"""High-level experiment runner: build and run named scheme comparisons.

Scheme names are looked up in the declarative registry
(:mod:`repro.schemes`); the builders interpret each
:class:`~repro.schemes.SchemeSpec` into a controller + partition, so
this module contains **no per-scheme control flow** — registering a new
spec makes it immediately runnable here, in the CLI, and in (parallel)
sweeps.

The built-in names match the paper's figures:

=================  ====================================================
name               design point
=================  ====================================================
``baseline``       non-secure FR-FCFS with write drain (open page)
``fcfs``           strict FCFS, closed page (reference only)
``channel_part``   private channel per domain (Section 4.1)
``tp_bp``          Temporal Partitioning, bank-partitioned
``tp_np``          Temporal Partitioning, no spatial partitioning
``fs_rp``          Fixed Service, rank partitioning (periodic data, l=7)
``fs_rp_mc``       Fixed Service, one controller per channel
``fs_bp``          Fixed Service, bank partitioning (periodic RAS, l=15)
``fs_reordered_bp``Fixed Service, reordered bank partitioning (Q=63)
``fs_np``          Fixed Service, no partitioning (l=43)
``fs_np_ta``       Fixed Service, triple alternation (15-cycle slots)
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..controllers.base import MemoryController
from ..core.energy_opts import FsEnergyOptions
from ..core.online_monitor import OnlineInvariantMonitor
from ..cpu.core_model import Core
from ..errors import ConfigError
from ..faults import FaultInjector, FaultPlan
from ..mapping.partition import PartitionPolicy
from ..schemes import REGISTRY, build_from_spec, build_partition
from ..workloads.synthetic import WorkloadSpec, generate_trace
from .config import SystemConfig
from .system import RunResult, System


class _SchemeNamesView(Sequence):
    """A live, ordered, tuple-like view of the registry's names.

    Backward-compatible stand-in for the old hardcoded ``SCHEMES``
    tuple: iteration, ``in``, ``len``, indexing, and ``join`` all work,
    and schemes registered at runtime appear automatically (including
    in ``argparse`` choices built from this object).
    """

    def _names(self):
        return REGISTRY.names()

    def __iter__(self):
        return iter(self._names())

    def __contains__(self, name: object) -> bool:
        return name in REGISTRY

    def __len__(self) -> int:
        return len(REGISTRY)

    def __getitem__(self, index):
        return self._names()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (tuple, list)):
            return tuple(self._names()) == tuple(other)
        return NotImplemented

    def __hash__(self):  # views are interchangeable with their tuple
        return hash(self._names())

    def __repr__(self) -> str:
        return repr(self._names())


#: Registered scheme names (live view over :data:`repro.schemes.REGISTRY`).
SCHEMES = _SchemeNamesView()

#: Simulation engines: the cycle-stepping reference and the
#: cycle-skipping fast path (:mod:`repro.sim.fastpath`), which is
#: differentially tested to be observationally identical.
ENGINES = ("reference", "fast")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r}; known: {ENGINES}"
        )


@dataclass
class SchemeOptions:
    """Per-scheme knobs used by the sensitivity benchmarks.

    Everything except :attr:`telemetry` is picklable, so an options
    block can ride along with a spec into a multiprocess sweep worker.
    """

    turn_length: Optional[int] = None          # TP
    energy: FsEnergyOptions = field(default_factory=FsEnergyOptions)
    prefetch: bool = False                     # FS_RP / baseline
    slots_per_domain: int = 1                  # FS "improving bandwidth"
    #: Model DRAM refresh (baseline: demand-based; FS_RP: deterministic
    #: clock-driven blackouts).  Off by default, like the paper's
    #: pipeline analysis.
    refresh: bool = False
    #: Address-mapping field order for schemes without spatial
    #: partitioning (the abstract's "various page mapping policies can
    #: impact the throughput of our secure memory system").  None keeps
    #: the open-page row-major default; e.g.
    #: ``("row", "column", "rank", "channel", "bank")`` interleaves
    #: consecutive lines across banks, which markedly helps triple
    #: alternation's bank-class coverage.
    address_order: Optional[tuple] = None
    log_commands: bool = False
    #: Seed-deterministic fault campaign (see :mod:`repro.faults`).  An
    #: immutable plan, instantiated afresh for every run so one run's
    #: fault schedule can never bleed into the next.  Slot-level faults
    #: apply to the FS controllers; ``corrupt_trace`` applies to every
    #: scheme's workload generation.
    faults: Optional[FaultPlan] = None
    #: Attach an :class:`~repro.core.online_monitor
    #: .OnlineInvariantMonitor` watchdog to the controller.
    monitor: bool = False
    #: Make the watchdog raise :class:`~repro.errors
    #: .ScheduleViolationError` the cycle an invariant breaks (instead
    #: of accumulating violations for post-run inspection).
    monitor_strict: bool = False
    #: Optional :class:`~repro.telemetry.session.TelemetrySession`.
    #: When set, the controller (and its fault injector / monitor)
    #: streams every service event, DRAM command, fault, and violation
    #: into it, and :func:`run_scheme` harvests the finished run's stats
    #: into the same registry.  ``None`` (the default) keeps every hot
    #: path on the single ``is None`` fast check.  Sessions are the one
    #: non-picklable knob: multiprocess sweeps manage per-worker
    #: sessions themselves.
    telemetry: object = None


def partition_for(
    scheme: str,
    config: SystemConfig,
    options: Optional["SchemeOptions"] = None,
) -> PartitionPolicy:
    """The partition level the named scheme's spec declares."""
    return build_partition(REGISTRY.get(scheme), config, options)


def _attach_runtime_verification(
    controller: MemoryController,
    config: SystemConfig,
    options: SchemeOptions,
) -> None:
    """Hook up the online watchdog when the options ask for one."""
    if not options.monitor:
        return
    schedule = getattr(controller, "schedule", None)
    controller.attach_monitor(OnlineInvariantMonitor(
        config.timing,
        schedule=schedule,
        strict=options.monitor_strict,
    ))


def build_controller(
    scheme: str,
    config: SystemConfig,
    partition: PartitionPolicy,
    options: SchemeOptions,
    fault_injector: Optional[FaultInjector] = None,
    engine: str = "reference",
) -> MemoryController:
    """Instantiate the memory controller for a scheme name.

    A thin interpreter: the registry supplies the spec, the spec's
    family supplies the construction recipe, and the spec's controller
    path supplies the class.  ``engine="fast"`` resolves the spec's
    cycle-skipping controller variant (bit-identical observables, see
    ``tests/test_differential.py``); the default stays the reference.
    Unknown scheme names raise :class:`~repro.errors.SchemeError` with
    the registered-name list.
    """
    _check_engine(engine)
    spec = REGISTRY.get(scheme)
    config.validate_for_scheme(scheme)
    if fault_injector is None and options.faults is not None and (
        not options.faults.empty
    ):
        fault_injector = options.faults.injector()
    return build_from_spec(
        spec, config, partition, options, fault_injector, engine
    )


def build_system(
    scheme: str,
    config: SystemConfig,
    specs: Sequence[WorkloadSpec],
    options: Optional[SchemeOptions] = None,
    engine: str = "reference",
) -> System:
    """Assemble controller + partition + cores for one run."""
    _check_engine(engine)
    scheme_spec = REGISTRY.get(scheme)
    if len(specs) != config.num_cores:
        raise ConfigError("one workload spec per core required")
    config.validate_for_scheme(scheme)
    options = options or SchemeOptions()
    fault_injector = None
    if options.faults is not None and not options.faults.empty:
        # One fresh injector per run: the plan is immutable, the
        # injector's progress counters are not.
        fault_injector = options.faults.injector()
    partition = build_partition(scheme_spec, config, options)
    controller = build_from_spec(
        scheme_spec, config, partition, options, fault_injector, engine
    )
    _attach_runtime_verification(controller, config, options)
    if options.telemetry is not None:
        # After the monitor: attach_telemetry wires into it too.
        options.telemetry.attach(controller)
    cores = []
    for d, spec in enumerate(specs):
        trace = generate_trace(
            spec, config.accesses_per_core, seed=config.seed + d
        )
        if fault_injector is not None:
            trace = fault_injector.corrupt_trace(trace, d)
        cores.append(Core(
            domain=d, trace=trace, params=config.core,
        ))
    if engine == "fast":
        from .fastpath import FastSystem

        system = FastSystem(controller, partition, cores, scheme=scheme)
    else:
        system = System(controller, partition, cores, scheme=scheme)
    system.telemetry = options.telemetry
    return system


def run_scheme(
    scheme: str,
    config: SystemConfig,
    specs: Sequence[WorkloadSpec],
    options: Optional[SchemeOptions] = None,
    max_cycles: int = 10_000_000,
    wall_budget_s: Optional[float] = None,
    engine: str = "reference",
) -> RunResult:
    """Build and run one scheme to completion.

    When the options carry a telemetry session, the finished run's
    legacy stat structs are harvested into its registry before the
    result is returned.
    """
    system = build_system(scheme, config, specs, options, engine=engine)
    result = system.run(
        max_cycles=max_cycles, wall_budget_s=wall_budget_s
    )
    if options is not None and options.telemetry is not None:
        options.telemetry.harvest(result, system.controller)
    return result
