"""Parameter-sweep utilities for sensitivity studies.

Thin orchestration over :mod:`repro.sim.runner`: run a grid of
(scheme x workload x knob) simulations and collect the metric the paper
plots.  Used by the Figure 5 / Figure 10 benchmarks and handy for ad-hoc
exploration.

Sweeps are *resilient* by design (production grids run for hours):

* a failing cell is isolated into :attr:`Sweep.failed_points` with the
  captured exception instead of aborting the whole grid;
* each cell runs under a cycle budget (``max_cycles``) and an optional
  wall-clock budget (``point_wall_budget_s``) that raises
  :class:`~repro.errors.SimTimeoutError` instead of hanging the grid;
* with a ``checkpoint`` path, every completed (or failed) cell is
  persisted to JSON atomically, and a killed sweep resumes from the last
  completed cell — re-running the same grid reproduces the exact same
  :class:`SweepPoint` table without re-simulating finished cells.

Execution itself — fan-out, checkpoint persistence, submission-order
merging — is the substrate's job, not this module's: :meth:`Sweep.run_grid`
describes each cell as a :class:`~repro.exec.JobSpec` (the picklable
:class:`~repro.schemes.SchemeSpec` rides in the payload, so
user-registered schemes parallelize like built-ins) and hands the batch
to :func:`repro.exec.run_jobs`.  The substrate's contract carries the
sweep's guarantees:

* **determinism** — per-cell seeds derive from the cell's own identity
  (``config.seed`` + domain), never from shared RNG state or execution
  order, and results merge in *submission* order, so a ``workers=4``
  grid writes a byte-identical checkpoint and identical aggregate
  metrics to a serial run;
* **fault isolation** — a worker exception (or a hard worker crash
  breaking the pool) is recorded per cell in :attr:`failed_points`;
  completed cells keep checkpointing incrementally, so a crashed grid
  resumes exactly like a killed serial one;
* **telemetry** — with ``collect_telemetry=True`` every cell runs under
  its own :class:`~repro.telemetry.session.TelemetrySession`; the
  per-worker registries are merged deterministically (submission order)
  into the grid artifact via
  :meth:`~repro.telemetry.registry.MetricsRegistry.merge`, and with
  ``collect_spans=True`` each cell's span records ride the substrate's
  reserved side channel and are adopted in the same order.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError, ReproError, SchemeError
from ..exec import (
    SPANS_KEY,
    CheckpointStore,
    JobResult,
    JobSpec,
    adopt_spans,
    run_jobs,
    validate_workers,
)
from ..exec import worker_pool as _exec_worker_pool
from ..schemes import REGISTRY
from ..telemetry.log import get_logger
from ..workloads.spec import suite_specs
from .config import SystemConfig
from .runner import SchemeOptions, run_scheme
from .system import RunResult

#: Checkpoint schema version (bump on incompatible change).
CHECKPOINT_VERSION = 1

_LOG = get_logger("sweep")


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep grid."""

    scheme: str
    workload: str
    cores: int
    label: str
    weighted_ipc: float
    bus_utilization: float
    mean_read_latency: float
    energy_pj: float
    #: Simulated cycles (0 on checkpoints predating the field).
    cycles: int = 0
    #: Fault strikes by kind name, when the cell armed an injector.
    #: Defaults keep version-1 checkpoints loadable.
    faults: Optional[Dict[str, int]] = None


@dataclass(frozen=True)
class FailedPoint:
    """One cell whose simulation raised instead of completing."""

    scheme: str
    workload: str
    cores: int
    label: str
    error_type: str
    error: str


def _point_key(scheme: str, workload: str, cores: int,
               label: str) -> Tuple[str, str, int, str]:
    return (scheme, workload, cores, label)


def _weighted_ipc(ipcs: Sequence[float],
                  baseline_ipcs: Sequence[float]) -> float:
    """Sum of per-core IPCs normalized to a baseline.

    Bit-for-bit the same arithmetic as
    :meth:`~repro.sim.system.RunResult.weighted_ipc`, applied to bare
    IPC lists so worker processes only ship floats back, not whole
    :class:`RunResult` objects.
    """
    total = 0.0
    for mine, theirs in zip(ipcs, baseline_ipcs):
        if theirs > 0:
            total += mine / theirs
    return total


def worker_pool(workers: int):
    """Deprecated alias for :func:`repro.exec.worker_pool`.

    The shared spawn-pool recipe moved to the execution substrate
    (:mod:`repro.exec`) so that nothing outside :mod:`repro.sim` has to
    import a sweep module to fan out work.  This thin re-export keeps
    old call sites running; new code should import from
    :mod:`repro.exec`.
    """
    warnings.warn(
        "repro.sim.sweep.worker_pool is deprecated; import worker_pool "
        "from repro.exec instead",
        DeprecationWarning, stacklevel=2,
    )
    return _exec_worker_pool(workers)


# ----------------------------------------------------------------------
# Job entry point (module level: spawn-picklable).
# ----------------------------------------------------------------------

def _sweep_worker(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one grid cell (in a worker process or in-process).

    The payload carries everything the cell needs — the (picklable)
    scheme spec, platform config, options, and budgets — and the return
    value carries only plain data (IPC floats, headline metrics, and
    optionally the cell's telemetry registry and span records), keeping
    the IPC channel small and the merge in the parent deterministic.
    Exceptions propagate: the substrate's
    :func:`~repro.exec.run_job` shim captures them identically on both
    sides of the process boundary.
    """
    from ..schemes import REGISTRY as worker_registry

    spec = payload.get("spec")
    if spec is not None:
        # The parent's grid definition is authoritative for this cell:
        # register (or refresh) the spec so user-defined schemes run in
        # workers exactly like built-ins.
        worker_registry.ensure(spec)
    options = payload.get("options")
    session = None
    tracer = None
    if payload.get("telemetry") or payload.get("spans"):
        from ..telemetry.session import TelemetrySession

        if payload.get("spans"):
            from ..telemetry.spans import SpanTracer

            tracer = SpanTracer()
        session = TelemetrySession(tracer=tracer)
        options = dataclasses.replace(
            options if options is not None else SchemeOptions(),
            telemetry=session,
        )
    result = run_scheme(
        payload["scheme"], payload["config"],
        suite_specs(payload["workload"], payload["cores"]),
        options,
        max_cycles=payload["max_cycles"],
        wall_budget_s=payload["wall_budget_s"],
        engine=payload["engine"],
    )
    out = {
        "ipcs": [c.ipc for c in result.cores],
        "bus_utilization": result.bus_utilization,
        "mean_read_latency": result.stats.mean_read_latency,
        "energy_pj": result.energy.total_pj,
        "cycles": result.cycles,
        "faults": result.faults,
    }
    if payload.get("telemetry") and session is not None:
        out["registry"] = session.registry
    if tracer is not None:
        # SpanRecord named tuples pickle as plain data; they ride the
        # substrate's reserved side channel, which pops them off before
        # the merge (and thus the checkpoint) ever sees the value.
        out[SPANS_KEY] = tracer.records
    return out


class Sweep:
    """Run and tabulate a grid of simulations against a baseline."""

    def __init__(
        self,
        config: SystemConfig,
        baseline_scheme: str = "baseline",
        max_cycles: int = 8_000_000,
        checkpoint: Optional[str] = None,
        point_wall_budget_s: Optional[float] = None,
        strict: bool = False,
        engine: str = "fast",
        workers: int = 1,
        collect_telemetry: bool = False,
        collect_spans: bool = False,
        fresh: bool = False,
        store=None,
    ) -> None:
        validate_workers(workers)
        self.config = config
        self.baseline_scheme = baseline_scheme
        self.max_cycles = max_cycles
        self.checkpoint = checkpoint
        self.point_wall_budget_s = point_wall_budget_s
        #: Simulation engine for every cell.  Sweeps default to the
        #: cycle-skipping fast path (production grids run for hours and
        #: the fast engine is differentially proven bit-identical); pass
        #: ``engine="reference"`` to force the cycle-stepping simulator.
        self.engine = engine
        #: When True, a failing cell re-raises instead of being recorded
        #: (the pre-resilience behaviour; also what a CI gate wants).
        self.strict = strict
        #: Worker processes for :meth:`run_grid`; 1 keeps everything
        #: in-process (bit-identical results either way).
        self.workers = workers
        #: Optional content-addressed result store (duck-typed — see
        #: :func:`repro.exec.run_jobs`; normally a
        #: :class:`repro.store.ResultStore`).  A warm store replays the
        #: cold run's raw cell results, so checkpoints, artifacts, and
        #: metrics snapshots stay byte-identical while zero simulations
        #: execute.  ``run_point`` runs in-process and is deliberately
        #: not cached.
        self.store = store
        #: Collect a per-cell telemetry registry and merge them (in
        #: deterministic submission order) into :attr:`cell_registry`.
        self.collect_telemetry = collect_telemetry
        self.cell_registry = None
        if collect_telemetry:
            from ..telemetry.registry import MetricsRegistry

            self.cell_registry = MetricsRegistry()
        #: Collect hierarchical spans: every cell runs under its own
        #: :class:`~repro.telemetry.spans.SpanTracer` (in-process or
        #: shipped back from the worker) and is adopted into
        #: :attr:`tracer` in deterministic submission order, so the
        #: merged trace is identical at any worker count (modulo
        #: volatile ``wall_*`` args).
        self.collect_spans = collect_spans
        self.tracer = None
        if collect_spans:
            from ..telemetry.spans import SpanTracer

            self.tracer = SpanTracer(track="grid")
        #: Wall-clock seconds of the most recent :meth:`run_grid` call
        #: (exported as a *volatile* gauge: never part of determinism
        #: snapshots or checkpoints).
        self.last_grid_wall_s: Optional[float] = None
        #: Baselines keyed *defensively*: the key includes the full
        #: (frozen, hashable) config, so mutating ``self.config`` between
        #: points can never alias a stale baseline onto a new grid.
        self._baselines: Dict[Tuple, RunResult] = {}
        #: Grid-mode baseline cache: one (possibly failed)
        #: :class:`~repro.exec.JobResult` per baseline identity.
        self._baseline_outcomes: Dict[Tuple, JobResult] = {}
        self.points: List[SweepPoint] = []
        self.failed_points: List[FailedPoint] = []
        self._completed: Dict[Tuple[str, str, int, str], SweepPoint] = {}
        self._store = CheckpointStore(
            checkpoint, CHECKPOINT_VERSION, fresh=fresh,
            tmp_prefix=".sweep-ckpt-",
        )
        if checkpoint is not None:
            self._load_checkpoint()

    # ------------------------------------------------------------------
    # Checkpointing.
    # ------------------------------------------------------------------

    def _load_checkpoint(self) -> None:
        data = self._store.load()
        if data is None:
            return
        for raw in data.get("points", []):
            point = SweepPoint(**raw)
            self.points.append(point)
            self._completed[_point_key(
                point.scheme, point.workload, point.cores, point.label
            )] = point
        for raw in data.get("failed", []):
            self.failed_points.append(FailedPoint(**raw))

    def _save_checkpoint(self) -> None:
        self._store.save({
            "baseline_scheme": self.baseline_scheme,
            "max_cycles": self.max_cycles,
            "points": [dataclasses.asdict(p) for p in self.points],
            "failed": [dataclasses.asdict(p) for p in self.failed_points],
        })

    # ------------------------------------------------------------------

    def _config_for(self, cores: int) -> SystemConfig:
        return (
            self.config if cores == self.config.num_cores
            else self.config.with_cores(cores)
        )

    def _baseline(self, workload: str, cores: int) -> RunResult:
        key = (self.baseline_scheme, workload, cores, self.config)
        if key not in self._baselines:
            self._baselines[key] = run_scheme(
                self.baseline_scheme, self._config_for(cores),
                suite_specs(workload, cores),
                max_cycles=self.max_cycles,
                wall_budget_s=self.point_wall_budget_s,
                engine=self.engine,
            )
        return self._baselines[key]

    def run_point(
        self,
        scheme: str,
        workload: str,
        cores: Optional[int] = None,
        label: str = "",
        options: Optional[SchemeOptions] = None,
    ) -> Optional[SweepPoint]:
        """Run one cell in-process and record it.

        Returns the completed :class:`SweepPoint`, a checkpointed one
        when this cell already finished in a previous (interrupted) run,
        or ``None`` when the cell failed and was isolated into
        :attr:`failed_points` (unless :attr:`strict`, which re-raises).
        """
        cores = cores or self.config.num_cores
        label = label or scheme
        key = _point_key(scheme, workload, cores, label)
        done = self._completed.get(key)
        if done is not None:
            return done
        session = None
        cell_tracer = None
        run_options = options
        if self.collect_telemetry or self.collect_spans:
            from ..telemetry.session import TelemetrySession

            if self.collect_spans:
                from ..telemetry.spans import SpanTracer

                cell_tracer = SpanTracer()
            session = TelemetrySession(tracer=cell_tracer)
            run_options = dataclasses.replace(
                options if options is not None else SchemeOptions(),
                telemetry=session,
            )
        try:
            result = run_scheme(
                scheme, self._config_for(cores),
                suite_specs(workload, cores),
                run_options, max_cycles=self.max_cycles,
                wall_budget_s=self.point_wall_budget_s,
                engine=self.engine,
            )
            baseline = self._baseline(workload, cores)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            if self.strict:
                raise
            _LOG.warning("cell failed", extra={
                "scheme": scheme, "workload": workload, "cores": cores,
                "error_type": type(exc).__name__, "error": str(exc),
            })
            self.failed_points.append(FailedPoint(
                scheme=scheme, workload=workload, cores=cores,
                label=label, error_type=type(exc).__name__,
                error=str(exc),
            ))
            self._save_checkpoint()
            return None
        point = SweepPoint(
            scheme=scheme,
            workload=workload,
            cores=cores,
            label=label,
            weighted_ipc=result.weighted_ipc(baseline),
            bus_utilization=result.bus_utilization,
            mean_read_latency=result.stats.mean_read_latency,
            energy_pj=result.energy.total_pj,
            cycles=result.cycles,
            faults=result.faults,
        )
        self.points.append(point)
        self._completed[key] = point
        if self.collect_telemetry and session is not None and (
            self.cell_registry is not None
        ):
            self.cell_registry.merge(session.registry)
        if cell_tracer is not None:
            self._adopt_cell_spans(
                workload, cores, label, cell_tracer.records
            )
        self._save_checkpoint()
        _LOG.info("cell done", extra={
            "scheme": scheme, "workload": workload, "cores": cores,
            "weighted_ipc": round(point.weighted_ipc, 6),
            "cycles": point.cycles,
        })
        return point

    def _adopt_cell_spans(
        self, workload: str, cores: int, label: str, records
    ) -> None:
        """Fold one cell's spans into the grid tracer.

        Called once per completed cell — in cell execution order
        serially and in submission order by the parallel merge loop,
        which are the *same* order, so the grid tracer's record
        sequence (and logical clock) is identical at any worker count.
        """
        adopt_spans(
            self.tracer, f"{label} x {workload} x {cores}", "cell",
            records,
        )

    # ------------------------------------------------------------------
    # Grid execution (serial or multiprocess, one substrate call).
    # ------------------------------------------------------------------

    def run_grid(
        self,
        schemes: Sequence[str],
        workloads: Sequence[str],
        cores: Optional[int] = None,
        options: Optional[SchemeOptions] = None,
    ) -> List[SweepPoint]:
        """Run the (scheme x workload) grid, honouring :attr:`workers`.

        Every cell becomes one :class:`~repro.exec.JobSpec` handed to
        :func:`repro.exec.run_jobs`: ``workers=1`` executes the same job
        shim in-process, ``workers>1`` fans cells out across
        spawn-started processes, and either way results merge back in
        submission order — so both modes produce byte-identical
        checkpoints and identical aggregate metrics.  The wall-clock of
        the whole call lands in :attr:`last_grid_wall_s` (and, as a
        volatile gauge, in the metrics artifact).
        """
        start = time.monotonic()
        try:
            if self.workers > 1 and options is not None and (
                options.telemetry is not None
            ):
                raise ConfigError(
                    "SchemeOptions.telemetry cannot cross process "
                    "boundaries; use Sweep(collect_telemetry=True) to "
                    "merge per-worker registries instead"
                )
            n = cores or self.config.num_cores
            jobs, aux = self._grid_jobs(
                list(schemes), list(workloads), n, options
            )
            run_jobs(
                jobs, self._merge_cell, aux=aux, workers=self.workers,
                skip=lambda job: job.key in self._completed,
                store=self.store,
            )
        finally:
            self.last_grid_wall_s = time.monotonic() - start
        return list(self.points)

    def _payload(
        self,
        spec,
        scheme: str,
        workload: str,
        cores: int,
        options: Optional[SchemeOptions],
        telemetry: bool,
        spans: bool = False,
    ) -> Dict[str, object]:
        return {
            "spec": spec,
            "scheme": scheme,
            "workload": workload,
            "cores": cores,
            "config": self._config_for(cores),
            "options": options,
            "max_cycles": self.max_cycles,
            "wall_budget_s": self.point_wall_budget_s,
            "engine": self.engine,
            "telemetry": telemetry,
            "spans": spans,
        }

    def _grid_jobs(
        self,
        schemes: List[str],
        workloads: List[str],
        cores: int,
        options: Optional[SchemeOptions],
    ) -> Tuple[List[JobSpec], Dict[Tuple, JobSpec]]:
        """Describe the grid as substrate jobs plus baseline auxiliaries.

        Scheme names resolve against the *parent's* registry here — a
        worker registry may lack parent-only specs, so resolving (and
        failing) parent-side is what keeps the unknown-scheme error
        text, and therefore the checkpoint bytes, identical at any
        worker count.
        """
        base_spec = REGISTRY.find(self.baseline_scheme)
        jobs: List[JobSpec] = []
        aux: Dict[Tuple, JobSpec] = {}
        for scheme in schemes:
            for workload in workloads:
                key = _point_key(scheme, workload, cores, scheme)
                try:
                    spec = REGISTRY.get(scheme)
                except SchemeError as exc:
                    jobs.append(JobSpec(key=key, failure=exc))
                    continue
                bkey = (self.baseline_scheme, workload, cores,
                        self.config)
                requires: Tuple = ()
                if bkey not in self._baseline_outcomes:
                    if bkey not in aux:
                        aux[bkey] = JobSpec(
                            key=bkey, fn=_sweep_worker,
                            payload=self._payload(
                                base_spec, self.baseline_scheme,
                                workload, cores, options=None,
                                telemetry=False,
                            ),
                        )
                    requires = (bkey,)
                jobs.append(JobSpec(
                    key=key, fn=_sweep_worker,
                    payload=self._payload(
                        spec, scheme, workload, cores, options=options,
                        telemetry=self.collect_telemetry,
                        spans=self.collect_spans,
                    ),
                    requires=requires,
                ))
        return jobs, aux

    def _merge_cell(self, job: JobSpec, result: JobResult,
                    resolve) -> None:
        """Fold one cell outcome into the table (submission order)."""
        scheme, workload, cores, label = job.key
        base: Optional[JobResult] = None
        if result.ok:
            bkey = (self.baseline_scheme, workload, cores, self.config)
            base = self._baseline_outcomes.get(bkey)
            if base is None:
                base = resolve(bkey)
                self._baseline_outcomes[bkey] = base
            if not base.ok:
                result = base
        if not result.ok:
            self._record_failure(scheme, workload, cores, label, result)
            return
        value = result.value
        point = SweepPoint(
            scheme=scheme,
            workload=workload,
            cores=cores,
            label=label,
            weighted_ipc=_weighted_ipc(
                value["ipcs"], base.value["ipcs"]
            ),
            bus_utilization=value["bus_utilization"],
            mean_read_latency=value["mean_read_latency"],
            energy_pj=value["energy_pj"],
            cycles=value["cycles"],
            faults=value["faults"],
        )
        self.points.append(point)
        self._completed[job.key] = point
        registry = value.get("registry")
        if registry is not None and self.cell_registry is not None:
            self.cell_registry.merge(registry)
        if result.spans is not None and self.tracer is not None:
            self._adopt_cell_spans(workload, cores, label, result.spans)
        self._save_checkpoint()
        _LOG.info("cell done", extra={
            "scheme": scheme, "workload": workload, "cores": cores,
            "weighted_ipc": round(point.weighted_ipc, 6),
            "cycles": point.cycles,
        })

    def _record_failure(
        self, scheme: str, workload: str, cores: int, label: str,
        result: JobResult,
    ) -> None:
        if self.strict:
            if result.exception is not None:
                raise result.exception
            raise ReproError(
                f"{result.error_type}: {result.error} "
                f"(cell {scheme} x {workload} x {cores})"
            )
        _LOG.warning("cell failed", extra={
            "scheme": scheme, "workload": workload, "cores": cores,
            "error_type": str(result.error_type),
            "error": str(result.error),
        })
        self.failed_points.append(FailedPoint(
            scheme=scheme, workload=workload, cores=cores, label=label,
            error_type=str(result.error_type),
            error=str(result.error),
        ))
        self._save_checkpoint()

    # ------------------------------------------------------------------

    def turn_length_sweep(
        self,
        workloads: Sequence[str],
        turn_lengths: Sequence[int],
        bank_partitioned: bool = True,
    ) -> Dict[int, List[SweepPoint]]:
        """The Figure 5 experiment for arbitrary grids."""
        scheme = "tp_bp" if bank_partitioned else "tp_np"
        out: Dict[int, List[SweepPoint]] = {}
        for turn in turn_lengths:
            cells = [
                self.run_point(
                    scheme, wl,
                    label=f"{scheme}_{turn}",
                    options=SchemeOptions(turn_length=turn),
                )
                for wl in workloads
            ]
            out[turn] = [c for c in cells if c is not None]
        return out

    def core_count_sweep(
        self,
        schemes: Sequence[str],
        workloads: Sequence[str],
        core_counts: Sequence[int],
    ) -> Dict[Tuple[str, int], List[SweepPoint]]:
        """The Figure 10 experiment for arbitrary grids."""
        out: Dict[Tuple[str, int], List[SweepPoint]] = {}
        for scheme in schemes:
            for cores in core_counts:
                cells = [
                    self.run_point(scheme, wl, cores=cores)
                    for wl in workloads
                ]
                out[(scheme, cores)] = [
                    c for c in cells if c is not None
                ]
        return out

    def mean(self, points: Iterable[SweepPoint],
             metric: str = "weighted_ipc") -> float:
        values = [getattr(p, metric) for p in points]
        if not values:
            raise ValueError("no points")
        return sum(values) / len(values)

    # ------------------------------------------------------------------
    # Telemetry export.
    # ------------------------------------------------------------------

    def metrics_registry(self):
        """Aggregate the grid into a fresh
        :class:`~repro.telemetry.registry.MetricsRegistry`.

        Every per-cell headline number becomes a gauge labeled with the
        cell's identity, fault strikes fold into one labeled counter
        across the whole grid, and failures are counted by exception
        type — so a dashboard can alert on
        ``sweep_failed_cells_total > 0`` or on any FS cell whose
        ``sweep_weighted_ipc`` regresses.  With ``collect_telemetry``,
        the merged per-cell registries fold in too, and the last
        :meth:`run_grid` wall clock / worker count export as *volatile*
        gauges (excluded from determinism snapshots by design — a
        ``workers=4`` artifact stays comparable to a serial one).
        """
        from ..telemetry.registry import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter(
            "sweep_cells_total", "completed sweep cells"
        ).inc(len(self.points))
        registry.counter(
            "sweep_failed_cells_total", "failed (isolated) sweep cells"
        ).inc(len(self.failed_points))
        labels = ("scheme", "workload", "cores", "label")
        ipc = registry.gauge(
            "sweep_weighted_ipc",
            "sum of per-core IPCs normalized to the baseline", labels,
        )
        util = registry.gauge(
            "sweep_bus_utilization", "data-bus busy fraction", labels
        )
        latency = registry.gauge(
            "sweep_mean_read_latency_cycles",
            "mean demand-read latency", labels,
        )
        energy = registry.gauge(
            "sweep_energy_pj", "total DRAM energy (picojoules)", labels
        )
        cycles = registry.gauge(
            "sweep_cycles", "simulated cycles", labels
        )
        faults = registry.counter(
            "sweep_faults_injected_total",
            "fault strikes across the whole grid", ("kind",),
        )
        for p in self.points:
            key = dict(scheme=p.scheme, workload=p.workload,
                       cores=p.cores, label=p.label)
            ipc.set(round(p.weighted_ipc, 6), **key)
            util.set(round(p.bus_utilization, 6), **key)
            latency.set(round(p.mean_read_latency, 6), **key)
            energy.set(round(p.energy_pj, 3), **key)
            cycles.set(p.cycles, **key)
            for kind, count in sorted((p.faults or {}).items()):
                faults.inc(count, kind=kind)
        failures = registry.counter(
            "sweep_failures_total",
            "isolated cell failures by exception type", ("error_type",),
        )
        for f in self.failed_points:
            failures.inc(error_type=f.error_type)
        if self.cell_registry is not None:
            registry.merge(self.cell_registry)
        wall = registry.gauge(
            "sweep_wall_seconds",
            "wall-clock of the last run_grid call", volatile=True,
        )
        if self.last_grid_wall_s is not None:
            wall.set(round(self.last_grid_wall_s, 6))
        registry.gauge(
            "sweep_workers", "configured worker processes",
            volatile=True,
        ).set(self.workers)
        return registry

    def export_metrics(self, path: str) -> None:
        """Write the aggregated grid metrics to ``path``.

        ``.prom`` / ``.txt`` suffixes select the Prometheus text
        exposition format; anything else writes the JSON export.  Path
        errors surface as :class:`~repro.errors.TelemetryError`.
        """
        from ..telemetry.collector import open_sink

        registry = self.metrics_registry()
        handle = open_sink(path)
        try:
            if path.endswith((".prom", ".txt")):
                handle.write(registry.to_prometheus())
            else:
                handle.write(registry.to_json())
                handle.write("\n")
        finally:
            handle.close()

    def export_trace(self, path: str) -> int:
        """Write the merged grid span trace as Chrome trace JSON.

        Requires ``collect_spans=True``; returns the span count.  The
        file's non-volatile content is byte-identical at any worker
        count (``wall_*`` args are the only difference — strip them
        with :func:`~repro.telemetry.spans.scrub_volatile_args`).
        """
        from ..errors import TelemetryError
        from ..telemetry.chrome import export_span_trace

        if self.tracer is None:
            raise TelemetryError(
                "span trace export requires Sweep(collect_spans=True)"
            )
        return export_span_trace(
            self.tracer, path, metadata={"source": "sweep"}
        )
