"""Parameter-sweep utilities for sensitivity studies.

Thin orchestration over :mod:`repro.sim.runner`: run a grid of
(scheme x workload x knob) simulations and collect the metric the paper
plots.  Used by the Figure 5 / Figure 10 benchmarks and handy for ad-hoc
exploration.

Sweeps are *resilient* by design (production grids run for hours):

* a failing cell is isolated into :attr:`Sweep.failed_points` with the
  captured exception instead of aborting the whole grid;
* each cell runs under a cycle budget (``max_cycles``) and an optional
  wall-clock budget (``point_wall_budget_s``) that raises
  :class:`~repro.errors.SimTimeoutError` instead of hanging the grid;
* with a ``checkpoint`` path, every completed (or failed) cell is
  persisted to JSON atomically, and a killed sweep resumes from the last
  completed cell — re-running the same grid reproduces the exact same
  :class:`SweepPoint` table without re-simulating finished cells.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, \
    Tuple

from ..errors import ReproError
from ..workloads.spec import suite_specs
from .config import SystemConfig
from .runner import SchemeOptions, run_scheme
from .system import RunResult

#: Checkpoint schema version (bump on incompatible change).
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep grid."""

    scheme: str
    workload: str
    cores: int
    label: str
    weighted_ipc: float
    bus_utilization: float
    mean_read_latency: float
    energy_pj: float
    #: Simulated cycles (0 on checkpoints predating the field).
    cycles: int = 0
    #: Fault strikes by kind name, when the cell armed an injector.
    #: Defaults keep version-1 checkpoints loadable.
    faults: Optional[Dict[str, int]] = None


@dataclass(frozen=True)
class FailedPoint:
    """One cell whose simulation raised instead of completing."""

    scheme: str
    workload: str
    cores: int
    label: str
    error_type: str
    error: str


def _point_key(scheme: str, workload: str, cores: int,
               label: str) -> Tuple[str, str, int, str]:
    return (scheme, workload, cores, label)


class Sweep:
    """Run and tabulate a grid of simulations against a baseline."""

    def __init__(
        self,
        config: SystemConfig,
        baseline_scheme: str = "baseline",
        max_cycles: int = 8_000_000,
        checkpoint: Optional[str] = None,
        point_wall_budget_s: Optional[float] = None,
        strict: bool = False,
        engine: str = "fast",
    ) -> None:
        self.config = config
        self.baseline_scheme = baseline_scheme
        self.max_cycles = max_cycles
        self.checkpoint = checkpoint
        self.point_wall_budget_s = point_wall_budget_s
        #: Simulation engine for every cell.  Sweeps default to the
        #: cycle-skipping fast path (production grids run for hours and
        #: the fast engine is differentially proven bit-identical); pass
        #: ``engine="reference"`` to force the cycle-stepping simulator.
        self.engine = engine
        #: When True, a failing cell re-raises instead of being recorded
        #: (the pre-resilience behaviour; also what a CI gate wants).
        self.strict = strict
        #: Baselines keyed *defensively*: the key includes the full
        #: (frozen, hashable) config, so mutating ``self.config`` between
        #: points can never alias a stale baseline onto a new grid.
        self._baselines: Dict[Tuple, RunResult] = {}
        self.points: List[SweepPoint] = []
        self.failed_points: List[FailedPoint] = []
        self._completed: Dict[Tuple[str, str, int, str], SweepPoint] = {}
        if checkpoint is not None:
            self._load_checkpoint()

    # ------------------------------------------------------------------
    # Checkpointing.
    # ------------------------------------------------------------------

    def _load_checkpoint(self) -> None:
        if self.checkpoint is None or not os.path.exists(self.checkpoint):
            return
        with open(self.checkpoint) as handle:
            data = json.load(handle)
        if data.get("version") != CHECKPOINT_VERSION:
            return  # incompatible checkpoint: start fresh
        for raw in data.get("points", []):
            point = SweepPoint(**raw)
            self.points.append(point)
            self._completed[_point_key(
                point.scheme, point.workload, point.cores, point.label
            )] = point
        for raw in data.get("failed", []):
            self.failed_points.append(FailedPoint(**raw))

    def _save_checkpoint(self) -> None:
        if self.checkpoint is None:
            return
        data = {
            "version": CHECKPOINT_VERSION,
            "baseline_scheme": self.baseline_scheme,
            "max_cycles": self.max_cycles,
            "points": [dataclasses.asdict(p) for p in self.points],
            "failed": [dataclasses.asdict(p) for p in self.failed_points],
        }
        # Atomic write: a kill mid-dump must never corrupt the file.
        directory = os.path.dirname(os.path.abspath(self.checkpoint))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".sweep-ckpt-"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(data, handle, indent=1)
            os.replace(tmp_path, self.checkpoint)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------

    def _config_for(self, cores: int) -> SystemConfig:
        return (
            self.config if cores == self.config.num_cores
            else self.config.with_cores(cores)
        )

    def _baseline(self, workload: str, cores: int) -> RunResult:
        key = (self.baseline_scheme, workload, cores, self.config)
        if key not in self._baselines:
            self._baselines[key] = run_scheme(
                self.baseline_scheme, self._config_for(cores),
                suite_specs(workload, cores),
                max_cycles=self.max_cycles,
                wall_budget_s=self.point_wall_budget_s,
                engine=self.engine,
            )
        return self._baselines[key]

    def run_point(
        self,
        scheme: str,
        workload: str,
        cores: Optional[int] = None,
        label: str = "",
        options: Optional[SchemeOptions] = None,
    ) -> Optional[SweepPoint]:
        """Run one cell and record it.

        Returns the completed :class:`SweepPoint`, a checkpointed one
        when this cell already finished in a previous (interrupted) run,
        or ``None`` when the cell failed and was isolated into
        :attr:`failed_points` (unless :attr:`strict`, which re-raises).
        """
        cores = cores or self.config.num_cores
        label = label or scheme
        key = _point_key(scheme, workload, cores, label)
        done = self._completed.get(key)
        if done is not None:
            return done
        try:
            result = run_scheme(
                scheme, self._config_for(cores),
                suite_specs(workload, cores),
                options, max_cycles=self.max_cycles,
                wall_budget_s=self.point_wall_budget_s,
                engine=self.engine,
            )
            baseline = self._baseline(workload, cores)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            if self.strict:
                raise
            self.failed_points.append(FailedPoint(
                scheme=scheme, workload=workload, cores=cores,
                label=label, error_type=type(exc).__name__,
                error=str(exc),
            ))
            self._save_checkpoint()
            return None
        point = SweepPoint(
            scheme=scheme,
            workload=workload,
            cores=cores,
            label=label,
            weighted_ipc=result.weighted_ipc(baseline),
            bus_utilization=result.bus_utilization,
            mean_read_latency=result.stats.mean_read_latency,
            energy_pj=result.energy.total_pj,
            cycles=result.cycles,
            faults=result.faults,
        )
        self.points.append(point)
        self._completed[key] = point
        self._save_checkpoint()
        return point

    def turn_length_sweep(
        self,
        workloads: Sequence[str],
        turn_lengths: Sequence[int],
        bank_partitioned: bool = True,
    ) -> Dict[int, List[SweepPoint]]:
        """The Figure 5 experiment for arbitrary grids."""
        scheme = "tp_bp" if bank_partitioned else "tp_np"
        out: Dict[int, List[SweepPoint]] = {}
        for turn in turn_lengths:
            cells = [
                self.run_point(
                    scheme, wl,
                    label=f"{scheme}_{turn}",
                    options=SchemeOptions(turn_length=turn),
                )
                for wl in workloads
            ]
            out[turn] = [c for c in cells if c is not None]
        return out

    def core_count_sweep(
        self,
        schemes: Sequence[str],
        workloads: Sequence[str],
        core_counts: Sequence[int],
    ) -> Dict[Tuple[str, int], List[SweepPoint]]:
        """The Figure 10 experiment for arbitrary grids."""
        out: Dict[Tuple[str, int], List[SweepPoint]] = {}
        for scheme in schemes:
            for cores in core_counts:
                cells = [
                    self.run_point(scheme, wl, cores=cores)
                    for wl in workloads
                ]
                out[(scheme, cores)] = [
                    c for c in cells if c is not None
                ]
        return out

    def mean(self, points: Iterable[SweepPoint],
             metric: str = "weighted_ipc") -> float:
        values = [getattr(p, metric) for p in points]
        if not values:
            raise ValueError("no points")
        return sum(values) / len(values)

    # ------------------------------------------------------------------
    # Telemetry export.
    # ------------------------------------------------------------------

    def metrics_registry(self):
        """Aggregate the grid into a fresh
        :class:`~repro.telemetry.registry.MetricsRegistry`.

        Every per-cell headline number becomes a gauge labeled with the
        cell's identity, fault strikes fold into one labeled counter
        across the whole grid, and failures are counted by exception
        type — so a dashboard can alert on
        ``sweep_failed_cells_total > 0`` or on any FS cell whose
        ``sweep_weighted_ipc`` regresses.
        """
        from ..telemetry.registry import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter(
            "sweep_cells_total", "completed sweep cells"
        ).inc(len(self.points))
        registry.counter(
            "sweep_failed_cells_total", "failed (isolated) sweep cells"
        ).inc(len(self.failed_points))
        labels = ("scheme", "workload", "cores", "label")
        ipc = registry.gauge(
            "sweep_weighted_ipc",
            "sum of per-core IPCs normalized to the baseline", labels,
        )
        util = registry.gauge(
            "sweep_bus_utilization", "data-bus busy fraction", labels
        )
        latency = registry.gauge(
            "sweep_mean_read_latency_cycles",
            "mean demand-read latency", labels,
        )
        energy = registry.gauge(
            "sweep_energy_pj", "total DRAM energy (picojoules)", labels
        )
        cycles = registry.gauge(
            "sweep_cycles", "simulated cycles", labels
        )
        faults = registry.counter(
            "sweep_faults_injected_total",
            "fault strikes across the whole grid", ("kind",),
        )
        for p in self.points:
            key = dict(scheme=p.scheme, workload=p.workload,
                       cores=p.cores, label=p.label)
            ipc.set(round(p.weighted_ipc, 6), **key)
            util.set(round(p.bus_utilization, 6), **key)
            latency.set(round(p.mean_read_latency, 6), **key)
            energy.set(round(p.energy_pj, 3), **key)
            cycles.set(p.cycles, **key)
            for kind, count in sorted((p.faults or {}).items()):
                faults.inc(count, kind=kind)
        failures = registry.counter(
            "sweep_failures_total",
            "isolated cell failures by exception type", ("error_type",),
        )
        for f in self.failed_points:
            failures.inc(error_type=f.error_type)
        return registry

    def export_metrics(self, path: str) -> None:
        """Write the aggregated grid metrics to ``path``.

        ``.prom`` / ``.txt`` suffixes select the Prometheus text
        exposition format; anything else writes the JSON export.  Path
        errors surface as :class:`~repro.errors.TelemetryError`.
        """
        from ..telemetry.collector import open_sink

        registry = self.metrics_registry()
        handle = open_sink(path)
        try:
            if path.endswith((".prom", ".txt")):
                handle.write(registry.to_prometheus())
            else:
                handle.write(registry.to_json())
                handle.write("\n")
        finally:
            handle.close()
