"""Parameter-sweep utilities for sensitivity studies.

Thin orchestration over :mod:`repro.sim.runner`: run a grid of
(scheme x workload x knob) simulations and collect the metric the paper
plots.  Used by the Figure 5 / Figure 10 benchmarks and handy for ad-hoc
exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..workloads.spec import suite_specs
from .config import SystemConfig
from .runner import SchemeOptions, run_scheme
from .system import RunResult


@dataclass(frozen=True)
class SweepPoint:
    """One cell of a sweep grid."""

    scheme: str
    workload: str
    cores: int
    label: str
    weighted_ipc: float
    bus_utilization: float
    mean_read_latency: float
    energy_pj: float


class Sweep:
    """Run and tabulate a grid of simulations against a baseline."""

    def __init__(
        self,
        config: SystemConfig,
        baseline_scheme: str = "baseline",
        max_cycles: int = 8_000_000,
    ) -> None:
        self.config = config
        self.baseline_scheme = baseline_scheme
        self.max_cycles = max_cycles
        self._baselines: Dict[Tuple[str, int], RunResult] = {}
        self.points: List[SweepPoint] = []

    def _baseline(self, workload: str, cores: int) -> RunResult:
        key = (workload, cores)
        if key not in self._baselines:
            config = (
                self.config if cores == self.config.num_cores
                else self.config.with_cores(cores)
            )
            self._baselines[key] = run_scheme(
                self.baseline_scheme, config,
                suite_specs(workload, cores),
                max_cycles=self.max_cycles,
            )
        return self._baselines[key]

    def run_point(
        self,
        scheme: str,
        workload: str,
        cores: Optional[int] = None,
        label: str = "",
        options: Optional[SchemeOptions] = None,
    ) -> SweepPoint:
        """Run one cell and record it."""
        cores = cores or self.config.num_cores
        config = (
            self.config if cores == self.config.num_cores
            else self.config.with_cores(cores)
        )
        result = run_scheme(
            scheme, config, suite_specs(workload, cores),
            options, max_cycles=self.max_cycles,
        )
        baseline = self._baseline(workload, cores)
        point = SweepPoint(
            scheme=scheme,
            workload=workload,
            cores=cores,
            label=label or scheme,
            weighted_ipc=result.weighted_ipc(baseline),
            bus_utilization=result.bus_utilization,
            mean_read_latency=result.stats.mean_read_latency,
            energy_pj=result.energy.total_pj,
        )
        self.points.append(point)
        return point

    def turn_length_sweep(
        self,
        workloads: Sequence[str],
        turn_lengths: Sequence[int],
        bank_partitioned: bool = True,
    ) -> Dict[int, List[SweepPoint]]:
        """The Figure 5 experiment for arbitrary grids."""
        scheme = "tp_bp" if bank_partitioned else "tp_np"
        out: Dict[int, List[SweepPoint]] = {}
        for turn in turn_lengths:
            out[turn] = [
                self.run_point(
                    scheme, wl,
                    label=f"{scheme}_{turn}",
                    options=SchemeOptions(turn_length=turn),
                )
                for wl in workloads
            ]
        return out

    def core_count_sweep(
        self,
        schemes: Sequence[str],
        workloads: Sequence[str],
        core_counts: Sequence[int],
    ) -> Dict[Tuple[str, int], List[SweepPoint]]:
        """The Figure 10 experiment for arbitrary grids."""
        out: Dict[Tuple[str, int], List[SweepPoint]] = {}
        for scheme in schemes:
            for cores in core_counts:
                out[(scheme, cores)] = [
                    self.run_point(scheme, wl, cores=cores)
                    for wl in workloads
                ]
        return out

    def mean(self, points: Iterable[SweepPoint],
             metric: str = "weighted_ipc") -> float:
        values = [getattr(p, metric) for p in points]
        if not values:
            raise ValueError("no points")
        return sum(values) / len(values)
