"""Cycle-skipping fast-path engine, differentially tested against the
reference simulator.

The Fixed Service controller's whole point is that its schedule is
*fixed and input-independent* (PAPER Sections 3-5): every slot decision
cycle, command cycle, and release cycle is a pure function of the
timetable and the domain's own queue.  Ticking the reference simulator
through every DRAM cycle therefore re-derives, at run time, facts that
were proved offline.  This module exploits that determinism:

* :class:`FastSystem` — an event-horizon driver that advances the
  controller in one stride per *demand-side* event (request arrival or
  earliest pending release) instead of one stride per internal
  controller event, with batched stat accumulation per stride.
* :func:`cached_fs_schedule` / :func:`cached_triple_alternation_schedule`
  — a per-scheme command-template cache keyed on
  ``(scheme kind, timing params, num_domains, ...)``: pipeline solving
  and slot-timing derivation run once per process, not once per run.
* :class:`TemplatedSchedule` — memoizes the per-mode command-time
  offsets so ``command_times`` is two integer adds, not a re-derivation.
* trusted issue — the FS command stream was validated offline (pipeline
  solver + :func:`repro.core.schedule.validate_schedule`), so the fast
  FS controllers apply commands through
  :meth:`repro.dram.channel.Channel.issue_trusted`, skipping the
  per-command JEDEC re-validation and bus-reservation bookkeeping while
  keeping every observable state update bit-identical.
* :class:`FastFrFcfsController` / :class:`FastTpController` — the
  non-fixed schedulers keep full validation (their schedules are *not*
  precomputed) but cache scheduling candidates between decisions, with
  event-based invalidation.

Equivalence argument (why the fast engine is *observationally
identical*, not approximately so):

1. **Advance-partition invariance.**  Every controller's ``_work(until)``
   processes decisions in time order, gated only on persistent state and
   ``request.arrival`` — never on how the ``[now, until]`` range was
   partitioned into ``advance`` calls.  Hence one big ``advance(h)``
   equals any sequence of smaller advances covering the same range with
   the same interleaved enqueues.
2. **Flat earliest-time queries.**  For every ``earliest_*`` query,
   ``f(t0) = s`` and ``t0 <= t1 <= s`` imply ``f(t1) = s`` (the feasible
   set below ``s`` is empty by minimality).  So deferring a query until
   a later, coarser stride returns the same cycle.
3. **Identical enqueue cycles.**  The fast driver never advances past an
   undelivered arrival, and the core model guarantees post-completion
   emissions arrive no earlier than their release cycle; back-pressured
   deliveries degrade to reference-granularity stepping.  Requests are
   therefore enqueued at exactly the reference cycles.

Any divergence between the two engines is either a fast-path bug or a
timing channel — which is exactly what ``tests/test_differential.py``
locks in (Gong & Kiyavash's deterministic-scheduler analyses make the
same observation from the leakage side: the schedule alone determines
the observable).
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Tuple

from ..controllers.frfcfs import FrFcfsController, _Candidate
from ..controllers.tp import TemporalPartitioningController
from ..core.fs_controller import FixedServiceController
from ..core.fs_reordered import ReorderedBpController
from ..core.pipeline_solver import PeriodicMode, SharingLevel, slot_timing
from ..core.schedule import (
    CommandTimes,
    FixedServiceSchedule,
    build_fs_schedule,
    build_triple_alternation_schedule,
)
from ..core.shaping import DummyGenerator
from ..cpu.core_model import Core
from ..dram.commands import Address, Command, CommandType, Request, \
    RequestKind
from ..errors import SimTimeoutError
from .multichannel import MultiChannelFsController
from .system import RunResult, System

_INF = float("inf")

# ----------------------------------------------------------------------
# Command-template caches.
# ----------------------------------------------------------------------

#: (params, mode) -> (read offsets, write offsets); immutable values.
_REL_CACHE: Dict[Tuple, Tuple] = {}
#: Schedule cache keyed on (kind, params, num_domains, extras...).
_SCHEDULE_CACHE: Dict[Tuple, "TemplatedSchedule"] = {}
#: Process-global schedule-template cache effectiveness counters,
#: exported (as volatile metrics) by the engine profiler.
_TEMPLATE_HITS = 0
_TEMPLATE_MISSES = 0


def template_cache_stats() -> Dict[str, int]:
    """Hit/miss counts for the process-global schedule-template cache."""
    return {"hits": _TEMPLATE_HITS, "misses": _TEMPLATE_MISSES}


def clear_caches() -> None:
    """Drop the schedule/template caches (test isolation helper)."""
    global _TEMPLATE_HITS, _TEMPLATE_MISSES
    _REL_CACHE.clear()
    _SCHEDULE_CACHE.clear()
    _TEMPLATE_HITS = 0
    _TEMPLATE_MISSES = 0


def _rel_times(params, mode) -> Tuple:
    key = (params, mode)
    rel = _REL_CACHE.get(key)
    if rel is None:
        rel = (slot_timing(params, mode, True),
               slot_timing(params, mode, False))
        _REL_CACHE[key] = rel
    return rel


class TemplatedSchedule(FixedServiceSchedule):
    """A :class:`FixedServiceSchedule` with memoized command offsets.

    ``command_times`` on the base class re-derives the slot timing from
    the pipeline mode on every call; here it is two integer adds against
    offsets computed once per ``(params, mode)``.  All schedule fields
    (including the derived ``lead``) are identical to the wrapped
    schedule, so the timetable — and therefore every command cycle — is
    bit-identical.
    """

    def __init__(self, base: FixedServiceSchedule) -> None:
        super().__init__(
            params=base.params,
            mode=base.mode,
            slot_gap=base.slot_gap,
            num_domains=base.num_domains,
            slots=base.slots,
            interval_length=base.interval_length,
            sharing=base.sharing,
            name=base.name,
        )
        assert self.lead == base.lead  # lead is a pure function of fields
        self._rel_read, self._rel_write = _rel_times(
            base.params, base.mode
        )

    def command_times(self, anchor: int, is_read: bool) -> CommandTimes:
        rel = self._rel_read if is_read else self._rel_write
        return CommandTimes(
            act=anchor + rel.act,
            col=anchor + rel.col,
            data=anchor + rel.data,
        )


def cached_fs_schedule(
    params,
    num_domains: int,
    sharing: SharingLevel,
    mode: Optional[PeriodicMode] = None,
    slots_per_domain: int = 1,
) -> TemplatedSchedule:
    """Memoized :func:`~repro.core.schedule.build_fs_schedule`.

    Schedules are immutable, so reusing one across runs is safe; the
    pipeline solver then runs once per ``(scheme, timing, domains)``
    triple instead of once per simulation.
    """
    global _TEMPLATE_HITS, _TEMPLATE_MISSES
    key = ("fs", params, num_domains, sharing, mode, slots_per_domain)
    schedule = _SCHEDULE_CACHE.get(key)
    if schedule is None:
        _TEMPLATE_MISSES += 1
        schedule = TemplatedSchedule(build_fs_schedule(
            params, num_domains, sharing, mode=mode,
            slots_per_domain=slots_per_domain,
        ))
        _SCHEDULE_CACHE[key] = schedule
    else:
        _TEMPLATE_HITS += 1
    return schedule


def cached_triple_alternation_schedule(
    params, num_domains: int
) -> TemplatedSchedule:
    """Memoized :func:`~repro.core.schedule
    .build_triple_alternation_schedule`."""
    global _TEMPLATE_HITS, _TEMPLATE_MISSES
    key = ("ta", params, num_domains)
    schedule = _SCHEDULE_CACHE.get(key)
    if schedule is None:
        _TEMPLATE_MISSES += 1
        schedule = TemplatedSchedule(
            build_triple_alternation_schedule(params, num_domains)
        )
        _SCHEDULE_CACHE[key] = schedule
    else:
        _TEMPLATE_HITS += 1
    return schedule


# ----------------------------------------------------------------------
# Fast dummy generation.
# ----------------------------------------------------------------------


class FastDummyGenerator(DummyGenerator):
    """Bit-identical dummy stream with lazy address construction.

    The reference generator materializes up to eight
    :class:`~repro.dram.commands.Address` objects per call although the
    first is almost always legal.  This variant advances the xorshift
    state and the bank cursor *exactly* like the reference (one row draw
    and one cursor step per call, none when the class filter empties the
    bank set) but yields addresses on demand.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._allowed_cache: Dict[Optional[int], List[Tuple]] = {}

    def _allowed(self, bank_mod: Optional[int]) -> List[Tuple]:
        allowed = self._allowed_cache.get(bank_mod)
        if allowed is None:
            allowed = [
                (ch, rk, bk)
                for ch, rk, bk in self._resources
                if bank_mod is None or bk % 3 == bank_mod
            ]
            self._allowed_cache[bank_mod] = allowed
        return allowed

    def candidates(self, bank_mod: Optional[int] = None, limit: int = 8):
        allowed = self._allowed(bank_mod)
        if not allowed:
            return []
        row = self._next_row()
        cursor = self._cursor
        self._cursor = (cursor + 1) % len(allowed)
        count = min(limit, len(allowed))

        def lazy():
            for i in range(count):
                ch, rk, bk = allowed[(cursor + i) % len(allowed)]
                yield Address(ch, rk, bk, row, 0)

        return lazy()


# ----------------------------------------------------------------------
# Fast Fixed Service controllers (trusted issue).
# ----------------------------------------------------------------------


class _TrustedIssueMixin:
    """Issue pre-validated commands via the unchecked channel path.

    Logging and the online invariant monitor keep observing every
    command, so ``log_commands`` / ``OnlineInvariantMonitor`` behave
    exactly as in the reference engine.
    """

    def _issue(self, command: Command) -> Optional[int]:
        data_start = self.dram.channels[command.channel].issue_trusted(
            command
        )
        if self.log_commands:
            self.command_log.append(command)
        if self.monitor is not None:
            self.monitor.observe_command(command)
        if self.telemetry is not None:
            self.telemetry.on_command(self, command)
        return data_start


class FastFixedServiceController(_TrustedIssueMixin,
                                 FixedServiceController):
    """FS controller over a templated timetable with trusted issue."""

    def __init__(self, dram, schedule, partition, *args, **kwargs) -> None:
        if not isinstance(schedule, TemplatedSchedule):
            schedule = TemplatedSchedule(schedule)
        super().__init__(dram, schedule, partition, *args, **kwargs)
        self._dummies = {
            d: FastDummyGenerator(d, partition, self.channel_id)
            for d in range(self.num_domains)
        }
        # Precomputed decide-cycle table: decide(g) for global slot g is
        # interval * Q + base[g % slots_per_interval].
        self._decide_base = [
            self.schedule.anchor(0, spec) + self._decision_lead
            for spec in self.schedule.slots
        ]
        self._nslots = len(self.schedule.slots)
        # Per-domain slot positions within one interval, and the
        # earliest *demand-read* release cycle each slot could produce
        # (only read dispatches schedule core releases; write-forward
        # and prefetch-hit releases are created at enqueue time and are
        # covered by ``drain_deadline`` from the next driver stop).
        self._domain_slot_pos = {
            d: [
                i for i, s in enumerate(self.schedule.slots)
                if s.domain == d
            ]
            for d in range(self.num_domains)
        }
        self._release_base = [
            self.schedule.command_times(
                self.schedule.anchor(0, spec), True
            ).data + self.params.tBURST
            for spec in self.schedule.slots
        ]
        # release_horizon memo: between driver stops with no slot
        # decided and no enqueue, the per-domain queue emptiness — the
        # only other input — cannot have changed (dequeues happen only
        # inside slot decisions, which bump ``_next_slot``).
        self._rh_key = (-1, -1)
        self._rh_value: Optional[int] = None
        self._enq_count = 0

    def enqueue(self, request: Request) -> None:
        self._enq_count += 1
        super().enqueue(request)

    def _decide_cycle(self, g: int) -> int:
        interval, idx = divmod(g, len(self._decide_base))
        return interval * self.schedule.interval_length + \
            self._decide_base[idx]

    def _work(self, until: int) -> None:
        """Reference loop with the per-iteration slot-geometry lookup
        hoisted (the decide cycle only changes when a slot is decided)
        and the duplicate-command guard skipped when no fault injector
        is armed — without one no duplicate can ever be staged, so the
        guard is a provable no-op."""
        if self.refresh is not None and self.refresh.enabled:
            self._pump_refreshes(until + self.schedule.interval_length)
        staged = self._staged
        fast_issue = self.fault_injector is None
        decide_at = self._decide_cycle(self._next_slot)
        while True:
            staged_at = staged[0][0] if staged else None
            if decide_at <= until and (
                staged_at is None or decide_at <= staged_at
            ):
                self._decide_slot(self._next_slot)
                self._next_slot += 1
                decide_at = self._decide_cycle(self._next_slot)
                continue
            if staged_at is not None and staged_at <= until:
                _, _, command = heapq.heappop(staged)
                if not fast_issue:
                    key = (
                        command.type, command.cycle, command.channel,
                        command.rank, command.bank, command.row,
                    )
                    if key == self._last_issued_key:
                        self.stats.squashed_duplicates += 1
                        continue
                    self._last_issued_key = key
                self._issue(command)
                continue
            break
        self.dram.channels[self.channel_id].prune(self.now)

    def release_horizon(self) -> Optional[int]:
        """Earliest cycle a *new* core release could be created.

        The fast driver only needs to stop where a completion might
        unblock a core.  Releases already scheduled are covered by
        ``drain_deadline``; a new one can only come from a demand read
        served at a future slot of a domain that has queued work, which
        cannot complete before that domain's next own slot's read-data
        burst ends.  Returns ``None`` under fault injection (the
        deliberately-broken borrow-foreign-slot recovery can complete a
        *pending* domain's request inside an idle domain's slot, which
        this bound does not cover) — the driver then falls back to
        ``next_event`` granularity.
        """
        if self.fault_injector is not None:
            return None
        g0 = self._next_slot
        key = (g0, self._enq_count)
        if key == self._rh_key:
            return self._rh_value
        length = self.schedule.interval_length
        interval, off = divmod(g0, self._nslots)
        base = interval * length
        best: Optional[int] = None
        rb = self._release_base
        for d, queue in self._queues.items():
            if not queue:
                continue
            for pos in self._domain_slot_pos[d]:
                t = rb[pos] + (base if pos >= off else base + length)
                if best is None or t < best:
                    best = t
        self._rh_key = key
        self._rh_value = best
        return best


class FastReorderedBpController(_TrustedIssueMixin, ReorderedBpController):
    """Reordered-BP controller with trusted issue and lazy dummies."""

    def __init__(self, dram, partition, num_domains, *args,
                 **kwargs) -> None:
        super().__init__(dram, partition, num_domains, *args, **kwargs)
        self._dummies = {
            d: FastDummyGenerator(d, partition, self.channel_id)
            for d in range(num_domains)
        }

    def release_horizon(self) -> Optional[int]:
        """Earliest cycle a *new* core release could be created.

        Every demand read served in interval ``i`` is released en masse
        at that interval's last data end — a pure function of ``i`` —
        and undecided intervals start at ``self._next_interval``, so no
        future dispatch can release before the next interval's release
        point.  Releases from already-decided intervals sit in the
        release heap and are covered by ``drain_deadline``.  ``None``
        under fault injection (``drop_command`` re-queues a demand and
        ``delay_slot`` shifts service, both at reference granularity).
        """
        if self.fault_injector is not None:
            return None
        g = self.geometry
        return (
            self.interval_start(self._next_interval)
            + (g.num_domains - 1) * g.data_gap
            + self.params.tBURST
        )

    def _work(self, until: int) -> None:
        """Reference loop with the decide cycle tracked incrementally
        (``decide(i) == i * interval_length`` exactly) and the
        duplicate-command guard skipped when no fault injector is armed
        (without one no duplicate can ever be staged)."""
        staged = self._staged
        fast_issue = self.fault_injector is None
        length = self.geometry.interval_length
        decide_at = self._next_interval * length
        while True:
            staged_at = staged[0][0] if staged else None
            if decide_at <= until and (
                staged_at is None or decide_at <= staged_at
            ):
                self._decide_interval(self._next_interval)
                self._next_interval += 1
                decide_at += length
                continue
            if staged_at is not None and staged_at <= until:
                _, _, command = heapq.heappop(staged)
                if not fast_issue:
                    key = (
                        command.type, command.cycle, command.channel,
                        command.rank, command.bank, command.row,
                    )
                    if key == self._last_issued_key:
                        self.stats.squashed_duplicates += 1
                        continue
                    self._last_issued_key = key
                self._issue(command)
                continue
            break
        self.dram.channels[self.channel_id].prune(self.now)


class FastMultiChannelFsController(MultiChannelFsController):
    """Multi-channel composition over fast per-channel FS controllers."""

    SUB_CONTROLLER = FastFixedServiceController

    def _sub_schedule(self, params, num_domains: int):
        return cached_fs_schedule(params, num_domains, SharingLevel.RANK)

    def release_horizon(self) -> Optional[int]:
        """Earliest new-release bound across channels (see the
        single-channel docstring); ``None`` forces the driver back to
        ``next_event`` granularity when any sub-controller is faulted."""
        best: Optional[int] = None
        for controller in self._sub.values():
            if controller.fault_injector is not None:
                return None
            horizon = controller.release_horizon()
            if horizon is not None and (best is None or horizon < best):
                best = horizon
        return best


# ----------------------------------------------------------------------
# Fast FR-FCFS (candidate caching).
# ----------------------------------------------------------------------


class FastFrFcfsController(FrFcfsController):
    """FR-FCFS with per-bank candidate caching.

    The reference controller regroups the whole transaction queue and
    recomputes one earliest-issue candidate per bank after *every*
    issued command.  Bank candidates only change when an event touches
    them, so this variant caches them and invalidates exactly the
    candidates an issued command can move:

    * both queues' candidates for the issued command's own bank (its
      bank-state registers changed),
    * any candidate occupying the issued command-bus cycle,
    * after an ACTIVATE: same-rank ACTIVATE candidates inside the
      ``max(tRRD, tFAW)`` window (the only rank-level ACT constraints),
    * after a column: same-rank column candidates inside the
      ``max(tCCD, read_to_write, write_to_read)`` turnaround window and
      any column candidate whose burst falls within ``tBURST + tRTRS``
      of the new data reservation (data-bus alignment),
    * queue membership changes for the candidate's bank,
    * anything else (refresh, power transitions) flushes the whole rank.

    Every kept candidate is provably unmoved: new constraints only
    introduce lower bounds below the listed horizons, and an earliest-
    time query result above all new bounds is unchanged.  A cached
    candidate with ``issue_at < now`` is recomputed (the lower bound
    ``max(now, arrival)`` may bind); otherwise query flatness guarantees
    the cached cycle equals a fresh computation, so the scheduling
    decisions — and the command trace — are bit-identical to the
    reference controller's.

    On top of the per-bank cache sits a per-queue *lazy winner heap*:
    every computed candidate is pushed as ``(sort key, bank key)``, and
    the scan is replaced by popping until the top entry still matches
    the bank's current cached candidate and has not been overtaken by
    the clock.  Entries orphaned by invalidation trigger a recompute of
    *that bank only* when they surface — so an issued command that
    invalidates `k` candidates costs `O(log n)` amortized, not `k`
    recomputations.  Lazy deletion is exact because recomputation is
    *monotone*: invalidation only ever adds timing lower bounds (and an
    issued command only advances its own bank's state), so a bank's new
    sort key is never smaller than the orphaned key still buried in the
    heap — while enqueues, the one event that can *improve* a bank's
    candidate, eagerly recompute and push at enqueue time.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        nch = self.dram.num_channels
        #: (qkind, rank, bank) -> FIFO of queued requests; qkind 0 = read.
        self._bank_q: List[Dict[Tuple[int, int, int], List[Request]]] = [
            {} for _ in range(nch)
        ]
        #: (qkind, rank, bank) -> (precomputed sort key, candidate).
        self._cand: List[Dict[Tuple[int, int, int], Tuple]] = [
            {} for _ in range(nch)
        ]
        #: Per (channel, qkind) lazy min-heaps of (sort key, bank key).
        self._heaps: List[Tuple[list, list]] = [
            ([], []) for _ in range(nch)
        ]
        #: Bank keys whose cached candidate needs a deferred bus-slot
        #: re-alignment (see :meth:`_shift_candidate`); the stale sort
        #: key is a valid heap lower bound because shifting only ever
        #: moves a candidate later.
        self._dirty: List[set] = [set() for _ in range(nch)]
        #: Enqueue order stamps.  The reference scans the queue in list
        #: order and keeps strictly-better candidates, so exact sort-key
        #: ties go to the bank whose *oldest remaining* request sits
        #: earliest in the queue — a dynamic order (removals promote
        #: younger requests to bank heads).  Stamping every queued
        #: request reproduces it exactly: the reference winner is the
        #: lexicographic minimum of (sort_key, head stamp).
        self._fp_seq = 0

    # -- queue maintenance ---------------------------------------------

    def _refresh_bank(self, ch: int, key: Tuple[int, int, int],
                      requests: List[Request]) -> Tuple:
        """Recompute, cache, and heap-push one bank's candidate."""
        request = self._pick_for_bank(
            self.dram.channels[ch], key[1], key[2], requests
        )
        cand = self._next_command(ch, request)
        entry = (
            (cand.issue_at, 0 if cand.is_column else 1,
             cand.arrival, requests[0]._fp_seq),
            cand,
        )
        self._cand[ch][key] = entry
        self._dirty[ch].discard(key)
        heapq.heappush(self._heaps[ch][key[0]], (entry[0], key))
        return entry

    def enqueue(self, request: Request) -> None:
        ch = request.address.channel
        n_reads = len(self._reads[ch])
        n_writes = len(self._writes[ch])
        super().enqueue(request)
        if len(self._reads[ch]) > n_reads:
            kind = 0
        elif len(self._writes[ch]) > n_writes:
            kind = 1
        else:
            return  # forwarded from the write queue; nothing queued
        request._fp_seq = self._fp_seq
        self._fp_seq += 1
        key = (kind, request.address.rank, request.address.bank)
        requests = self._bank_q[ch].setdefault(key, [])
        requests.append(request)
        # Eager refresh: a new request can only *improve* the bank's
        # candidate (earlier row hit, different pick), and lazy heap
        # deletion cannot surface improvements — push the fresh key now.
        self._refresh_bank(ch, key, requests)

    def _issue_candidate(self, ch: int, candidate: _Candidate) -> None:
        request = candidate.request
        was_column = candidate.is_column
        super()._issue_candidate(ch, candidate)
        if was_column and request is not None:
            key = (
                0 if request.is_read else 1,
                request.address.rank, request.address.bank,
            )
            bank_list = self._bank_q[ch].get(key)
            if bank_list is not None:
                bank_list.remove(request)
                if not bank_list:
                    del self._bank_q[ch][key]

    # -- cache invalidation --------------------------------------------

    def _issue(self, command: Command) -> Optional[int]:
        data_start = super()._issue(command)
        cands = self._cand[command.channel]
        if cands:
            self._invalidate(cands, command, data_start)
        return data_start

    def _invalidate(self, cands, command: Command,
                    data_start: Optional[int]) -> None:
        p = self.params
        cycle = command.cycle
        rank = command.rank
        bank = command.bank
        ctype = command.type
        ch = command.channel
        dead = []
        shifted = []
        if ctype is CommandType.ACTIVATE:
            # Exact new rank-level ACT bounds introduced by this command:
            # the pairwise tRRD gap, and — only when the rank now has a
            # full four-activate window — the sliding tFAW bound, which
            # hangs off the *oldest* windowed activate, not this one.
            horizon = cycle + p.tRRD
            act_times = self.dram.channels[ch].ranks[rank]._act_times
            if len(act_times) == 4:
                faw = act_times[0] + p.tFAW
                if faw > horizon:
                    horizon = faw
            for key, (_, cand) in cands.items():
                if key[1] == rank and (
                    key[2] == bank or (
                        cand.command.type is CommandType.ACTIVATE
                        and cand.issue_at < horizon
                    )
                ):
                    dead.append(key)
                elif cand.issue_at == cycle:
                    shifted.append(key)
        elif ctype.is_column:
            # Direction-aware rank turnaround: a same-direction column
            # is re-bounded by tCCD only; the long read/write turnaround
            # applies only to opposite-direction candidates.
            issued_read = ctype.is_read
            same_horizon = cycle + p.tCCD
            flip_horizon = cycle + (
                p.read_to_write if issued_read else p.write_to_read
            )
            margin = p.tBURST + p.tRTRS
            burst = p.tBURST
            for key, (_, cand) in cands.items():
                if key[1] == rank and key[2] == bank:
                    dead.append(key)
                elif cand.is_column:
                    cand_read = cand.command.type.is_read
                    horizon = (
                        same_horizon if cand_read == issued_read
                        else flip_horizon
                    )
                    if key[1] == rank and cand.issue_at < horizon:
                        dead.append(key)
                    elif cand.issue_at == cycle:
                        shifted.append(key)
                    elif data_start is not None:
                        # Exact data-bus collision window: tRTRS only
                        # separates bursts of *different* ranks, so a
                        # same-rank candidate needs the smaller margin.
                        delta = (
                            cand.issue_at
                            + (p.tCAS if cand_read else p.tCWD)
                            - data_start
                        )
                        limit = burst if key[1] == rank else margin
                        if -limit < delta < limit:
                            shifted.append(key)
                elif cand.issue_at == cycle:
                    shifted.append(key)
        elif ctype is CommandType.PRECHARGE:
            for key, (_, cand) in cands.items():
                if key[1] == rank and key[2] == bank:
                    dead.append(key)
                elif cand.issue_at == cycle:
                    shifted.append(key)
        else:
            # Refresh / power transitions touch rank-wide state:
            # conservative whole-rank flush (rare).
            margin = p.tBURST + p.tRTRS
            for key, (_, cand) in cands.items():
                if key[1] == rank or cand.issue_at == cycle:
                    dead.append(key)
                elif data_start is not None and cand.is_column:
                    offset = (
                        p.tCAS if cand.command.type.is_read else p.tCWD
                    )
                    if abs(cand.issue_at + offset - data_start) < margin:
                        dead.append(key)
        if dead:
            dirty = self._dirty[ch]
            for key in dead:
                del cands[key]
                dirty.discard(key)
        if shifted:
            self._dirty[ch].update(shifted)

    def _shift_candidate(self, ch: int, key, cands) -> None:
        """Re-align a candidate whose only newly-violated constraints
        are bus slots (the issued command's bus cycle / data burst).

        A full recomputation would restart the earliest-time fixpoint
        from the rank/bank bounds — but those are unchanged and at or
        below the cached cycle, and the feasible set only shrank, so
        resuming the climb *from the cached cycle* reaches exactly the
        minimum a fresh query would.  (If the clock has already passed
        the cached cycle the resumed result may land below ``now``; the
        lookup's staleness rule then forces the full recomputation, so
        this shortcut is still exact.)

        Runs *lazily*: invalidation only marks the bank dirty, and the
        fixpoint resumes when the candidate surfaces at the heap top —
        candidates that die before surfacing never pay for it.  Between
        the marking and the shift no rank/bank bound of this candidate
        can have changed (such a change would have classified it dead),
        so the deferred resume computes the same cycle the eager one
        would have; the caller has popped the heap entry, so the
        (possibly unchanged) key is always re-pushed.
        """
        entry = cands[key]
        cand = entry[1]
        cmd = cand.command
        channel = self.dram.channels[ch]
        t = cand.issue_at
        if cand.is_column:
            p = self.params
            offset = p.tCAS if cmd.type.is_read else p.tCWD
            while True:
                t = channel.next_free_cmd_cycle(t)
                ds = channel.earliest_data_start(t + offset, cmd.rank)
                if ds == t + offset:
                    break
                t = ds - offset
        else:
            t = channel.next_free_cmd_cycle(t)
        if t != cand.issue_at:
            cand.issue_at = t
            cand.command = Command(
                cmd.type, t, cmd.channel, cmd.rank, cmd.bank, cmd.row,
                cmd.request_id, cmd.domain,
            )
            old_key = entry[0]
            entry = ((t, old_key[1], old_key[2], old_key[3]), cand)
            cands[key] = entry
        heapq.heappush(self._heaps[ch][key[0]], (entry[0], key))

    # -- candidate selection -------------------------------------------

    def _best_from_queue(self, ch: int, queue: List[Request]):
        if not queue:
            return None
        kind = 0 if queue is self._reads[ch] else 1
        heap = self._heaps[ch][kind]
        cands = self._cand[ch]
        bank_q = self._bank_q[ch]
        dirty = self._dirty[ch]
        now = self.now
        while heap:
            key, bk = heap[0]
            entry = cands.get(bk)
            if entry is not None and entry[0] == key:
                if bk in dirty:
                    # Deferred bus-slot re-alignment: resume the
                    # fixpoint now that the candidate surfaced (its
                    # stale key was a lower bound, so nothing cheaper
                    # is buried below it).
                    heapq.heappop(heap)
                    dirty.discard(bk)
                    self._shift_candidate(ch, bk, cands)
                    continue
                if key[0] >= now:
                    # Live and fresh: by monotonicity every other
                    # bank's current key is at or above this one, and
                    # by query flatness (``issue_at >= now``) a fresh
                    # recomputation would reproduce the cached
                    # candidate verbatim.
                    return entry[1]
            heapq.heappop(heap)
            if entry is not None and entry[0] != key:
                continue  # superseded: the live key has its own entry
            requests = bank_q.get(bk)
            if not requests:
                if entry is not None:
                    del cands[bk]
                continue
            # Invalidated (or clock-stale) bank surfacing at the top:
            # recompute just this bank and re-insert.
            self._refresh_bank(ch, bk, requests)
        return None


# ----------------------------------------------------------------------
# Fast Temporal Partitioning (per-turn blocked-horizon memo).
# ----------------------------------------------------------------------


class FastTpController(TemporalPartitioningController):
    """TP with a per-turn *blocked horizon* memo.

    The reference controller rescans the turn owner's queue (with one
    channel query per bank) on every ``advance`` call, even when nothing
    can possibly issue before the advance horizon.  This variant
    remembers, per (turn, domain, queue version), the earliest cycle at
    which anything could newly become issuable — the minimum over the
    issue times that exceeded the last horizon and the arrivals of not-
    yet-visible requests — and skips the rescan entirely below it.
    Decisions are bit-identical: within the memoized window the scanned
    request set and every (flat) earliest-time query are provably
    unchanged.

    The memo also powers :meth:`next_event`: where the reference reports
    ``now + 1`` whenever the turn owner has queued work (forcing the
    driver to tick), this controller reports the blocked horizon itself.
    Striding straight to the horizon is exact: no command can issue
    before it (so no new release can land inside the stride — a column
    issued at ``t`` completes strictly after ``t``), and every
    earliest-time query is monotone, so other domains' later activity
    can only move the horizon further out, never earlier.
    :meth:`next_turn_start` is the closed form of the reference's
    round-robin probe loop, and :meth:`pending` is O(1) via a running
    counter — both were top-of-profile under the event-horizon driver.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._qver: Dict[int, int] = {
            d: 0 for d in range(self.num_domains)
        }
        self._turn_memo: Optional[Tuple[int, int, int, float]] = None
        self._memo_hint: float = _INF
        self._pending_total = 0

    def enqueue(self, request: Request) -> None:
        super().enqueue(request)
        self._qver[request.domain] += 1
        self._pending_total += 1

    def pending(self, domain: Optional[int] = None) -> int:
        if domain is not None:
            return len(self._queues[domain])
        return self._pending_total

    def next_turn_start(self, domain: int, after: int) -> int:
        """Closed form of the reference probe loop (same values)."""
        length = self.turn_length
        index = after // length
        probe = index + ((domain - index) % self.num_domains)
        if probe == index:
            start = probe * length
            if start + length - self.dead_time > after:
                return start if start > after else after
            probe += self.num_domains
        return probe * length

    def next_event(self) -> Optional[int]:
        now = self.now
        floor = now + 1
        length = self.turn_length
        index = now // length
        num = self.num_domains
        dead_time = self.dead_time
        memo = self._turn_memo
        # Only one (turn, domain) pair can match the memo; resolve it
        # once instead of re-comparing the tuple per domain.
        memo_domain = memo[1] if memo is not None and memo[0] == index \
            else -1
        best = -1
        for domain, queue in self._queues.items():
            if not queue:
                continue
            # Inlined :meth:`next_turn_start` (same values).
            probe = index + ((domain - index) % num)
            if probe == index:
                start = probe * length
                if start + length - dead_time > now:
                    t = start if start > now else now
                else:
                    t = (probe + num) * length
            else:
                t = probe * length
            cand = t if t > floor else floor
            if domain == memo_domain and memo[2] == self._qver[domain]:
                # The memoized horizon: nothing of this domain's can
                # newly issue before it (or, when it is infinite,
                # before the domain's next own turn).
                horizon = min(memo[3], (index + num) * length)
                if horizon > cand:
                    cand = int(horizon)
            if best < 0 or cand < best:
                best = cand
        if self._release_heap:
            release = self._release_heap[0][0]
            if release < floor:
                release = floor
            if best < 0 or release < best:
                best = release
        return best if best >= 0 else None

    def _serve_turn(self, domain: int, cursor: int, deadline: int,
                    until: int) -> None:
        queue = self._queues[domain]
        if not queue:
            return
        turn_index = cursor // self.turn_length
        memo = self._turn_memo
        if memo is not None and memo[0] == turn_index and \
                memo[1] == domain and memo[2] == self._qver[domain] and \
                until < memo[3]:
            return  # provably nothing newly issuable before the memo
        before = len(queue)
        # The reference driver polls every cycle while the turn owner
        # has queued work, so at the poll that finally issues something
        # the scan's lower bound is the *previous cycle* — not the turn
        # start this coarser-striding engine entered with.  Serving with
        # ``max(cursor, until - 1)`` reproduces that bound exactly: the
        # intermediate polls are no-ops (nothing issuable below the
        # memo horizon, and earliest-time queries are monotone in their
        # lower bound), and when the queue only just became nonempty the
        # delivered request's arrival (== until) dominates either way.
        if until - 1 > cursor:
            cursor = until - 1
        super()._serve_turn(domain, cursor, deadline, until)
        self._pending_total -= before - len(queue)
        if queue:
            self._turn_memo = (
                turn_index, domain, self._qver[domain], self._memo_hint
            )

    def _best_turn_command(self, domain: int, cursor: int, deadline: int,
                           until: int):
        # Reference logic plus blocked-horizon collection: every place
        # the reference rejects a request *because of ``until``* records
        # the cycle at which that rejection would flip.
        self._memo_hint = _INF
        queue = self._queues[domain]
        per_bank: Dict[Tuple[int, int, int], List[Request]] = {}
        scanned = 0
        for request in queue:
            if request.arrival >= deadline:
                continue
            if request.arrival > until:
                if request.arrival < self._memo_hint:
                    self._memo_hint = request.arrival
                continue
            scanned += 1
            if scanned > self.SCAN_DEPTH:
                break
            key = request.address.bank_key()
            per_bank.setdefault(key, []).append(request)
        best = None
        for (ch, rank, bank_id), requests in per_bank.items():
            candidate = self._bank_candidate(
                ch, rank, bank_id, requests, cursor, deadline, until
            )
            if candidate is None:
                continue
            if best is None or candidate[0] < best[0]:
                best = candidate
        if best is None:
            return None
        return best[1], best[2]

    def _note_blocked(self, cycle: int) -> None:
        if cycle < self._memo_hint:
            self._memo_hint = cycle

    def _bank_candidate(self, ch: int, rank: int, bank_id: int,
                        requests: List[Request], cursor: int,
                        deadline: int, until: int):
        channel = self.dram.channels[ch]
        bank = channel.bank(rank, bank_id)
        request = requests[0]
        if self.open_page and bank.is_open:
            for candidate in requests:
                if bank.is_row_hit(candidate.address.row):
                    request = candidate
                    break
        addr = request.address
        lower = max(cursor, request.arrival)
        if bank.is_open:
            if bank.is_row_hit(addr.row):
                col_at = channel.earliest_column(
                    lower, rank, bank_id, request.is_read
                )
                if col_at >= deadline:
                    return None
                if col_at > until:
                    self._note_blocked(col_at)
                    return None
                if self.open_page:
                    cmd_type = (
                        CommandType.COL_READ if request.is_read
                        else CommandType.COL_WRITE
                    )
                else:
                    cmd_type = (
                        CommandType.COL_READ_AP if request.is_read
                        else CommandType.COL_WRITE_AP
                    )
                return (
                    (0, col_at, request.arrival),
                    [Command(cmd_type, col_at, ch, rank, bank_id,
                             addr.row, request.req_id, request.domain)],
                    request,
                )
            pre_at = channel.earliest_precharge(lower, rank, bank_id)
            if pre_at >= deadline:
                return None
            if pre_at > until:
                self._note_blocked(pre_at)
                return None
            return (
                (1, pre_at, request.arrival),
                [Command(CommandType.PRECHARGE, pre_at, ch, rank,
                         bank_id, addr.row, request.req_id,
                         request.domain)],
                None,
            )
        act_at = channel.earliest_activate(lower, rank, bank_id)
        if act_at >= deadline:
            return None
        if act_at > until:
            self._note_blocked(act_at)
            return None
        col_at = channel.earliest_column_after_planned_act(
            act_at, rank, request.is_read
        )
        if col_at >= deadline:
            return None
        act_cmd = Command(
            CommandType.ACTIVATE, act_at, ch, rank, bank_id,
            addr.row, request.req_id, request.domain,
        )
        if self.open_page:
            return ((1, act_at, request.arrival), [act_cmd], None)
        cmd_type = (
            CommandType.COL_READ_AP if request.is_read
            else CommandType.COL_WRITE_AP
        )
        col_cmd = Command(
            cmd_type, col_at, ch, rank, bank_id, addr.row,
            request.req_id, request.domain,
        )
        return ((1, act_at, request.arrival), [act_cmd, col_cmd], request)


# ----------------------------------------------------------------------
# The fast driver.
# ----------------------------------------------------------------------


class FastSystem(System):
    """Event-horizon driver: one ``advance`` stride per demand event.

    The reference loop steps the clock through every controller-internal
    event (slot decisions, staged commands, releases).  By advance-
    partition invariance those intermediate advances are redundant: the
    only cycles at which the *driver* must act are request deliveries
    (the controller may not see future-dated enqueues) and pending
    releases (a completion may unblock a core whose next emission bounds
    the following stride).  Statistics accumulate in the same batched
    ``_work`` calls, so every counter matches the reference bit-for-bit.
    """

    engine_name = "fast"

    def run(
        self,
        max_cycles: int = 10_000_000,
        target_reads: Optional[int] = None,
        wall_budget_s: Optional[float] = None,
    ) -> RunResult:
        if target_reads is not None:
            # The read-count cutoff samples the clock mid-stride; keep
            # the reference granularity for it.
            return super().run(max_cycles, target_reads, wall_budget_s)
        controller = self.controller
        clock = 0
        telemetry = self.telemetry
        profiler = (
            telemetry.profiler if telemetry is not None else None
        )
        tracer = telemetry.tracer if telemetry is not None else None
        wall_start = (
            time.monotonic()
            if profiler is not None or tracer is not None else None
        )
        profile_start = wall_start
        deadline = (
            time.monotonic() + wall_budget_s
            if wall_budget_s is not None else None
        )
        # The stride loop runs once per demand event, so its constant
        # factor is the engine's overhead floor: hoist every bound
        # method, track core completion incrementally (``done`` can
        # only flip when that core is pumped), and compute each
        # stride's jump target with single passes instead of building
        # candidate lists.
        cores = self.cores
        staged = self._staged
        pump = self._pump
        core_index = self._core_index
        for i in range(len(cores)):
            pump(i)
        not_done = {i for i, core in enumerate(cores) if not core.done}
        blocked = False
        horizon_fn = getattr(controller, "release_horizon", None)
        drain_fn = controller.drain_deadline
        next_event_fn = controller.next_event
        pending_fn = controller.pending
        can_accept = controller.can_accept
        enqueue = controller.enqueue
        advance = controller.advance
        demand = RequestKind.DEMAND
        monotonic = time.monotonic
        while True:
            if deadline is not None and monotonic() > deadline:
                raise SimTimeoutError(
                    f"wall-clock budget of {wall_budget_s}s exceeded "
                    f"at cycle {clock} (scheme {self.scheme})",
                    cycle=clock,
                )
            if not not_done:
                break
            if clock >= max_cycles:
                break
            tmin = None
            for r in staged:
                if r is not None and (tmin is None or r.arrival < tmin):
                    tmin = r.arrival
            drain = drain_fn()
            if drain is not None and (tmin is None or drain < tmin):
                tmin = drain
            if blocked or pending_fn() > 0:
                # Undispatched demand (or a back-pressured delivery) can
                # create a *new* release at any controller event, so the
                # stride degrades to reference granularity until the
                # queues drain.  With ``pending() == 0`` no dispatch —
                # hence no new release — can occur mid-stride, and the
                # jump to the next arrival/release is exact.  Schedulers
                # with a precomputed timetable can bound the next
                # possible release directly (``release_horizon``), which
                # lets the driver stride over dummy-slot decisions.
                horizon = (
                    horizon_fn() if horizon_fn is not None
                    and not blocked else None
                )
                if horizon is not None:
                    if tmin is None or horizon < tmin:
                        tmin = horizon
                else:
                    next_event = next_event_fn()
                    if next_event is not None and (
                        tmin is None or next_event < tmin
                    ):
                        tmin = next_event
            if tmin is None:
                if next_event_fn() is None:
                    break  # mirror the reference deadlock guard
                # No arrivals and no pending releases can ever occur
                # again: the reference loop would spin through internal
                # events (dummy slots) until max_cycles.  Jump there.
                tmin = max_cycles
            new_clock = tmin if tmin > clock else clock + 1
            if new_clock > max_cycles:
                new_clock = max_cycles
            if profiler is not None:
                profiler.note_stride(new_clock - clock)
            clock = new_clock
            delivered = True
            while delivered:
                delivered = False
                for i, request in enumerate(staged):
                    if request is None or request.arrival > clock:
                        continue
                    if not can_accept(request.domain):
                        continue  # back-pressure: core stalls here
                    enqueue(request)
                    staged[i] = None
                    pump(i)
                    if cores[i].done:
                        not_done.discard(i)
                    delivered = True
            blocked = False
            for r in staged:
                if r is not None and r.arrival <= clock:
                    blocked = True
                    break
            for request in advance(clock):
                if request.kind is not demand:
                    continue
                core = request.core_tag
                if isinstance(core, Core):
                    core.on_complete(request, request.release)
                    i = core_index[id(core)]
                    pump(i)
                    if cores[i].done:
                        not_done.discard(i)
        controller.finalize()
        if profiler is not None:
            profiler.note_run(
                clock, time.monotonic() - profile_start
            )
        if tracer is not None:
            tracer.record_engine_run(
                self.scheme, self.engine_name, clock,
                wall_seconds=time.monotonic() - wall_start,
            )
        return self._collect(clock)
