"""Simulation configuration (Table 1 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cpu.core_model import CoreParams
from ..dram.timing import TimingParams, DDR3_1600_X4
from ..errors import ConfigError
from ..mapping.address import Geometry


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


class _PartitionedSchemesView:
    """Live tuple-like view of registered schemes at one partition level.

    Replaces the hand-maintained name tuples this module used to
    duplicate (and that every new scheme had to be added to by hand):
    membership is now *derived* from each
    :class:`~repro.schemes.SchemeSpec`'s ``partitioning`` field, so a
    user-registered scheme is classified — and geometry-validated —
    automatically.
    """

    def __init__(self, level: str) -> None:
        self._level = level

    def _names(self):
        from ..schemes import REGISTRY

        return REGISTRY.names_where(partitioning=self._level)

    def __iter__(self):
        return iter(self._names())

    def __contains__(self, name: object) -> bool:
        return name in self._names()

    def __len__(self) -> int:
        return len(self._names())

    def __getitem__(self, index):
        return self._names()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (tuple, list)):
            return tuple(self._names()) == tuple(other)
        return NotImplemented

    def __hash__(self):
        return hash(self._names())

    def __repr__(self) -> str:
        return repr(self._names())


#: Schemes that hand each domain whole ranks (registry-derived).
RANK_PARTITIONED_SCHEMES = _PartitionedSchemesView("rank")
#: Schemes that hand each domain a disjoint bank set (registry-derived).
BANK_PARTITIONED_SCHEMES = _PartitionedSchemesView("bank")


@dataclass(frozen=True)
class SystemConfig:
    """Platform parameters shared by every scheme in a comparison."""

    num_cores: int = 8
    timing: TimingParams = DDR3_1600_X4
    geometry: Geometry = field(default_factory=Geometry)
    core: CoreParams = field(default_factory=CoreParams)
    #: Memory accesses to synthesize per core.
    accesses_per_core: int = 3000
    #: Global seed offset for trace generation.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("need at least one core")
        if self.accesses_per_core < 1:
            raise ConfigError("need at least one access per core")
        g = self.geometry
        for name in ("channels", "ranks", "banks", "rows", "columns"):
            value = getattr(g, name)
            if value < 1:
                raise ConfigError(
                    f"geometry.{name} must be positive, got {value}"
                )

    def validate_for_scheme(self, scheme: str) -> None:
        """Check the platform can actually host ``scheme``.

        Partitioned schemes carve the geometry into per-domain shares;
        requesting them with fewer ranks/banks than security domains (or
        with a bank count the per-row interleave cannot split evenly)
        would silently alias domains onto shared resources — the exact
        leak the scheme claims to close.  Fail loudly instead.

        The partition level comes from the scheme's registered
        :class:`~repro.schemes.SchemeSpec`; names not (yet) in the
        registry validate leniently, preserving the historical
        behaviour for ad-hoc strings.
        """
        from ..schemes import REGISTRY

        spec = REGISTRY.find(scheme)
        if spec is None:
            return
        g = self.geometry
        n = self.num_cores
        if spec.partitioning == "rank":
            total_ranks = g.channels * g.ranks
            if total_ranks < n:
                raise ConfigError(
                    f"scheme {scheme!r} rank-partitions {n} domains but "
                    f"the geometry has only {total_ranks} rank(s) "
                    f"({g.channels} channel(s) x {g.ranks} rank(s)); "
                    f"need at least one rank per domain"
                )
        if spec.partitioning == "bank":
            total_banks = g.channels * g.ranks * g.banks
            if total_banks < n:
                raise ConfigError(
                    f"scheme {scheme!r} bank-partitions {n} domains but "
                    f"the geometry has only {total_banks} bank(s); "
                    f"need at least one bank per domain"
                )
            if not _is_power_of_two(g.banks):
                raise ConfigError(
                    f"scheme {scheme!r} interleaves within bank shares; "
                    f"banks per rank must be a power of two, got "
                    f"{g.banks}"
                )

    def with_cores(self, num_cores: int) -> "SystemConfig":
        """A copy scaled to a different core count with as many ranks as
        cores (the Figure 10 sensitivity setup)."""
        geometry = Geometry(
            channels=self.geometry.channels,
            ranks=max(num_cores, 1),
            banks=self.geometry.banks,
            rows=self.geometry.rows,
            columns=self.geometry.columns,
        )
        return SystemConfig(
            num_cores=num_cores,
            timing=self.timing,
            geometry=geometry,
            core=self.core,
            accesses_per_core=self.accesses_per_core,
            seed=self.seed,
        )


#: Default configuration for the paper's main experiments.
TABLE1_CONFIG = SystemConfig()


def full_target_config(accesses_per_core: int = 300) -> SystemConfig:
    """The paper's full target platform (Section 4.1): a 32-core
    processor with four channels of eight ranks.  The paper's own
    evaluation simulates one channel with eight cores for simulation
    time; this configuration drives the whole machine."""
    return SystemConfig(
        num_cores=32,
        geometry=Geometry(channels=4, ranks=8, banks=8),
        accesses_per_core=accesses_per_core,
    )
