"""Simulation configuration (Table 1 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cpu.core_model import CoreParams
from ..dram.timing import TimingParams, DDR3_1600_X4
from ..mapping.address import Geometry


@dataclass(frozen=True)
class SystemConfig:
    """Platform parameters shared by every scheme in a comparison."""

    num_cores: int = 8
    timing: TimingParams = DDR3_1600_X4
    geometry: Geometry = field(default_factory=Geometry)
    core: CoreParams = field(default_factory=CoreParams)
    #: Memory accesses to synthesize per core.
    accesses_per_core: int = 3000
    #: Global seed offset for trace generation.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.accesses_per_core < 1:
            raise ValueError("need at least one access per core")

    def with_cores(self, num_cores: int) -> "SystemConfig":
        """A copy scaled to a different core count with as many ranks as
        cores (the Figure 10 sensitivity setup)."""
        geometry = Geometry(
            channels=self.geometry.channels,
            ranks=max(num_cores, 1),
            banks=self.geometry.banks,
            rows=self.geometry.rows,
            columns=self.geometry.columns,
        )
        return SystemConfig(
            num_cores=num_cores,
            timing=self.timing,
            geometry=geometry,
            core=self.core,
            accesses_per_core=self.accesses_per_core,
            seed=self.seed,
        )


#: Default configuration for the paper's main experiments.
TABLE1_CONFIG = SystemConfig()


def full_target_config(accesses_per_core: int = 300) -> SystemConfig:
    """The paper's full target platform (Section 4.1): a 32-core
    processor with four channels of eight ranks.  The paper's own
    evaluation simulates one channel with eight cores for simulation
    time; this configuration drives the whole machine."""
    return SystemConfig(
        num_cores=32,
        geometry=Geometry(channels=4, ranks=8, banks=8),
        accesses_per_core=accesses_per_core,
    )
