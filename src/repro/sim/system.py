"""System simulation: cores <-> memory controller <-> DRAM.

:class:`System` owns a set of trace-driven cores, a partition policy (the
OS page-coloring component) and one memory controller, and advances them
together in event order:

1. each core exposes at most one *undelivered* next request (requests are
   emitted lazily, so memory use is bounded);
2. the clock jumps to the earlier of the next request arrival and the
   controller's next internal event;
3. due requests are delivered, the controller advances, and completions
   are pushed back into their cores, potentially unblocking new requests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..controllers.base import MemoryController
from ..errors import SimTimeoutError
from ..cpu.core_model import Core
from ..dram.commands import Request, RequestKind
from ..dram.power import EnergyBreakdown, PowerModel
from ..mapping.partition import PartitionPolicy


@dataclass
class CoreResult:
    """Per-core outcome of a run."""

    domain: int
    workload: str
    instructions: int
    reads_completed: int
    ipc: float
    done: bool
    profile: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class RunResult:
    """Everything a benchmark needs from one simulation."""

    scheme: str
    cycles: int
    cores: List[CoreResult]
    stats: object  # ControllerStats
    bus_utilization: float
    energy: EnergyBreakdown
    service_trace: Dict[int, List[Tuple[int, str]]]
    #: FS accounting-only energy adjustments, when the controller has any.
    adjustments: object = None
    #: Fault strikes by kind name (None when no injector was armed);
    #: seed-deterministic, so identical across engines.
    faults: Optional[Dict[str, int]] = None

    @property
    def total_reads(self) -> int:
        return sum(c.reads_completed for c in self.cores)

    @property
    def ipcs(self) -> List[float]:
        return [c.ipc for c in self.cores]

    def weighted_ipc(self, baseline: "RunResult") -> float:
        """Sum of per-core IPCs normalized to a baseline run."""
        total = 0.0
        for mine, theirs in zip(self.cores, baseline.cores):
            if theirs.ipc > 0:
                total += mine.ipc / theirs.ipc
        return total


class System:
    """One platform instance ready to run."""

    #: Engine label stamped on run spans (overridden by the fast driver).
    engine_name = "reference"

    def __init__(
        self,
        controller: MemoryController,
        partition: PartitionPolicy,
        cores: Sequence[Core],
        power_model: Optional[PowerModel] = None,
        scheme: str = "unnamed",
    ) -> None:
        if len(cores) != controller.num_domains:
            raise ValueError("one core per security domain required")
        self.controller = controller
        self.partition = partition
        self.cores = list(cores)
        self.scheme = scheme
        self.power_model = power_model or PowerModel(
            controller.params
        )
        #: Optional :class:`~repro.telemetry.session.TelemetrySession`;
        #: set by the runner when observability is requested.  The fast
        #: driver reads its profiler for stride/wall-clock accounting.
        self.telemetry = None
        self._staged: List[Optional[Request]] = [None] * len(self.cores)
        self._core_index: Dict[int, int] = {
            id(core): i for i, core in enumerate(self.cores)
        }

    # ------------------------------------------------------------------

    def _pump(self, index: int) -> None:
        """Refill the core's one-deep emission buffer if possible."""
        if self._staged[index] is not None:
            return
        request = self.cores[index].try_emit()
        if request is None:
            return
        request.address = self.partition.decode(
            request.domain, request.line
        )
        self._staged[index] = request

    def run(
        self,
        max_cycles: int = 10_000_000,
        target_reads: Optional[int] = None,
        wall_budget_s: Optional[float] = None,
    ) -> RunResult:
        """Simulate until every core finishes (or a bound is hit).

        ``wall_budget_s`` arms a wall-clock budget for the run; when it
        is exceeded a :class:`~repro.errors.SimTimeoutError` is raised so
        a sweep can record the cell as failed and keep going instead of
        hanging the whole grid on one pathological point.
        """
        controller = self.controller
        clock = 0
        reads_done = 0
        telemetry = self.telemetry
        profiler = telemetry.profiler if telemetry is not None else None
        tracer = telemetry.tracer if telemetry is not None else None
        wall_start = (
            time.monotonic()
            if profiler is not None or tracer is not None else None
        )
        profile_start = wall_start
        deadline = (
            time.monotonic() + wall_budget_s
            if wall_budget_s is not None else None
        )
        iterations = 0
        for i in range(len(self.cores)):
            self._pump(i)
        while True:
            if deadline is not None and iterations % 256 == 0 and (
                time.monotonic() > deadline
            ):
                raise SimTimeoutError(
                    f"wall-clock budget of {wall_budget_s}s exceeded "
                    f"at cycle {clock} (scheme {self.scheme})",
                    cycle=clock,
                )
            iterations += 1
            if all(core.done for core in self.cores):
                break
            if target_reads is not None and reads_done >= target_reads:
                break
            if clock >= max_cycles:
                break
            arrivals = [
                r.arrival for r in self._staged if r is not None
            ]
            ctrl_next = controller.next_event()
            candidates = list(arrivals)
            if ctrl_next is not None:
                candidates.append(ctrl_next)
            if not candidates:
                break  # deadlock guard: nothing can ever happen again
            clock = max(clock + 1, min(candidates))
            clock = min(clock, max_cycles)
            delivered = True
            while delivered:
                delivered = False
                for i, request in enumerate(self._staged):
                    if request is None or request.arrival > clock:
                        continue
                    if not controller.can_accept(request.domain):
                        continue  # back-pressure: core stalls here
                    controller.enqueue(request)
                    self._staged[i] = None
                    self._pump(i)
                    delivered = True
            for request in controller.advance(clock):
                if request.kind is not RequestKind.DEMAND:
                    continue
                core = request.core_tag
                if isinstance(core, Core):
                    core.on_complete(request, request.release)
                    reads_done += 1
                    self._pump(self._core_index[id(core)])
        controller.finalize()
        if profiler is not None:
            profiler.note_run(
                clock, time.monotonic() - profile_start
            )
        if tracer is not None:
            tracer.record_engine_run(
                self.scheme, self.engine_name, clock,
                wall_seconds=time.monotonic() - wall_start,
            )
        return self._collect(clock)

    # ------------------------------------------------------------------

    def _collect(self, clock: int) -> RunResult:
        core_results = []
        for core in self.cores:
            core_results.append(CoreResult(
                domain=core.domain,
                workload=core.trace.name,
                instructions=core.retired_instructions(clock),
                reads_completed=core.stat_reads_completed,
                ipc=core.ipc(clock),
                done=core.done,
                profile=core.completion_profile(),
            ))
        energy = self.power_model.system_energy(self.controller.dram)
        injector = getattr(self.controller, "fault_injector", None)
        faults = (
            injector.counts_by_name() if injector is not None else None
        )
        return RunResult(
            scheme=self.scheme,
            cycles=clock,
            cores=core_results,
            stats=self.controller.stats,
            bus_utilization=self.controller.dram.bus_utilization(clock),
            energy=energy,
            service_trace=self.controller.service_trace,
            adjustments=getattr(self.controller, "adjustments", None),
            faults=faults,
        )
