"""Simulation wiring: configuration, the system event loop, and runners."""

from .config import SystemConfig, TABLE1_CONFIG, full_target_config
from .multichannel import MultiChannelFsController
from .system import CoreResult, RunResult, System
from .runner import (
    ENGINES,
    SCHEMES,
    SchemeOptions,
    build_controller,
    build_system,
    partition_for,
    run_scheme,
)
from .sweep import FailedPoint, Sweep, SweepPoint

__all__ = [
    "SystemConfig", "TABLE1_CONFIG", "full_target_config",
    "MultiChannelFsController",
    "CoreResult", "RunResult", "System",
    "ENGINES", "SCHEMES", "SchemeOptions", "build_controller",
    "build_system", "partition_for", "run_scheme",
    "FailedPoint", "Sweep", "SweepPoint",
]
