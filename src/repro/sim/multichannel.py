"""Multi-channel Fixed Service: the paper's full target system.

The paper's platform is a 32-core processor with four channels of eight
ranks (Section 4.1); its evaluation simulates one channel with eight
cores to bound Simics time.  Channels have private buses, so the full
system is simply one FS controller per channel, each serving the
domains whose ranks live there — this module provides the composition.

:class:`MultiChannelFsController` groups domains by the channel their
partition assigns them to, builds one rank-partitioned FS timetable per
channel, and routes requests.  Security composes: each sub-controller is
non-interfering among its own domains, and domains on different channels
share nothing at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..controllers.base import MemoryController
from ..core.fs_controller import FixedServiceController
from ..core.pipeline_solver import SharingLevel
from ..core.schedule import build_fs_schedule
from ..dram.commands import Request
from ..dram.system import DramSystem
from ..errors import ConfigError
from ..mapping.partition import PartitionPolicy, RankPartition


class _ChannelLocalPartition(PartitionPolicy):
    """A view of a global partition restricted to one channel, with
    domain ids renumbered 0..k-1 for the channel's sub-controller."""

    def __init__(
        self,
        parent: PartitionPolicy,
        channel: int,
        global_domains: List[int],
    ) -> None:
        super().__init__(parent.geometry, len(global_domains))
        self.parent = parent
        self.channel = channel
        self.global_domains = list(global_domains)

    @property
    def level(self) -> str:
        return self.parent.level

    def decode(self, domain: int, line: int):
        self._check_domain(domain)
        return self.parent.decode(self.global_domains[domain], line)

    def resources(self, domain: int):
        self._check_domain(domain)
        return [
            r for r in self.parent.resources(self.global_domains[domain])
            if r[0] == self.channel
        ]


class MultiChannelFsController(MemoryController):
    """One FS_RP controller per channel, composed behind one interface."""

    #: Per-channel controller class; the fast-path engine overrides this
    #: (:mod:`repro.sim.fastpath`) to slot in its trusted-issue subclass.
    SUB_CONTROLLER = FixedServiceController

    def __init__(
        self,
        dram: DramSystem,
        partition: RankPartition,
        num_domains: int,
        log_commands: bool = False,
    ) -> None:
        super().__init__(dram, num_domains, log_commands)
        # Group domains by the (single) channel their ranks live on.
        by_channel: Dict[int, List[int]] = {}
        for d in range(num_domains):
            channels = {ch for ch, _, _ in partition.resources(d)}
            if len(channels) != 1:
                raise ConfigError(
                    f"domain {d} spans channels {sorted(channels)}; "
                    "multi-channel FS needs channel-local domains"
                )
            by_channel.setdefault(channels.pop(), []).append(d)
        self._sub: Dict[int, FixedServiceController] = {}
        self._local_id: Dict[int, Tuple[int, int]] = {}
        for channel, domains in sorted(by_channel.items()):
            schedule = self._sub_schedule(dram.params, len(domains))
            view = _ChannelLocalPartition(partition, channel, domains)
            controller = self.SUB_CONTROLLER(
                dram, schedule, view, channel=channel,
                log_commands=log_commands,
            )
            self._sub[channel] = controller
            for local, global_id in enumerate(domains):
                self._local_id[global_id] = (channel, local)

    def _sub_schedule(self, params, num_domains: int):
        """Build the per-channel FS timetable (overridable for caching)."""
        return build_fs_schedule(params, num_domains, SharingLevel.RANK)

    # ------------------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        channel, local = self._local_id[request.domain]
        request.domain = local
        self._sub[channel].enqueue(request)

    def pending(self, domain: Optional[int] = None) -> int:
        if domain is None:
            return sum(c.pending() for c in self._sub.values())
        channel, local = self._local_id[domain]
        return self._sub[channel].pending(local)

    def can_accept(self, domain: int) -> bool:
        """Back-pressure routes to the domain's own channel controller."""
        channel, local = self._local_id[domain]
        return self._sub[channel].can_accept(local)

    def next_event(self) -> Optional[int]:
        events = [c.next_event() for c in self._sub.values()]
        events = [e for e in events if e is not None]
        return min(events) if events else None

    def drain_deadline(self) -> Optional[int]:
        """Earliest pending release across all channels.

        The base-class implementation reads ``self._release_heap``, which
        this composite never populates (each sub-controller owns its own
        heap), so without this override the fast driver would see ``None``
        and jump past in-flight releases.
        """
        deadlines = [c.drain_deadline() for c in self._sub.values()]
        deadlines = [d for d in deadlines if d is not None]
        return min(deadlines) if deadlines else None

    def busy(self) -> bool:
        return any(c.busy() for c in self._sub.values())

    def advance(self, until: int):
        self.now = until
        released = []
        for controller in self._sub.values():
            released.extend(controller.advance(until))
        released.sort(key=lambda r: (r.release, r.req_id))
        return released

    def _work(self, until: int) -> None:  # pragma: no cover - unused
        raise NotImplementedError("advance() fans out directly")

    @property
    def command_log(self):
        log = []
        for controller in self._sub.values():
            log.extend(controller.command_log)
        return log

    @command_log.setter
    def command_log(self, value) -> None:
        # Base-class __init__ assigns an empty list; sub-controllers own
        # the real logs.
        pass

    @property
    def service_trace(self):
        merged = {}
        for global_id, (channel, local) in self._local_id.items():
            merged[global_id] = self._sub[channel].service_trace[local]
        return merged

    @service_trace.setter
    def service_trace(self, value) -> None:
        pass

    def attach_telemetry(self, session) -> None:
        """Fan the session out to every per-channel sub-controller.

        Sub-controllers trace with *channel-local* domain ids, so each
        one registers its local -> global renumbering with the session:
        metric labels and trace tracks stay globally consistent.
        """
        super().attach_telemetry(session)
        by_sub: Dict[int, Dict[int, int]] = {}
        for global_id, (channel, local) in self._local_id.items():
            by_sub.setdefault(channel, {})[local] = global_id
        for channel, controller in self._sub.items():
            controller.attach_telemetry(session)
            session.register_domain_map(
                controller, by_sub.get(channel, {})
            )

    def finalize(self) -> None:
        self.dram.finalize(self.now)

    @property
    def stats(self):
        """Combined ControllerStats across channels (sub-controllers do
        the per-release accounting)."""
        return self.aggregate_stats()

    @stats.setter
    def stats(self, value) -> None:
        pass  # base-class __init__ assigns a placeholder

    def aggregate_stats(self):
        """Combined ControllerStats across channels."""
        from ..controllers.base import ControllerStats

        total = ControllerStats()
        for controller in self._sub.values():
            s = controller.stats
            total.demand_reads += s.demand_reads
            total.demand_writes += s.demand_writes
            total.prefetches += s.prefetches
            total.dummies += s.dummies
            total.suppressed_dummies += s.suppressed_dummies
            total.row_hit_boosts += s.row_hit_boosts
            total.read_latency_sum += s.read_latency_sum
            total.read_count += s.read_count
            total.bubbles += s.bubbles
            total.blocked_slots += s.blocked_slots
        return total
