"""Spec interpreters: turn a :class:`SchemeSpec` into a live system.

Where :mod:`repro.schemes.spec` makes scheme *identity* data, this
module holds the handful of *construction recipes* — one builder per
``family`` — that interpret a spec against a platform configuration.
The old ~180-line ``if scheme == ...`` chain in ``sim/runner.py``
collapses into these table lookups:

* :func:`build_partition` reads ``spec.partitioning``;
* :func:`build_from_spec` dispatches on ``spec.family`` through
  :data:`BUILDERS` and instantiates the controller class the spec names
  (resolved lazily from its dotted path, per engine).

Adding a scheme therefore never touches the runner: either reuse an
existing family with a new spec (different controller subclass, solver
inputs, partitioning), or register a new family with
:func:`register_builder`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..controllers.base import MemoryController
from ..controllers.tp import default_turn_length
from ..dram.system import DramSystem
from ..errors import SchemeError
from ..mapping.partition import (
    BankPartition,
    NoPartition,
    PartitionPolicy,
    RankPartition,
)
from .spec import SchemeSpec

#: family name -> builder callable.  Signature:
#: ``builder(spec, config, partition, options, fault_injector, engine)``.
BUILDERS: Dict[str, Callable[..., MemoryController]] = {}


def register_builder(family: str, replace: bool = False):
    """Decorator registering a construction recipe for ``family``."""

    def decorate(fn):
        if family in BUILDERS and not replace:
            raise SchemeError(
                f"builder for family {family!r} already registered"
            )
        BUILDERS[family] = fn
        return fn

    return decorate


def builder_for(family: str) -> Callable[..., MemoryController]:
    """The construction recipe registered for ``family``."""
    try:
        return BUILDERS[family]
    except KeyError:
        raise SchemeError(
            f"no builder registered for scheme family {family!r}; "
            f"known families: {', '.join(sorted(BUILDERS))}"
        ) from None


# ----------------------------------------------------------------------
# Shared construction helpers.
# ----------------------------------------------------------------------

def channel_part_geometry(config):
    """One private channel per domain (Section 4.1, <= 4 threads).

    The configured geometry is widened to ``num_cores`` channels while
    keeping per-channel resources, so each domain owns a whole channel.
    """
    from ..mapping.address import Geometry

    g = config.geometry
    return Geometry(
        channels=max(g.channels, config.num_cores),
        ranks=g.ranks, banks=g.banks, rows=g.rows, columns=g.columns,
    )


def _dram_for(config, geometry=None) -> DramSystem:
    g = geometry if geometry is not None else config.geometry
    return DramSystem(
        config.timing,
        num_channels=g.channels,
        ranks_per_channel=g.ranks,
        banks_per_rank=g.banks,
    )


def _refresh_for(spec: SchemeSpec, config, options):
    """A refresh timetable when the spec supports one and the options
    ask for one."""
    if not spec.supports_refresh or not options.refresh:
        return None
    from ..dram.refresh import RefreshScheduler

    return RefreshScheduler(config.timing, config.geometry.ranks)


def build_partition(
    spec: SchemeSpec, config, options=None
) -> PartitionPolicy:
    """The partition policy the spec's ``partitioning`` field declares."""
    if spec.partitioning == "channel":
        from ..mapping.partition import ChannelPartition

        return ChannelPartition(
            channel_part_geometry(config), config.num_cores
        )
    if spec.partitioning == "rank":
        return RankPartition(config.geometry, config.num_cores)
    if spec.partitioning == "bank":
        return BankPartition(config.geometry, config.num_cores)
    mapper = None
    if options is not None and options.address_order is not None:
        from ..mapping.address import AddressMapper

        mapper = AddressMapper(config.geometry, options.address_order)
    return NoPartition(config.geometry, config.num_cores, mapper=mapper)


def build_from_spec(
    spec: SchemeSpec,
    config,
    partition: PartitionPolicy,
    options,
    fault_injector=None,
    engine: str = "reference",
) -> MemoryController:
    """Interpret a spec: dispatch to its family's builder."""
    return builder_for(spec.family)(
        spec, config, partition, options, fault_injector, engine
    )


# ----------------------------------------------------------------------
# Built-in families.
# ----------------------------------------------------------------------

@register_builder("frfcfs")
def _build_frfcfs(spec, config, partition, options, injector, engine):
    """Open-page FR-FCFS with write drain (the non-secure baseline and,
    over private channels, the trivially secure ``channel_part``)."""
    geometry = None
    if spec.partitioning == "channel":
        # Private channels: a normal high-performance scheduler is
        # secure because nothing is shared (Section 4.1).
        geometry = channel_part_geometry(config)
    cls = spec.controller_class(engine)
    return cls(
        _dram_for(config, geometry), config.num_cores,
        refresh=_refresh_for(spec, config, options),
        log_commands=options.log_commands,
    )


@register_builder("fcfs")
def _build_fcfs(spec, config, partition, options, injector, engine):
    """Strict FCFS, closed page (reference only; the fast engine reuses
    the reference controller and gains from the fast *driver* alone)."""
    cls = spec.controller_class(engine)
    return cls(
        _dram_for(config), config.num_cores,
        log_commands=options.log_commands,
    )


@register_builder("tp")
def _build_tp(spec, config, partition, options, injector, engine):
    """Temporal Partitioning (Wang et al., HPCA 2014) with per-spec
    bank partitioning and option-driven turn length."""
    bank_partitioned = spec.partitioning == "bank"
    turn = options.turn_length or default_turn_length(bank_partitioned)
    cls = spec.controller_class(engine)
    return cls(
        _dram_for(config), config.num_cores, turn_length=turn,
        bank_partitioned=bank_partitioned,
        log_commands=options.log_commands,
    )


@register_builder("fs")
def _build_fs(spec, config, partition, options, injector, engine):
    """Fixed Service with a solved periodic timetable at the spec's
    sharing level (rank / bank / none partitioning, Sections 4-5)."""
    from ..core.schedule import build_fs_schedule

    sharing = spec.sharing_level()
    n = config.num_cores
    if engine == "fast":
        from ..sim import fastpath

        schedule = fastpath.cached_fs_schedule(
            config.timing, n, sharing,
            slots_per_domain=options.slots_per_domain,
        )
    else:
        schedule = build_fs_schedule(
            config.timing, n, sharing,
            slots_per_domain=options.slots_per_domain,
        )
    prefetchers = None
    if spec.supports_prefetch and options.prefetch:
        from ..prefetch.sandbox import SandboxPrefetcher

        prefetchers = {d: SandboxPrefetcher(seed=d) for d in range(n)}
    cls = spec.controller_class(engine)
    return cls(
        _dram_for(config), schedule, partition,
        energy_options=options.energy,
        prefetchers=prefetchers,
        refresh=_refresh_for(spec, config, options),
        log_commands=options.log_commands,
        fault_injector=injector,
    )


@register_builder("fs_ta")
def _build_fs_ta(spec, config, partition, options, injector, engine):
    """Fixed Service, triple alternation: rotating bank-class masks,
    no OS partitioning support needed (Section 6)."""
    from ..core.schedule import build_triple_alternation_schedule

    n = config.num_cores
    if engine == "fast":
        from ..sim import fastpath

        schedule = fastpath.cached_triple_alternation_schedule(
            config.timing, n
        )
    else:
        schedule = build_triple_alternation_schedule(config.timing, n)
    cls = spec.controller_class(engine)
    return cls(
        _dram_for(config), schedule, partition,
        energy_options=options.energy,
        log_commands=options.log_commands,
        fault_injector=injector,
    )


@register_builder("fs_reordered")
def _build_fs_reordered(spec, config, partition, options, injector,
                        engine):
    """Fixed Service, reordered bank partitioning (read/write windows)."""
    cls = spec.controller_class(engine)
    return cls(
        _dram_for(config), partition, config.num_cores,
        energy_options=options.energy,
        log_commands=options.log_commands,
        fault_injector=injector,
    )


@register_builder("fs_multichannel")
def _build_fs_multichannel(spec, config, partition, options, injector,
                           engine):
    """One rank-partitioned FS controller per channel (the paper's full
    32-core, 4-channel target system)."""
    cls = spec.controller_class(engine)
    return cls(
        _dram_for(config), partition, config.num_cores,
        log_commands=options.log_commands,
    )


__all__ = [
    "BUILDERS",
    "build_from_spec",
    "build_partition",
    "builder_for",
    "channel_part_geometry",
    "register_builder",
]
