"""Declarative scheme descriptions: :class:`SchemeSpec`.

The paper's contribution is a *family* of Fixed Service design points
(Table 2: spatial partitioning level x pipeline family, each with its
solved slot gap ``l`` and interval ``Q``).  A :class:`SchemeSpec` turns
one design point into **data**: a frozen, hashable, picklable record
naming the partitioning level, the construction family, the controller
classes (as dotted import paths, so a spec survives a trip through
``pickle`` into a spawn-started worker process), the solver inputs, and
the paper's published expectations.

Scheme *identity* lives here; scheme *construction* lives in
:mod:`repro.schemes.builders`, which interprets the spec.  Nothing in
this module imports the simulator, so specs are cheap to create, ship
across processes, and compare.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, fields
from typing import Optional, Tuple

from ..errors import SchemeError

#: Spatial partitioning levels a spec may declare (Section 4 of the
#: paper: private channels, private ranks, private bank sets, or fully
#: shared geometry).
PARTITIONINGS: Tuple[str, ...] = ("none", "rank", "bank", "channel")

#: Sharing levels accepted by the FS pipeline solver, as spec strings.
SHARINGS: Tuple[str, ...] = ("rank", "bank", "none")


def resolve(path: str):
    """Import a dotted ``module.Attr`` path and return the attribute.

    Specs carry *paths*, not classes, so they stay picklable and a
    spawn-started worker resolves them against its own fresh imports.
    """
    module_name, _, attr = path.rpartition(".")
    if not module_name:
        raise SchemeError(
            f"controller path {path!r} is not a dotted module path"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SchemeError(
            f"cannot import {module_name!r} for controller path "
            f"{path!r}: {exc}"
        ) from exc
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise SchemeError(
            f"module {module_name!r} has no attribute {attr!r} "
            f"(controller path {path!r})"
        ) from exc


@dataclass(frozen=True)
class SchemeSpec:
    """One memory-scheduling design point, declaratively.

    Every field is a plain string/int/bool, so a spec is hashable,
    picklable, and comparable — the properties the multiprocess sweep
    executor relies on to ship scheme definitions into worker processes.
    """

    #: Registry key; the name the CLI, ``run_scheme`` and sweeps use.
    name: str
    #: One-line description (shown by ``repro schemes`` style tooling).
    description: str = ""
    #: Construction recipe: which builder interprets this spec
    #: (:mod:`repro.schemes.builders` maps family -> builder function).
    family: str = "fs"
    #: Spatial partitioning level (one of :data:`PARTITIONINGS`).
    partitioning: str = "none"
    #: Dotted import path of the reference-engine controller class.
    controller: str = ""
    #: Dotted import path of the cycle-skipping fast-engine controller;
    #: ``None`` means the reference class also serves the fast driver
    #: (e.g. strict FCFS, which gains from the driver alone).
    fast_controller: Optional[str] = None
    #: FS solver sharing level (one of :data:`SHARINGS`) for families
    #: that build a fixed timetable; ``None`` otherwise.
    sharing: Optional[str] = None
    #: The paper's solved minimal slot gap ``l`` (Table 2), when the
    #: design point has one.
    expected_l: Optional[int] = None
    #: The paper's interval length ``Q`` for 8 threads (Table 2).
    expected_q: Optional[int] = None
    #: One FS controller per channel (the full 32-core target system).
    multi_channel: bool = False
    #: Read/write reorder window ``Q`` for the reordered-BP pipeline.
    reorder_window: Optional[int] = None
    #: The builder honours ``SchemeOptions.refresh`` for this scheme.
    supports_refresh: bool = False
    #: The builder arms sandbox prefetchers on ``SchemeOptions.prefetch``.
    supports_prefetch: bool = False
    #: The scheme claims timing-channel freedom (drives security suites
    #: and the ``repro stats`` cadence verdict via :attr:`fixed_service`).
    secure: bool = True
    #: Fixed Service family member: its inter-service cadence must be
    #: degenerate (single-gap), the paper's invariance observable.
    fixed_service: bool = False
    #: The adversarial two-world certification harness
    #: (:mod:`repro.certify`) accepts this scheme.  Defaults to True —
    #: certification states facts about *measured* leakage, so even
    #: non-secure schemes run (and fail, which is the point).  Set False
    #: for schemes whose construction falls outside the protocol (e.g.
    #: reference-only controllers with no per-domain service contract).
    certifiable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemeError("a scheme spec needs a non-empty name")
        if not self.family:
            raise SchemeError(
                f"scheme {self.name!r}: family must be non-empty"
            )
        if self.partitioning not in PARTITIONINGS:
            raise SchemeError(
                f"scheme {self.name!r}: unknown partitioning "
                f"{self.partitioning!r} (expected one of "
                f"{', '.join(PARTITIONINGS)})"
            )
        if self.sharing is not None and self.sharing not in SHARINGS:
            raise SchemeError(
                f"scheme {self.name!r}: unknown sharing "
                f"{self.sharing!r} (expected one of "
                f"{', '.join(SHARINGS)})"
            )
        if not self.controller:
            raise SchemeError(
                f"scheme {self.name!r}: controller import path required"
            )
        for label, value in (
            ("expected_l", self.expected_l),
            ("expected_q", self.expected_q),
            ("reorder_window", self.reorder_window),
        ):
            if value is not None and value < 1:
                raise SchemeError(
                    f"scheme {self.name!r}: {label} must be positive, "
                    f"got {value}"
                )

    # ------------------------------------------------------------------

    def controller_path(self, engine: str = "reference") -> str:
        """The dotted controller path the given engine instantiates."""
        if engine == "fast" and self.fast_controller is not None:
            return self.fast_controller
        return self.controller

    def controller_class(self, engine: str = "reference"):
        """Resolve (import) the controller class for an engine."""
        return resolve(self.controller_path(engine))

    def sharing_level(self):
        """The spec's sharing as a solver :class:`SharingLevel` enum."""
        from ..core.pipeline_solver import SharingLevel

        if self.sharing is None:
            raise SchemeError(
                f"scheme {self.name!r} declares no sharing level"
            )
        return SharingLevel(self.sharing)

    def replace(self, **changes) -> "SchemeSpec":
        """A copy with fields replaced (``dataclasses.replace`` sugar)."""
        import dataclasses

        return dataclasses.replace(self, **changes)

    def summary(self) -> str:
        """One human-readable line for listings."""
        bits = [f"partitioning={self.partitioning}",
                f"family={self.family}"]
        if self.expected_l is not None:
            bits.append(f"l={self.expected_l}")
        if self.expected_q is not None:
            bits.append(f"Q={self.expected_q}")
        if not self.secure:
            bits.append("non-secure")
        return f"{self.name}: {self.description or '-'} " \
               f"({', '.join(bits)})"


def spec_fields() -> Tuple[str, ...]:
    """The spec's field names (stable schema surface for docs/tests)."""
    return tuple(f.name for f in fields(SchemeSpec))


__all__ = [
    "PARTITIONINGS",
    "SHARINGS",
    "SchemeSpec",
    "resolve",
    "spec_fields",
]
