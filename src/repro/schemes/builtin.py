"""The paper's scheme family, registered declaratively (Table 2).

Every design point the figures compare is one :class:`SchemeSpec` —
partitioning level, pipeline family, controller classes for both
engines, and the published ``l``/``Q`` solutions.  Registration order
is the legacy ``SCHEMES`` tuple order, which the CLI help and test
parametrization present to humans.
"""

from __future__ import annotations

from .registry import REGISTRY
from .spec import SchemeSpec

_FRFCFS = "repro.controllers.frfcfs.FrFcfsController"
_FAST_FRFCFS = "repro.sim.fastpath.FastFrFcfsController"
_FCFS = "repro.controllers.fcfs.FcfsController"
_TP = "repro.controllers.tp.TemporalPartitioningController"
_FAST_TP = "repro.sim.fastpath.FastTpController"
_FS = "repro.core.fs_controller.FixedServiceController"
_FAST_FS = "repro.sim.fastpath.FastFixedServiceController"
_FS_REORDERED = "repro.core.fs_reordered.ReorderedBpController"
_FAST_FS_REORDERED = "repro.sim.fastpath.FastReorderedBpController"
_FS_MC = "repro.sim.multichannel.MultiChannelFsController"
_FAST_FS_MC = "repro.sim.fastpath.FastMultiChannelFsController"

#: The built-in design points, in presentation order.
BUILTIN_SPECS = (
    SchemeSpec(
        name="baseline",
        description="non-secure FR-FCFS with write drain (open page)",
        family="frfcfs", partitioning="none",
        controller=_FRFCFS, fast_controller=_FAST_FRFCFS,
        supports_refresh=True, secure=False,
    ),
    SchemeSpec(
        name="fcfs",
        description="strict FCFS, closed page (reference only)",
        family="fcfs", partitioning="none",
        controller=_FCFS, secure=False,
        # Reference-only pedagogical controller: no fast-engine class
        # and no per-domain service contract to state a two-world
        # certification claim about.
        certifiable=False,
    ),
    SchemeSpec(
        name="channel_part",
        description="private channel per domain, FR-FCFS within "
                    "(Section 4.1, <= 4 threads)",
        family="frfcfs", partitioning="channel",
        controller=_FRFCFS, fast_controller=_FAST_FRFCFS,
    ),
    SchemeSpec(
        name="tp_bp",
        description="Temporal Partitioning, bank-partitioned "
                    "(Wang et al., HPCA 2014)",
        family="tp", partitioning="bank",
        controller=_TP, fast_controller=_FAST_TP,
    ),
    SchemeSpec(
        name="tp_np",
        description="Temporal Partitioning, no spatial partitioning",
        family="tp", partitioning="none",
        controller=_TP, fast_controller=_FAST_TP,
    ),
    SchemeSpec(
        name="fs_rp",
        description="Fixed Service, rank partitioning "
                    "(periodic data, l=7)",
        family="fs", partitioning="rank", sharing="rank",
        controller=_FS, fast_controller=_FAST_FS,
        expected_l=7, expected_q=56,
        supports_refresh=True, supports_prefetch=True,
        fixed_service=True,
    ),
    SchemeSpec(
        name="fs_rp_mc",
        description="Fixed Service, rank partitioning, one controller "
                    "per channel (full 32-core target)",
        family="fs_multichannel", partitioning="rank", sharing="rank",
        controller=_FS_MC, fast_controller=_FAST_FS_MC,
        expected_l=7, multi_channel=True, fixed_service=True,
    ),
    SchemeSpec(
        name="fs_bp",
        description="Fixed Service, bank partitioning "
                    "(periodic RAS, l=15)",
        family="fs", partitioning="bank", sharing="bank",
        controller=_FS, fast_controller=_FAST_FS,
        expected_l=15, expected_q=120,
        supports_prefetch=True, fixed_service=True,
    ),
    SchemeSpec(
        name="fs_reordered_bp",
        description="Fixed Service, reordered bank partitioning "
                    "(Q=63 for 8 threads)",
        family="fs_reordered", partitioning="bank",
        controller=_FS_REORDERED,
        fast_controller=_FAST_FS_REORDERED,
        expected_q=63, reorder_window=63, fixed_service=True,
    ),
    SchemeSpec(
        name="fs_np",
        description="Fixed Service, no partitioning "
                    "(periodic RAS, l=43)",
        family="fs", partitioning="none", sharing="none",
        controller=_FS, fast_controller=_FAST_FS,
        expected_l=43, expected_q=344,
        supports_prefetch=True, fixed_service=True,
    ),
    SchemeSpec(
        name="fs_np_ta",
        description="Fixed Service, triple alternation "
                    "(15-cycle slots, Q=360)",
        family="fs_ta", partitioning="none",
        controller=_FS, fast_controller=_FAST_FS,
        expected_l=15, expected_q=360, fixed_service=True,
    ),
)

for _spec in BUILTIN_SPECS:
    REGISTRY.register(_spec)

__all__ = ["BUILTIN_SPECS"]
