"""Declarative scheme registry: scheme identity as data, not control
flow.

The paper's contribution is a *family* of Fixed Service design points
(Table 2); this package encodes each one as a frozen, picklable
:class:`SchemeSpec`, keeps them in a process-global
:class:`SchemeRegistry`, and interprets them through a small table of
per-family builders — the runner, CLI, config validation, and the
multiprocess sweep executor all consume the same declarative surface.

Add a scheme in under 20 lines (see ``docs/INTERNALS.md`` §10)::

    from repro.schemes import REGISTRY, SchemeSpec

    REGISTRY.register(SchemeSpec(
        name="fs_bp_mine", family="fs", partitioning="bank",
        sharing="bank",
        controller="mypkg.MyFsController",
        fast_controller="repro.sim.fastpath.FastFixedServiceController",
        fixed_service=True,
    ))
"""

from .spec import PARTITIONINGS, SHARINGS, SchemeSpec, resolve, \
    spec_fields
from .registry import REGISTRY, SchemeRegistry, register_scheme
from .builders import (
    BUILDERS,
    build_from_spec,
    build_partition,
    builder_for,
    register_builder,
)
from .builtin import BUILTIN_SPECS

__all__ = [
    "BUILDERS",
    "BUILTIN_SPECS",
    "PARTITIONINGS",
    "REGISTRY",
    "SHARINGS",
    "SchemeRegistry",
    "SchemeSpec",
    "build_from_spec",
    "build_partition",
    "builder_for",
    "register_builder",
    "register_scheme",
    "resolve",
    "spec_fields",
]
