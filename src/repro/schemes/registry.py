"""The scheme registry: name -> :class:`~repro.schemes.spec.SchemeSpec`.

One process-global :data:`REGISTRY` holds every known scheme.  The
built-in family (:mod:`repro.schemes.builtin`) populates it at import
time in the paper's presentation order; user code extends it either
directly::

    from repro.schemes import REGISTRY, SchemeSpec

    REGISTRY.register(SchemeSpec(
        name="fs_rp_tuned", family="fs", partitioning="rank",
        sharing="rank",
        controller="mypkg.controllers.TunedFsController",
        fixed_service=True,
    ))

or with the decorator, which fills the controller path in from the
decorated class::

    from repro.schemes import register_scheme

    @register_scheme("fs_rp_tuned", family="fs", partitioning="rank",
                     sharing="rank", fixed_service=True)
    class TunedFsController(FixedServiceController):
        ...

Either way the new name immediately works everywhere a built-in does:
``run_scheme``, ``repro run/stats/sweep``, ``Sweep`` grids (including
multiprocess grids — specs are picklable and shipped to workers), and
``SystemConfig.validate_for_scheme``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from ..errors import SchemeError
from .spec import SchemeSpec


class SchemeRegistry:
    """An insertion-ordered mapping of scheme names to specs."""

    def __init__(self) -> None:
        self._specs: Dict[str, SchemeSpec] = {}

    # -- registration ---------------------------------------------------

    def register(
        self, spec: SchemeSpec, replace: bool = False
    ) -> SchemeSpec:
        """Add a spec; re-registering the *same* spec is idempotent.

        A different spec under an existing name raises
        :class:`~repro.errors.SchemeError` unless ``replace=True`` —
        silent shadowing of a built-in is exactly the config drift the
        registry exists to prevent.
        """
        existing = self._specs.get(spec.name)
        if existing is not None and not replace:
            if existing == spec:
                return existing
            raise SchemeError(
                f"scheme {spec.name!r} is already registered with a "
                f"different spec (pass replace=True to override)"
            )
        self._specs[spec.name] = spec
        return spec

    def ensure(self, spec: SchemeSpec) -> SchemeSpec:
        """Idempotent transport-side registration (worker processes).

        Used when a pickled spec arrives in a spawn-started sweep
        worker: register it if missing, accept it if identical, and
        *replace* on conflict — the parent process's grid definition is
        authoritative for the cell being executed.
        """
        existing = self._specs.get(spec.name)
        if existing == spec:
            return existing
        return self.register(spec, replace=True)

    def unregister(self, name: str) -> None:
        """Remove a scheme (tests and interactive experimentation)."""
        if name not in self._specs:
            raise SchemeError(
                f"cannot unregister unknown scheme {name!r}",
                known=self.names(),
            )
        del self._specs[name]

    # -- lookup ---------------------------------------------------------

    def get(self, name: str) -> SchemeSpec:
        """The spec for ``name``; unknown names raise SchemeError with
        the full list of registered names (the CLI prints it as-is)."""
        try:
            return self._specs[name]
        except KeyError:
            raise SchemeError(
                f"unknown scheme {name!r}", known=self.names()
            ) from None

    def find(self, name: str) -> Optional[SchemeSpec]:
        """The spec for ``name`` or ``None`` (lenient lookup)."""
        return self._specs.get(name)

    def names(self) -> Tuple[str, ...]:
        """Registered names in registration order."""
        return tuple(self._specs)

    def specs(self) -> Tuple[SchemeSpec, ...]:
        """Registered specs in registration order."""
        return tuple(self._specs.values())

    def names_where(self, **field_values) -> Tuple[str, ...]:
        """Names whose specs match every given field value, in order.

        The declarative replacement for the hand-maintained name tuples
        the codebase used to duplicate::

            REGISTRY.names_where(partitioning="rank")
            REGISTRY.names_where(fixed_service=True)
        """
        out = []
        for spec in self._specs.values():
            if all(
                getattr(spec, key) == value
                for key, value in field_values.items()
            ):
                out.append(spec.name)
        return tuple(out)

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SchemeRegistry({', '.join(self._specs)})"


#: The process-global registry every runner/CLI/sweep lookup goes
#: through.  Populated by :mod:`repro.schemes.builtin` on import.
REGISTRY = SchemeRegistry()


def register_scheme(
    name: str, registry: Optional[SchemeRegistry] = None, **fields
) -> Callable[[type], type]:
    """Class decorator: declare-and-register a scheme in one block.

    The decorated class becomes the spec's reference controller (its
    dotted import path is derived automatically, keeping the spec
    picklable); every other :class:`SchemeSpec` field is passed through
    ``**fields``.  Returns the class unchanged.
    """
    target = registry if registry is not None else REGISTRY

    def decorate(cls: type) -> type:
        path = f"{cls.__module__}.{cls.__qualname__}"
        target.register(SchemeSpec(name=name, controller=path, **fields))
        return cls

    return decorate


__all__ = ["REGISTRY", "SchemeRegistry", "register_scheme"]
