"""Persistent content-addressed cache for :mod:`repro.exec` job results.

Every sweep cell, certification trial, and bench job in this project is
a pure function of its payload (the paper's fixed-service schedules are
*deterministic* by construction — that is the whole point), so a result
computed once is correct forever.  :class:`ResultStore` keeps the raw
wire dict a worker returned, keyed by the canonical SHA-256 of the job's
worker identity and payload (:mod:`repro.store.keys`), in a directory
tree shared across sessions::

    <root>/objects/<hh>/<sha256>.pkl

where ``<hh>`` is the first two hex digits (keeps directory fan-out flat
at any cache size).  Each file is a pickled envelope ::

    {"version": ENTRY_VERSION, "key": <sha256>, "fn": <module:qualname>,
     "value": <raw wire dict>}

written with the same mkstemp + ``os.replace`` discipline as
:mod:`repro.exec.checkpoint`, so a crash mid-write leaves either the old
entry or none — never a torn one.

Failure philosophy: the store is an accelerator, never a correctness
dependency.  A corrupt entry is warned about, evicted, and recomputed; a
version or key mismatch is a silent miss; an unpicklable result or an
unwritable object tree skips the write.  The only exception the store
ever raises is :class:`~repro.errors.StoreError`, at construction, when
the root itself is unusable.

Determinism contract: the store hands back the byte-identical raw wire
dict the worker produced (including shipped span records and metrics
registries), and :func:`repro.exec.run_jobs` consumes hits at the same
point in the same submission-order walk as computed results — so warm
runs, cold runs, and ``--workers N`` runs all emit byte-identical
checkpoints, artifacts, and metrics snapshots.  Store *activity*
(hit/miss/bypass tallies, lookup spans) stays in the store's own
registry and tracer, never in consumer artifacts, precisely so a warm
artifact cannot be distinguished from a cold one.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import StoreError
from ..telemetry.log import get_logger
from ..telemetry.registry import MetricsRegistry
from ..telemetry.spans import SpanTracer
from .keys import UncacheableValue, content_key, fn_identity

_LOG = get_logger("store")

#: Environment variable overriding the default store root.
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: Default store root when neither an explicit path nor the environment
#: variable names one.
DEFAULT_STORE_DIR = os.path.join("~", ".cache", "repro-store")

#: On-disk envelope version.  An entry with any other version is treated
#: as a miss (and reaped by ``gc``/``verify``), never parsed further.
ENTRY_VERSION = 1

#: Pickle protocol for entry envelopes — pinned, like the checkpoint
#: format, so stores are portable across the Python versions CI spans.
_PICKLE_PROTOCOL = 4

#: Subdirectory of the root holding the content-addressed object tree.
_OBJECTS_DIR = "objects"


def resolve_store_root(root: Optional[str] = None) -> str:
    """Resolve the store root: explicit path > ``REPRO_STORE_DIR`` > default.

    Returns an absolute, user-expanded path.  Does not create anything —
    creation is deferred to the first write so read-only consumers never
    touch the filesystem.
    """
    if not root:
        root = os.environ.get(STORE_DIR_ENV) or DEFAULT_STORE_DIR
    return os.path.abspath(os.path.expanduser(root))


@dataclass(frozen=True)
class EntryInfo:
    """One on-disk store entry, as reported by :func:`iter_entries`.

    ``status`` is ``"ok"`` for a loadable current-version entry,
    ``"stale"`` for a loadable entry with a foreign version or a key
    that does not match its filename, and ``"corrupt"`` for a file that
    cannot be unpickled at all.  ``fn`` is the recorded worker identity
    (empty when unreadable).
    """

    path: str
    key: str
    size: int
    mtime: float
    status: str
    fn: str = ""


@dataclass(frozen=True)
class GcResult:
    """Summary of one :func:`gc` pass: entries removed/kept, bytes freed."""

    removed: int
    kept: int
    reclaimed_bytes: int


class ResultStore:
    """Content-addressed, cross-session cache of job results.

    Duck-typed to the ``store=`` hook of :func:`repro.exec.run_jobs`:
    :meth:`lookup` maps a :class:`~repro.exec.JobSpec` to its cached raw
    wire dict (or ``None``), and :meth:`record` writes a fresh result
    back.  Plain integer tallies (:attr:`hits`, :attr:`misses`,
    :attr:`bypasses`, :attr:`writes`, :attr:`corrupt`, :attr:`errors`)
    track activity; :meth:`metrics_registry` exports them through the
    telemetry layer and :attr:`tracer` records a ``store``-category span
    per lookup on a dedicated ``store`` track.
    """

    def __init__(self, root: Optional[str] = None,
                 tracer: Optional[SpanTracer] = None) -> None:
        self.root = resolve_store_root(root)
        if os.path.exists(self.root) and not os.path.isdir(self.root):
            raise StoreError(
                f"store root {self.root!r} exists and is not a directory"
            )
        self.tracer = tracer if tracer is not None else SpanTracer(
            track="store"
        )
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.writes = 0
        self.corrupt = 0
        self.errors = 0

    # -- keying ---------------------------------------------------------

    def key_for(self, spec) -> Optional[str]:
        """The content key for a job spec, or ``None`` when uncacheable.

        ``None`` (a *bypass*) covers payloads with no canonical form —
        live telemetry sessions, arbitrary objects — and specs without a
        worker function.  Bypassed jobs simply run uncached.
        """
        fn = getattr(spec, "fn", None)
        if fn is None:
            return None
        try:
            return content_key(fn, getattr(spec, "payload", None))
        except UncacheableValue:
            return None

    def object_path(self, key: str) -> str:
        """Absolute path of the entry file for a content key."""
        return os.path.join(
            self.root, _OBJECTS_DIR, key[:2], f"{key}.pkl"
        )

    # -- the run_jobs hook ----------------------------------------------

    def lookup(self, spec) -> Optional[dict]:
        """Return the cached raw wire dict for ``spec``, or ``None``.

        A hit hands back exactly what the worker returned on the cold
        run (an ``{"ok": True, "value": ...}`` dict, spans and all).
        Corrupt entries are warned about, evicted, and reported as
        misses; stale-version entries are silent misses.
        """
        key = self.key_for(spec)
        if key is None:
            self.bypasses += 1
            return None
        with self.tracer.span(
            "lookup", "store",
            args={"job": str(getattr(spec, "key", ""))},
        ):
            raw = self._load(key)
        if raw is None:
            self.misses += 1
        else:
            self.hits += 1
        return raw

    def record(self, spec, raw) -> bool:
        """Write a freshly computed raw result back; returns True if stored.

        Only successful results (``raw["ok"]`` truthy) are cached —
        failures may be environmental (budget, fault isolation) and must
        re-run.  Every filesystem or pickling problem degrades to "not
        stored" with a warning; the run itself is never failed.
        """
        if not isinstance(raw, dict) or not raw.get("ok"):
            return False
        key = self.key_for(spec)
        if key is None:
            return False
        path = self.object_path(key)
        if os.path.exists(path):
            return False
        envelope = {
            "version": ENTRY_VERSION,
            "key": key,
            "fn": fn_identity(spec.fn),
            "value": raw,
        }
        try:
            blob = pickle.dumps(envelope, protocol=_PICKLE_PROTOCOL)
        except Exception as exc:  # unpicklable live object in the value
            self.bypasses += 1
            _LOG.warning(
                "store: result not picklable, leaving uncached",
                extra={"job": str(getattr(spec, "key", "")),
                       "error": str(exc)},
            )
            return False
        try:
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=directory, prefix=".store-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self.errors += 1
            _LOG.warning(
                "store: entry write failed, leaving uncached",
                extra={"path": path, "error": str(exc)},
            )
            return False
        self.writes += 1
        return True

    # -- internals ------------------------------------------------------

    def _load(self, key: str) -> Optional[dict]:
        """Load one entry by key; corrupt files are evicted, never raised."""
        path = self.object_path(key)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception as exc:
            # Truncated write survived a crash, disk corruption, or a
            # foreign pickle: warn, evict, recompute.
            self.corrupt += 1
            _LOG.warning(
                "store: corrupt entry evicted, recomputing",
                extra={"path": path, "error": str(exc)},
            )
            self._evict(path)
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("version") != ENTRY_VERSION
            or envelope.get("key") != key
        ):
            # A foreign schema carries no information this build can
            # misinterpret — silent miss, reaped later by gc/verify.
            return None
        raw = envelope.get("value")
        if not isinstance(raw, dict) or not raw.get("ok"):
            self.corrupt += 1
            _LOG.warning(
                "store: malformed entry payload evicted",
                extra={"path": path},
            )
            self._evict(path)
            return None
        return raw

    @staticmethod
    def _evict(path: str) -> None:
        """Best-effort removal of a bad entry file."""
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- observability ---------------------------------------------------

    def metrics_registry(self) -> MetricsRegistry:
        """Export the activity tallies as a telemetry registry.

        All store metrics are *volatile* — they describe cache state,
        which legitimately differs between byte-identical runs — so they
        appear in ``.prom``/JSON exports but never in determinism
        snapshots, and they are kept out of consumer artifacts entirely.
        """
        registry = MetricsRegistry()
        lookups = registry.counter(
            "store_lookups_total",
            "result-store lookups by outcome", ("outcome",),
            volatile=True,
        )
        lookups.inc(self.hits, outcome="hit")
        lookups.inc(self.misses, outcome="miss")
        lookups.inc(self.bypasses, outcome="bypass")
        registry.counter(
            "store_writes_total", "entries written back",
            volatile=True,
        ).inc(self.writes)
        registry.counter(
            "store_corrupt_entries_total",
            "corrupt entries evicted on lookup", volatile=True,
        ).inc(self.corrupt)
        registry.counter(
            "store_write_errors_total",
            "write-backs abandoned on filesystem errors", volatile=True,
        ).inc(self.errors)
        return registry

    def summary(self) -> str:
        """One human line of this store's session activity."""
        return (
            f"store {self.root}: {self.hits} hit(s), "
            f"{self.misses} miss(es), {self.bypasses} bypass(es), "
            f"{self.writes} write(s), {self.corrupt} corrupt"
        )


# -- maintenance (CLI surface) -----------------------------------------


def iter_entries(root: Optional[str] = None) -> Iterator[EntryInfo]:
    """Walk a store's object tree, yielding one :class:`EntryInfo` each.

    Classifies every ``*.pkl`` file (see :class:`EntryInfo` for the
    status taxonomy) without ever raising on bad content.  Yields in
    sorted path order so listings are stable.
    """
    resolved = resolve_store_root(root)
    objects = os.path.join(resolved, _OBJECTS_DIR)
    if not os.path.isdir(objects):
        return
    paths: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(objects):
        for name in filenames:
            if name.endswith(".pkl"):
                paths.append(os.path.join(dirpath, name))
    for path in sorted(paths):
        key = os.path.basename(path)[:-len(".pkl")]
        try:
            stat = os.stat(path)
        except OSError:
            continue
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except Exception:
            yield EntryInfo(path, key, stat.st_size, stat.st_mtime,
                            "corrupt")
            continue
        if (
            not isinstance(envelope, dict)
            or envelope.get("version") != ENTRY_VERSION
            or envelope.get("key") != key
            or not isinstance(envelope.get("value"), dict)
        ):
            yield EntryInfo(path, key, stat.st_size, stat.st_mtime,
                            "stale", str(envelope.get("fn", ""))
                            if isinstance(envelope, dict) else "")
            continue
        yield EntryInfo(path, key, stat.st_size, stat.st_mtime, "ok",
                        str(envelope.get("fn", "")))


def gc(root: Optional[str] = None, older_than_s: Optional[float] = None,
       everything: bool = False) -> GcResult:
    """Reap store entries; returns a :class:`GcResult` summary.

    Always removes corrupt and stale-version entries.  With
    ``older_than_s`` also removes healthy entries not touched within
    that many seconds; with ``everything=True`` removes all entries.
    Empty fan-out directories are pruned afterwards.
    """
    resolved = resolve_store_root(root)
    removed = kept = reclaimed = 0
    now = time.time()
    for entry in iter_entries(resolved):
        doomed = (
            everything
            or entry.status != "ok"
            or (older_than_s is not None
                and now - entry.mtime > older_than_s)
        )
        if doomed:
            try:
                os.unlink(entry.path)
                removed += 1
                reclaimed += entry.size
            except OSError:
                kept += 1
        else:
            kept += 1
    objects = os.path.join(resolved, _OBJECTS_DIR)
    if os.path.isdir(objects):
        for name in sorted(os.listdir(objects)):
            bucket = os.path.join(objects, name)
            try:
                os.rmdir(bucket)
            except OSError:
                pass  # non-empty or racing — both fine
    return GcResult(removed=removed, kept=kept, reclaimed_bytes=reclaimed)


def verify(root: Optional[str] = None) -> List[EntryInfo]:
    """Return every non-``ok`` entry in a store (empty list ⇒ healthy).

    A read-only audit: nothing is evicted.  The CLI exits non-zero when
    this returns anything, making it a usable CI gate.
    """
    return [
        entry for entry in iter_entries(root) if entry.status != "ok"
    ]


__all__ = [
    "DEFAULT_STORE_DIR",
    "ENTRY_VERSION",
    "EntryInfo",
    "GcResult",
    "ResultStore",
    "STORE_DIR_ENV",
    "gc",
    "iter_entries",
    "resolve_store_root",
    "verify",
]
