"""Canonical content hashing for the result store.

A cache key must be a *semantic* fingerprint of a job: two
:class:`~repro.exec.JobSpec`\\ s that describe the same computation must
hash identically across processes and sessions, and any input change —
scheme spec field, system config, seed, engine, worker function — must
change the hash.  Python's built-in ``hash()`` is salted per process and
``pickle.dumps`` byte output depends on object-identity sharing, so
neither is usable directly.  Instead every payload is first lowered to a
*canonical structure* built only from ``None``/``bool``/``int``/``float``/
``str``/``bytes`` and tuples:

* dataclass instances (``SchemeSpec``, ``SystemConfig``, ``FaultPlan``,
  ``AttackerStrategy``, ...) become ``("dataclass", qualname, fields)``
  with fields canonicalised recursively in declaration order;
* enums become ``("enum", qualname, member_name)``;
* dicts and sets are canonicalised element-wise and *sorted*, so
  insertion order cannot leak into the key;
* lists/tuples keep their order under a ``"seq"`` tag (a reordered
  workload list is a different computation).

The key is then the SHA-256 of the structure's ``repr`` — deterministic
across processes because ``repr`` of those leaf types is value-based,
round-trippable, and independent of object identity.  Anything without a
canonical form (an open telemetry session, a live tracer, an arbitrary
class instance) raises :class:`UncacheableValue`; the store translates
that into a *bypass* — the job simply runs uncached.

``STORE_SCHEMA_VERSION`` is folded into every hash as a salt, so bumping
it orphans (rather than misreads) every existing entry when the wire
format of job results changes.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Callable, Tuple, Union

#: Salt folded into every content hash.  Bump when the job wire format
#: (or the canonicalisation scheme itself) changes incompatibly; old
#: entries then become unreachable instead of wrongly reusable.
STORE_SCHEMA_VERSION = 1

#: Leaf types that are already canonical.
_ATOMS = (bool, int, float, str, bytes)

Canonical = Union[None, bool, int, float, str, bytes, Tuple]


class UncacheableValue(TypeError):
    """A payload value has no canonical form, so the job cannot be keyed.

    Raised by :func:`canonicalize` for live objects — telemetry sessions,
    open files, arbitrary class instances — whose state cannot be
    fingerprinted by value.  The store catches this and treats the job as
    a *bypass* (run uncached); it never propagates to callers of
    :class:`~repro.store.ResultStore`.
    """


def fn_identity(fn: Callable) -> str:
    """A stable ``module:qualname`` identity for a job's worker function.

    Part of every cache key: two jobs with equal payloads but different
    workers (``_sweep_worker`` vs ``_certify_worker``) must never share
    an entry.  Requires a module-level function — which :mod:`repro.exec`
    already demands for spawn-safety — so the identity is importable and
    stable across sessions.
    """
    module = getattr(fn, "__module__", None) or "?"
    qualname = getattr(fn, "__qualname__", None) or repr(fn)
    return f"{module}:{qualname}"


def canonicalize(value: object) -> Canonical:
    """Lower ``value`` to a canonical, identity-free structure.

    Returns a tree of atoms and tagged tuples (see the module docstring
    for the per-type rules).  Raises :class:`UncacheableValue` for any
    value — at any depth — without a canonical form.
    """
    if value is None or isinstance(value, _ATOMS):
        return value
    if isinstance(value, enum.Enum):
        kind = type(value)
        return ("enum", f"{kind.__module__}.{kind.__qualname__}", value.name)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        kind = type(value)
        fields = tuple(
            (field.name, canonicalize(getattr(value, field.name)))
            for field in dataclasses.fields(value)
        )
        return ("dataclass", f"{kind.__module__}.{kind.__qualname__}", fields)
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(canonicalize(item) for item in value))
    if isinstance(value, dict):
        items = tuple(sorted(
            ((canonicalize(k), canonicalize(v)) for k, v in value.items()),
            key=repr,
        ))
        return ("map", items)
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(
            (canonicalize(item) for item in value), key=repr,
        )))
    raise UncacheableValue(
        f"{type(value).__module__}.{type(value).__qualname__} has no "
        f"canonical form; job must run uncached"
    )


def content_key(fn: Callable, payload: object) -> str:
    """The SHA-256 content hash keying one job in the store.

    Hashes ``(salt, schema version, worker identity, canonical payload)``
    so every semantic input — including the worker function and the store
    schema version — is covered.  Raises :class:`UncacheableValue` when
    the payload cannot be canonicalised.
    """
    structure = (
        "repro-store",
        STORE_SCHEMA_VERSION,
        fn_identity(fn),
        canonicalize(payload),
    )
    return hashlib.sha256(repr(structure).encode("utf-8")).hexdigest()


__all__ = [
    "STORE_SCHEMA_VERSION",
    "Canonical",
    "UncacheableValue",
    "canonicalize",
    "content_key",
    "fn_identity",
]
