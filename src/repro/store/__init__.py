"""Content-addressed result store for cross-session reuse.

Fixed-service schedules are deterministic functions of their inputs, so
every sweep cell, certification trial, and bench job is a pure function
of its payload — computed once, correct forever.  This package caches
those results on disk across sessions:

* :mod:`repro.store.keys` — canonical SHA-256 keying of job specs
  (dataclass fields, configs, seeds, engine, schema-version salt);
* :mod:`repro.store.store` — :class:`ResultStore` (the duck-typed
  ``store=`` hook consumed by :func:`repro.exec.run_jobs`), atomic entry
  I/O, and the ``ls``/``gc``/``verify`` maintenance surface behind
  ``repro store``.

The store layers *beside* :mod:`repro.exec`, not inside it: the runner
only sees the two-method ``lookup``/``record`` protocol, so the
substrate keeps zero knowledge of persistence, and the layering DAG in
``DESIGN.md`` §4 stays acyclic.  See ``docs/store.md`` for the design
rationale and determinism contract.
"""

from .keys import (
    STORE_SCHEMA_VERSION,
    UncacheableValue,
    canonicalize,
    content_key,
    fn_identity,
)
from .store import (
    DEFAULT_STORE_DIR,
    ENTRY_VERSION,
    EntryInfo,
    GcResult,
    ResultStore,
    STORE_DIR_ENV,
    gc,
    iter_entries,
    resolve_store_root,
    verify,
)

__all__ = [
    "DEFAULT_STORE_DIR",
    "ENTRY_VERSION",
    "EntryInfo",
    "GcResult",
    "ResultStore",
    "STORE_DIR_ENV",
    "STORE_SCHEMA_VERSION",
    "UncacheableValue",
    "canonicalize",
    "content_key",
    "fn_identity",
    "gc",
    "iter_entries",
    "resolve_store_root",
    "verify",
]
