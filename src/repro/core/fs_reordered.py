"""FS with reordered bank partitioning (Section 4.2).

All domains inject one transaction at the start of each interval; the
controller issues every read first, then every write, with a uniform
6-cycle data pitch and a single write-to-read tail before the next
interval — nearly doubling bus utilization over the basic bank-partitioned
pipeline (Q = 63 vs 120 for eight domains).

Re-ordering reads before writes would leak the read/write mix of
co-runners through read latencies, so read results are *released en masse*
at the end of the interval: a domain's observable timing depends only on
which interval its request was served in, which in turn depends only on
its own queue.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

from ..controllers.base import MemoryController
from ..dram.commands import (
    Command,
    CommandType,
    OpType,
    Request,
    RequestKind,
)
from ..dram.system import DramSystem
from ..faults import FaultInjector, FaultKind
from ..mapping.partition import PartitionPolicy
from .energy_opts import EnergyAdjustments, FsEnergyOptions
from .schedule import CommandTimes, ReorderedBpGeometry, \
    build_reordered_bp_geometry
from .shaping import DomainHazardTracker, DummyGenerator


class ReorderedBpController(MemoryController):
    """Interval-batched FS: reads first, writes after, en-masse release."""

    SCAN_DEPTH = 8

    def __init__(
        self,
        dram: DramSystem,
        partition: PartitionPolicy,
        num_domains: int,
        geometry: Optional[ReorderedBpGeometry] = None,
        channel: int = 0,
        energy_options: FsEnergyOptions = None,
        log_commands: bool = False,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(dram, num_domains, log_commands)
        self.partition = partition
        self.channel_id = channel
        self.geometry = geometry or build_reordered_bp_geometry(
            dram.params, num_domains
        )
        if self.geometry.num_domains != num_domains:
            raise ValueError("geometry domain count mismatch")
        self.energy_options = energy_options or FsEnergyOptions.none()
        self.adjustments = EnergyAdjustments()
        self._queues: Dict[int, List[Request]] = {
            d: [] for d in range(num_domains)
        }
        self._hazards: Dict[int, DomainHazardTracker] = {
            d: DomainHazardTracker(dram.params) for d in range(num_domains)
        }
        self._dummies: Dict[int, DummyGenerator] = {
            d: DummyGenerator(d, partition, channel)
            for d in range(num_domains)
        }
        self._staged: List[Tuple[int, int, Command]] = []
        self._stage_seq = itertools.count()
        self._times_memo: Dict[Tuple[int, bool], CommandTimes] = {}
        self._next_interval = 0
        self.fault_injector = fault_injector
        self._last_issued_key: Optional[Tuple] = None
        # The earliest command of an interval precedes its first data
        # burst by tRCD + tCAS (a read activate).
        self._lead = dram.params.tRCD + max(
            dram.params.tCAS, dram.params.tCWD
        )

    # ------------------------------------------------------------------

    def interval_start(self, index: int) -> int:
        """Cycle of the interval's first data burst."""
        return self._lead + index * self.geometry.interval_length

    def _decide_cycle(self, index: int) -> int:
        return self.interval_start(index) - self._lead

    # ------------------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        if request.address.channel != self.channel_id:
            raise ValueError("request routed to the wrong FS channel")
        self._queues[request.domain].append(request)
        if self.fault_injector is not None:
            self.fault_injector.note_enqueue(
                request.domain, request.arrival
            )

    def pending(self, domain: Optional[int] = None) -> int:
        if domain is not None:
            return len(self._queues[domain])
        return sum(map(len, self._queues.values()))

    def next_event(self) -> Optional[int]:
        candidates = [self._decide_cycle(self._next_interval)]
        if self._staged:
            candidates.append(self._staged[0][0])
        if self._release_heap:
            candidates.append(self._release_heap[0][0])
        return max(self.now + 1, min(candidates))

    def busy(self) -> bool:
        """Outstanding *demand* work; dummy intervals alone do not count."""
        return bool(
            self._release_heap or any(self._queues.values())
        )

    def _work(self, until: int) -> None:
        while True:
            decide_at = self._decide_cycle(self._next_interval)
            staged_at = self._staged[0][0] if self._staged else None
            if decide_at <= until and (
                staged_at is None or decide_at <= staged_at
            ):
                self._decide_interval(self._next_interval)
                self._next_interval += 1
                continue
            if staged_at is not None and staged_at <= until:
                _, _, command = heapq.heappop(self._staged)
                key = (
                    command.type, command.cycle, command.channel,
                    command.rank, command.bank, command.row,
                )
                if key == self._last_issued_key:
                    # Squash duplicated commands before they reach the
                    # bus (fault model ``duplicate_command``).
                    self.stats.squashed_duplicates += 1
                    continue
                self._last_issued_key = key
                self._issue(command)
                continue
            break
        self.dram.channels[self.channel_id].prune(self.now)

    # ------------------------------------------------------------------

    def _decide_interval(self, index: int) -> None:
        start = self.interval_start(index)
        decide_at = self._decide_cycle(index)
        picks: List[Request] = []
        for domain in range(self.num_domains):
            request = self._pick(domain, start, decide_at, index)
            if request is not None:
                picks.append(request)
            else:
                self.stats.bubbles += 1
                self._trace(domain, start, "-")
        # Reads first, then writes; domain order within each group.
        reads = [r for r in picks if r.is_read]
        writes = [r for r in picks if not r.is_read]
        last_slot = start + (
            (self.geometry.num_domains - 1) * self.geometry.data_gap
        )
        last_data_end = last_slot + self.params.tBURST
        for position, request in enumerate(reads + writes):
            data_at = start + self.geometry.data_offset(position)
            self._dispatch(
                request, data_at,
                release_at=last_data_end,
                hazard_data_at=last_slot,
            )

    def _pick(
        self, domain: int, start: int, decide_at: int,
        interval_index: int = 0,
    ) -> Optional[Request]:
        tracker = self._hazards[domain]
        injector = self.fault_injector
        delayed = injector is not None and injector.delay_slot(
            domain, interval_index
        )
        if delayed:
            # Interval logic stalled for this domain: its demand waits
            # for the domain's next interval; the interval is filled
            # exactly like an empty-queue one (dummy below).
            injector.record(
                FaultKind.DELAY_SLOT, domain, start,
                "interval service delayed to next interval",
            )
            self.stats.faulted_slots += 1
        scanned = 0
        for request in self._queues[domain] if not delayed else ():
            if request.arrival > decide_at:
                continue
            scanned += 1
            if scanned > self.SCAN_DEPTH:
                break
            # Hazard check against the worst-case placement for the
            # domain's own history: the earliest slot of this interval.
            times = self._times(start, request.is_read)
            if tracker.legal(times, request.address, request.is_read):
                self._queues[domain].remove(request)
                return request
        times = self._times(start, True)
        for address in self._dummies[domain].candidates():
            if tracker.legal(times, address, True):
                return Request(
                    op=OpType.READ,
                    address=address,
                    domain=domain,
                    kind=RequestKind.DUMMY,
                    arrival=decide_at,
                )
        return None

    def _times(self, data_at: int, is_read: bool) -> CommandTimes:
        # One interval touches the same (data_at, direction) pair ~3x
        # per transaction (pick scan, hazard commit, dispatch), so a
        # one-entry memo per direction removes most CommandTimes
        # constructions.  CommandTimes is an immutable value object;
        # sharing an instance is observationally identical.
        cached = self._times_memo.get((data_at, is_read))
        if cached is not None:
            return cached
        p = self.params
        if is_read:
            times = CommandTimes(
                act=data_at - p.tRCD - p.tCAS,
                col=data_at - p.tCAS,
                data=data_at,
            )
        else:
            times = CommandTimes(
                act=data_at - p.tRCD - p.tCWD,
                col=data_at - p.tCWD,
                data=data_at,
            )
        memo = self._times_memo
        if len(memo) > 8:  # one interval's worth; stays tiny
            memo.clear()
        memo[(data_at, is_read)] = times
        return times

    def _dispatch(
        self,
        request: Request,
        data_at: int,
        release_at: int,
        hazard_data_at: int,
    ) -> None:
        domain = request.domain
        addr = request.address
        times = self._times(data_at, request.is_read)
        # SECURITY: the hazard tracker must never learn the transaction's
        # slot *position* — positions depend on co-runners' read/write mix.
        # Commit the position-independent worst case (the interval's last
        # slot): conservative for every future gap check, and a pure
        # function of the domain's own stream.
        self._hazards[domain].commit(
            self._times(hazard_data_at, request.is_read),
            addr, request.is_read,
        )
        injector = self.fault_injector
        # SECURITY: the fault key must be position-independent too —
        # ``data_at`` encodes the slot position (which depends on the
        # co-runners' read/write mix), so keying the drop on it would
        # let a co-runner modulate the victim's fault schedule.  Key on
        # the interval's release point instead: a pure function of the
        # interval index.
        if injector is not None and injector.drop_command(
            domain, release_at
        ):
            # Commands lost in transit: hazards stay committed
            # (conservative), the observable stays the interval-granular
            # trace event, and the demand is re-issued in the SAME
            # domain's next interval.
            injector.record(
                FaultKind.DROP_COMMAND, domain, data_at,
                f"{request.kind.value} commands dropped; "
                f"retrying next interval",
            )
            self.stats.faulted_slots += 1
            if request.kind is RequestKind.DEMAND:
                self._queues[domain].insert(0, request)
            self._trace(domain, release_at, "F")
            return
        suppress = (
            request.kind is RequestKind.DUMMY
            and self.energy_options.suppress_dummies
        )
        if suppress:
            request.suppressed = True
            self.stats.suppressed_dummies += 1
        else:
            col_type = (
                CommandType.COL_READ_AP if request.is_read
                else CommandType.COL_WRITE_AP
            )
            self._stage(Command(
                CommandType.ACTIVATE, times.act, self.channel_id,
                addr.rank, addr.bank, addr.row, request.req_id, domain,
            ))
            self._stage(Command(
                col_type, times.col, self.channel_id, addr.rank,
                addr.bank, addr.row, request.req_id, domain,
            ))
        request.issue = times.first
        request.data_start = times.data
        request.completion = times.data + self.params.tBURST
        self.stats.record_service(request)
        kind = request.kind
        if kind is RequestKind.DEMAND:
            kind_code = "R" if request.is_read else "W"
        elif kind is RequestKind.PREFETCH:
            kind_code = "P"
        else:
            kind_code = "D"
        # The trace records the *interval*, not the slot position: slot
        # positions depend on co-runners' read/write mix, intervals do not.
        self._trace(domain, release_at, kind_code)
        if request.kind is RequestKind.DEMAND and request.is_read:
            self._schedule_release(request, release_at)

    def _stage(self, command: Command) -> None:
        heapq.heappush(
            self._staged, (command.cycle, next(self._stage_seq), command)
        )
