"""Concrete Fixed Service slot schedules (Figures 1 and 2).

A :class:`FixedServiceSchedule` is the artifact the paper's trusted OS
component computes offline: a periodic timetable assigning each security
domain fixed anchor cycles, from which every command time follows
deterministically.  The FS controllers *interpret* a schedule; they never
search.  Schedules are built from the :mod:`pipeline solver
<repro.core.pipeline_solver>` output and can be independently validated
with :class:`~repro.dram.checker.TimingChecker` (see
:func:`validate_schedule`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..dram.checker import TimingChecker, Violation
from ..dram.commands import Command, CommandType
from ..dram.timing import TimingParams
from .pipeline_solver import (
    PeriodicMode,
    PipelineSolver,
    SharingLevel,
    slot_timing,
)


@dataclass(frozen=True)
class SlotSpec:
    """One service slot within a schedule interval."""

    #: Position of the slot in the interval (0-based).
    index: int
    #: Security domain served by this slot.
    domain: int
    #: Anchor cycle of the slot, relative to the interval start.
    anchor_offset: int
    #: If set, the slot may only touch banks with ``bank % 3 == bank_mod``
    #: (the triple-alternation restriction of Section 4.3).
    bank_mod: Optional[int] = None


@dataclass(frozen=True)
class CommandTimes:
    """Absolute cycles of one transaction's commands."""

    act: int
    col: int
    data: int

    @property
    def first(self) -> int:
        return min(self.act, self.col)


class FixedServiceSchedule:
    """A periodic FS timetable.

    ``slots`` covers one interval of ``interval_length`` cycles; the
    pattern repeats forever.  ``lead`` shifts the whole timetable so no
    command of interval 0 lands before cycle 0.
    """

    def __init__(
        self,
        params: TimingParams,
        mode: PeriodicMode,
        slot_gap: int,
        num_domains: int,
        slots: Sequence[SlotSpec],
        interval_length: int,
        sharing: SharingLevel,
        name: str = "fs",
    ) -> None:
        if num_domains < 1:
            raise ValueError("need at least one domain")
        if interval_length < 1:
            raise ValueError("interval length must be positive")
        if not slots:
            raise ValueError("schedule needs at least one slot")
        domains_seen = {s.domain for s in slots}
        if domains_seen != set(range(num_domains)):
            raise ValueError(
                "every domain must own at least one slot per interval"
            )
        self.params = params
        self.mode = mode
        self.slot_gap = slot_gap
        self.num_domains = num_domains
        self.slots = list(slots)
        self.interval_length = interval_length
        self.sharing = sharing
        self.name = name
        # Shift so that the earliest command of interval 0 is >= cycle 0.
        read_t = slot_timing(params, mode, True)
        write_t = slot_timing(params, mode, False)
        earliest_rel = min(
            read_t.act, read_t.col, write_t.act, write_t.col
        )
        self.lead = max(0, -(min(s.anchor_offset for s in slots)
                             + earliest_rel))

    # ------------------------------------------------------------------

    @property
    def slots_per_interval(self) -> int:
        return len(self.slots)

    def slots_of_domain(self, domain: int) -> List[SlotSpec]:
        return [s for s in self.slots if s.domain == domain]

    def anchor(self, interval: int, slot: SlotSpec) -> int:
        """Absolute anchor cycle of ``slot`` in the given interval."""
        return (
            self.lead + interval * self.interval_length + slot.anchor_offset
        )

    def command_times(self, anchor: int, is_read: bool) -> CommandTimes:
        """Absolute ACT/column/data cycles for a transaction anchored at
        ``anchor``."""
        rel = slot_timing(self.params, self.mode, is_read)
        return CommandTimes(
            act=anchor + rel.act, col=anchor + rel.col, data=anchor + rel.data
        )

    def iter_slots(self, start_interval: int = 0
                   ) -> Iterator[Tuple[int, SlotSpec]]:
        """Yield (absolute anchor, slot) pairs in time order, forever."""
        for interval in itertools.count(start_interval):
            for slot in self.slots:
                yield self.anchor(interval, slot), slot

    def peak_utilization(self) -> float:
        """Theoretical peak data-bus utilization of the timetable."""
        return (
            self.slots_per_interval * self.params.tBURST
            / self.interval_length
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FixedServiceSchedule({self.name}, mode={self.mode.value}, "
            f"l={self.slot_gap}, Q={self.interval_length}, "
            f"domains={self.num_domains})"
        )


# ----------------------------------------------------------------------
# Builders for the paper's design points.
# ----------------------------------------------------------------------


def build_fs_schedule(
    params: TimingParams,
    num_domains: int,
    sharing: SharingLevel,
    mode: Optional[PeriodicMode] = None,
    slots_per_domain: int = 1,
) -> FixedServiceSchedule:
    """The basic FS timetable: round-robin slots every ``l`` cycles.

    ``mode=None`` picks the most efficient periodic mode for the sharing
    level (DATA for rank partitioning, RAS otherwise), exactly as the
    paper does.  ``slots_per_domain`` > 1 statically assigns a domain
    multiple issue slots per interval (Section 3, "a thread can also be
    statically assigned multiple issue slots").
    """
    if slots_per_domain < 1:
        raise ValueError("slots_per_domain must be >= 1")
    solver = PipelineSolver(params)
    if mode is None:
        mode, slot_gap = solver.best(sharing)
    else:
        slot_gap = solver.solve(mode, sharing)
    if sharing is SharingLevel.BANK:
        # The solver only spaces *distinct* slots, which under bank
        # partitioning always hit distinct banks.  A domain's own bank,
        # though, recurs every ``num_domains * slot_gap`` cycles (the
        # wrap-around to its next occurrence), and for small tRC-like
        # parts that distance can undercut the same-bank ACT-to-ACT
        # window.  Widen the gap until the wrap-around is safe.
        wrap_gap = -(-solver.same_bank_min_gap() // num_domains)
        if wrap_gap > slot_gap:
            # The widened gap skipped the solver's search, so it can
            # itself collide (e.g. land exactly on tRCD, putting a
            # column command and the next slot's ACT in one cycle).
            # Re-check and keep widening until conflict-free.
            slot_gap = wrap_gap
            while solver.check(slot_gap, mode, sharing) is not None:
                slot_gap += 1
    total_slots = num_domains * slots_per_domain
    slots = [
        SlotSpec(index=i, domain=i % num_domains, anchor_offset=i * slot_gap)
        for i in range(total_slots)
    ]
    names = {
        SharingLevel.RANK: "fs_rp",
        SharingLevel.BANK: "fs_bp",
        SharingLevel.NONE: "fs_np",
    }
    return FixedServiceSchedule(
        params=params,
        mode=mode,
        slot_gap=slot_gap,
        num_domains=num_domains,
        slots=slots,
        interval_length=slot_gap * total_slots,
        sharing=sharing,
        name=names[sharing],
    )


def build_triple_alternation_schedule(
    params: TimingParams, num_domains: int
) -> FixedServiceSchedule:
    """Triple alternation, Section 4.3 / Figure 2(b).

    Slots repeat every ``l_bp`` cycles (the bank-partitioned gap, 15) and
    carry a ``bank % 3`` restriction equal to the *global* slot index mod
    3.  Consecutive slots therefore always touch different banks — so the
    bank-partitioned spacing is safe — while same-bank reuse is at least
    three slots (45 >= 43 cycles) apart.  Each domain's restriction
    rotates across the three sub-intervals, so a domain reaches its whole
    address space every interval.

    When ``num_domains`` is a multiple of 3, a fixed domain order would
    pin each domain to a single bank class forever; the builder then
    rotates the domain order by one position per sub-interval, which
    restores full coverage and keeps the adjacency property.
    """
    solver = PipelineSolver(params)
    l_bp = solver.solve(PeriodicMode.RAS, SharingLevel.BANK)
    same_bank_gap = solver.same_bank_min_gap()
    if 3 * l_bp < same_bank_gap:
        raise RuntimeError(
            "triple alternation unsafe: three bank-partitioned slots "
            f"({3 * l_bp}) do not cover the same-bank gap "
            f"({same_bank_gap}); a deeper alternation is required"
        )
    rotate = 1 if num_domains % 3 == 0 else 0
    slots: List[SlotSpec] = []
    for sub in range(3):
        for j in range(num_domains):
            g = sub * num_domains + j
            domain = (j + sub * rotate) % num_domains
            slots.append(
                SlotSpec(
                    index=g,
                    domain=domain,
                    anchor_offset=g * l_bp,
                    bank_mod=g % 3,
                )
            )
    return FixedServiceSchedule(
        params=params,
        mode=PeriodicMode.RAS,
        slot_gap=l_bp,
        num_domains=num_domains,
        slots=slots,
        interval_length=3 * num_domains * l_bp,
        sharing=SharingLevel.NONE,
        name="fs_np_triple",
    )


@dataclass(frozen=True)
class ReorderedBpGeometry:
    """Timetable constants for reordered bank partitioning (Section 4.2).

    All domains inject at the interval start; the controller performs all
    reads first, then all writes, with ``data_gap`` cycles between burst
    starts and a write-to-read turnaround ``tail`` before the next
    interval.  Read results are released en masse at the interval end so
    the read/write mix of co-scheduled domains cannot modulate observed
    latencies.
    """

    num_domains: int
    data_gap: int
    tail: int

    @property
    def interval_length(self) -> int:
        return self.num_domains * self.data_gap + self.tail

    def data_offset(self, position: int) -> int:
        if not 0 <= position < self.num_domains:
            raise ValueError("slot position out of range")
        return position * self.data_gap

    def peak_utilization(self, tburst: int) -> float:
        return self.num_domains * tburst / self.interval_length


def build_reordered_bp_geometry(
    params: TimingParams, num_domains: int
) -> ReorderedBpGeometry:
    """Derive the reordered-BP constants from the timing parameters.

    ``data_gap`` must cover the cross-rank bubble (tBURST + tRTRS) and the
    same-rank tCCD; the tail must cover the worst-case write-to-read
    turnaround so the next interval's reads are unconstrained.  For the
    Table-1 part: gap 6, tail 15, Q = 8*6 + 15 = 63 (51% utilization).
    """
    data_gap = max(params.tBURST + params.tRTRS, params.tCCD)
    # The tail is the bank-partitioned slot gap (15 for Table 1): it makes
    # the wrap-around write -> read pair between intervals safe.
    tail = PipelineSolver(params).solve(PeriodicMode.RAS, SharingLevel.BANK)
    return ReorderedBpGeometry(
        num_domains=num_domains, data_gap=data_gap, tail=tail
    )


# ----------------------------------------------------------------------
# Independent validation.
# ----------------------------------------------------------------------


def schedule_commands(
    schedule: FixedServiceSchedule,
    pattern: Sequence[bool],
    intervals: int = 3,
    rank_of_slot=None,
    bank_of_slot=None,
) -> List[Command]:
    """Expand a schedule into a concrete command stream.

    ``pattern[g % len(pattern)]`` decides whether global slot ``g`` is a
    read; ``rank_of_slot`` / ``bank_of_slot`` map a global slot index to
    its target (defaults: worst-case placement for the schedule's sharing
    level).  Used by the validation tests.
    """
    params = schedule.params
    cmds: List[Command] = []
    n = schedule.slots_per_interval
    occurrences: Dict[int, int] = {}
    for interval in range(intervals):
        for slot in schedule.slots:
            g = interval * n + slot.index
            occurrence = occurrences.get(slot.domain, 0)
            occurrences[slot.domain] = occurrence + 1
            anchor = schedule.anchor(interval, slot)
            is_read = bool(pattern[g % len(pattern)])
            times = schedule.command_times(anchor, is_read)
            if schedule.sharing is SharingLevel.RANK:
                rank = slot.domain if rank_of_slot is None \
                    else rank_of_slot(g)
                if bank_of_slot is not None:
                    bank = bank_of_slot(g)
                else:
                    # Model the controller's per-domain bank rotation: a
                    # domain never reuses a bank until it has cycled
                    # through the rank (the Section 7 small-N hazard is a
                    # controller duty, not a timetable property).
                    bank = occurrence % 8
            elif schedule.sharing is SharingLevel.BANK:
                # Bank-partitioned layout: a domain owns one bank id in
                # every rank.  Single-slot domains all stay in rank 0
                # (the solver's same-rank worst case); a multi-slot
                # domain rotates ranks across its own occurrences, as
                # the controller's hazard scan would make it do.
                if rank_of_slot is not None:
                    rank = rank_of_slot(g)
                elif len(schedule.slots_of_domain(slot.domain)) == 1:
                    rank = 0
                else:
                    rank = occurrence % 8
                bank = slot.domain if bank_of_slot is None \
                    else bank_of_slot(g)
            else:
                rank = 0 if rank_of_slot is None else rank_of_slot(g)
                if bank_of_slot is not None:
                    bank = bank_of_slot(g)
                elif slot.bank_mod is not None:
                    bank = slot.bank_mod
                else:
                    bank = 0
            col_type = (
                CommandType.COL_READ_AP if is_read
                else CommandType.COL_WRITE_AP
            )
            cmds.append(
                Command(CommandType.ACTIVATE, times.act, 0, rank, bank,
                        row=g, domain=slot.domain)
            )
            cmds.append(
                Command(col_type, times.col, 0, rank, bank, row=g,
                        domain=slot.domain)
            )
    return cmds


def validate_schedule(
    schedule: FixedServiceSchedule,
    intervals: int = 3,
    patterns: Optional[Sequence[Sequence[bool]]] = None,
) -> List[Violation]:
    """Replay worst-case expansions of a schedule through the independent
    JEDEC checker; an empty result certifies the timetable."""
    n = schedule.slots_per_interval
    if patterns is None:
        patterns = [
            [True] * n,
            [False] * n,
            [bool(i % 2) for i in range(n)],
            [not bool(i % 2) for i in range(n)],
            # One write in an otherwise read stream, at every position.
        ] + [
            [i != j for i in range(n)] for j in range(min(n, 8))
        ]
    checker = TimingChecker(schedule.params)
    violations: List[Violation] = []
    for pattern in patterns:
        violations.extend(
            checker.check(schedule_commands(schedule, pattern, intervals))
        )
    return violations
