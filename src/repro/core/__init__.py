"""Fixed Service memory controllers — the paper's primary contribution.

Contents:

* :mod:`~repro.core.pipeline_solver` — offline constraint solving for the
  minimal conflict-free slot gap (Sections 3-4 equations).
* :mod:`~repro.core.schedule` — concrete slot timetables (Figures 1-2),
  including triple alternation and reordered bank partitioning, plus an
  independent validator.
* :mod:`~repro.core.shaping` — per-domain shaping: hazard tracking and
  dummy generation.
* :mod:`~repro.core.fs_controller` — the FS controller.
* :mod:`~repro.core.fs_reordered` — reordered bank partitioning.
* :mod:`~repro.core.energy_opts` — the Section 5.2 energy optimizations.
* :mod:`~repro.core.online_monitor` — streaming runtime verification of
  the JEDEC timing rules and FS schedule invariants.
"""

from .pipeline_solver import (
    ConflictReport,
    GroupedPipeline,
    GroupedPipelineSolver,
    PeriodicMode,
    PipelineSolver,
    SharingLevel,
    paper_solutions,
    slot_timing,
)
from .sla import bandwidth_share, build_sla_schedule, weighted_slot_order
from .invariants import (
    InvariantViolation,
    assert_non_interference,
    check_constant_service,
    check_schedule_conformance,
)
from .schedule import (
    CommandTimes,
    FixedServiceSchedule,
    ReorderedBpGeometry,
    SlotSpec,
    build_fs_schedule,
    build_reordered_bp_geometry,
    build_triple_alternation_schedule,
    schedule_commands,
    validate_schedule,
)
from .shaping import DomainHazardTracker, DummyGenerator
from .diagram import occupancy_summary, render_interval
from .energy_opts import (
    EnergyAdjustments,
    FsEnergyOptions,
    adjusted_energy,
)
from .fs_controller import FixedServiceController, PrefetchBuffer
from .fs_reordered import ReorderedBpController
from .online_monitor import OnlineInvariantMonitor

__all__ = [
    "ConflictReport", "GroupedPipeline", "GroupedPipelineSolver",
    "PeriodicMode", "PipelineSolver", "SharingLevel",
    "paper_solutions", "slot_timing",
    "bandwidth_share", "build_sla_schedule", "weighted_slot_order",
    "InvariantViolation", "assert_non_interference",
    "check_constant_service", "check_schedule_conformance",
    "CommandTimes", "FixedServiceSchedule", "ReorderedBpGeometry",
    "SlotSpec", "build_fs_schedule", "build_reordered_bp_geometry",
    "build_triple_alternation_schedule", "schedule_commands",
    "validate_schedule",
    "DomainHazardTracker", "DummyGenerator",
    "occupancy_summary", "render_interval",
    "EnergyAdjustments", "FsEnergyOptions", "adjusted_energy",
    "FixedServiceController", "PrefetchBuffer",
    "ReorderedBpController",
    "OnlineInvariantMonitor",
]
