"""Runtime security invariants for FS controllers (Section 5.1).

The paper's security invariant: each transaction queue gets a fixed,
schedule-determined level of service.  This module checks that claim on
*simulation artifacts* rather than on the implementation's word:

* :func:`check_schedule_conformance` — every service event of every
  domain lands exactly on one of that domain's own slot anchors, and no
  slot serves two transactions.
* :func:`check_constant_service` — each domain's service count per
  interval is exactly its slot share (demand + prefetch + dummy +
  bubble always fills the timetable).
* :func:`assert_non_interference` — convenience wrapper that re-runs a
  victim under several co-runners and raises with a readable diff if
  anything the victim can observe changed.

These are used by the test-suite and can be applied to any controller
run with ``service_trace`` recording (always on).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .schedule import FixedServiceSchedule


@dataclass(frozen=True)
class InvariantViolation:
    """One detected breach of the FS service invariant."""

    domain: int
    cycle: int
    reason: str

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return f"domain {self.domain} @ {self.cycle}: {self.reason}"


def check_schedule_conformance(
    schedule: FixedServiceSchedule,
    service_trace: Dict[int, List[Tuple[int, str]]],
) -> List[InvariantViolation]:
    """Every service event must sit on one of its domain's own anchors."""
    violations: List[InvariantViolation] = []
    allowed: Dict[int, set] = {
        d: {
            s.anchor_offset
            for s in schedule.slots_of_domain(d)
        }
        for d in range(schedule.num_domains)
    }
    for domain, events in service_trace.items():
        seen: Counter = Counter()
        for cycle, kind in events:
            offset = (cycle - schedule.lead) % schedule.interval_length
            if offset not in allowed[domain]:
                violations.append(InvariantViolation(
                    domain, cycle,
                    f"service at foreign offset {offset} "
                    f"(kind {kind!r})",
                ))
            seen[cycle] += 1
            if seen[cycle] > 1:
                violations.append(InvariantViolation(
                    domain, cycle, "slot served more than once"
                ))
    return violations


def check_constant_service(
    schedule: FixedServiceSchedule,
    service_trace: Dict[int, List[Tuple[int, str]]],
    tolerance_intervals: int = 2,
) -> List[InvariantViolation]:
    """Each domain's event count must equal elapsed intervals x its
    slot share (the 'constant injection rate' shape property)."""
    violations: List[InvariantViolation] = []
    horizon = max(
        (events[-1][0] for events in service_trace.values() if events),
        default=0,
    )
    if horizon == 0:
        return violations
    intervals = (horizon - schedule.lead) // schedule.interval_length + 1
    for domain, events in service_trace.items():
        share = len(schedule.slots_of_domain(domain))
        expected = intervals * share
        if abs(len(events) - expected) > tolerance_intervals * share:
            violations.append(InvariantViolation(
                domain, horizon,
                f"served {len(events)} slots, expected ~{expected}",
            ))
    return violations


def assert_non_interference(
    scheme: str,
    victim,
    co_runners: Optional[Sequence] = None,
    config=None,
    options=None,
) -> None:
    """Raise AssertionError with a diff summary if the victim's view
    changes under any co-runner (thin wrapper over
    :func:`repro.analysis.leakage.interference_report`).

    ``options`` rides through to the runner, so the property can be
    asserted under non-default knobs — notably with a
    :class:`~repro.faults.FaultPlan` armed, which is how the test-suite
    proves fault recovery itself is leakage-free.
    """
    from ..analysis.leakage import interference_report

    report = interference_report(
        scheme, victim, co_runners, config, options
    )
    if report.identical:
        return
    lines = [f"{scheme} leaks information to domain 0:"]
    lines.append(
        f"  max profile divergence: "
        f"{report.max_profile_divergence_cycles} cycles"
    )
    lines.append(
        f"  max read-release divergence: "
        f"{report.max_release_divergence_cycles} cycles"
    )
    for view in report.views:
        lines.append(
            f"  co-runner {view.co_runner}: ipc {view.ipc:.4f}"
        )
    raise AssertionError("\n".join(lines))
