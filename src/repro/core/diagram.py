"""ASCII timing diagrams — Figure 1, rendered from the real schedule.

Draws per-cycle command-bus and data-bus occupancy for an FS timetable,
the way the paper's Figure 1 does: one lane per resource, one column per
cycle, slots colour-coded by domain (here: by hex domain id).  Useful in
examples, docs, and debugging — if two commands ever wanted the same
cycle the renderer would show it immediately (and the checker would have
refused it first).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .schedule import FixedServiceSchedule


def render_interval(
    schedule: FixedServiceSchedule,
    pattern: Optional[Sequence[bool]] = None,
    width: Optional[int] = None,
) -> str:
    """Render one interval of a schedule as lane/column ASCII art.

    ``pattern[i]`` marks slot ``i`` as a read (True) or write (False);
    default is the paper's Figure 1 mix (reads with two writes).  Lanes:

    * ``ACT``  — activates (domain id in hex),
    * ``COL``  — column commands (``r``/``w`` case by domain parity is
      avoided; reads render as the domain id, writes as ``*`` + id lane),
    * ``DATA`` — burst occupancy.
    """
    n = schedule.slots_per_interval
    if pattern is None:
        pattern = [True] * n
        if n >= 7:
            pattern[5] = pattern[6] = False
    if len(pattern) != n:
        raise ValueError(f"pattern must cover {n} slots")
    if width is None:
        width = schedule.interval_length + schedule.lead + 8

    act = [" "] * width
    col = [" "] * width
    data = [" "] * width

    def mark(lane: List[str], start: int, length: int, tag: str) -> None:
        for cycle in range(start, start + length):
            if 0 <= cycle < width:
                if lane[cycle] != " ":
                    lane[cycle] = "!"  # conflict marker (never expected)
                else:
                    lane[cycle] = tag

    for slot in schedule.slots:
        anchor = schedule.anchor(0, slot)
        is_read = bool(pattern[slot.index])
        times = schedule.command_times(anchor, is_read)
        tag = format(slot.domain, "x")
        # Reads render as the hex domain id; writes as 'A' + domain so
        # the direction is visible in every lane cell.
        write_tag = chr(ord("A") + slot.domain % 26)
        mark(act, times.act, 1, tag if is_read else write_tag)
        mark(col, times.col, 1, tag if is_read else write_tag)
        mark(data, times.data, schedule.params.tBURST,
             tag if is_read else write_tag)

    ruler = "".join(
        "|" if c % 10 == 0 else "." for c in range(width)
    )
    lines = [
        f"interval of {schedule.name}: Q={schedule.interval_length}, "
        f"l={schedule.slot_gap}, mode={schedule.mode.value} "
        "(hex digit = read by that domain; letter = write, A=domain 0)",
        "cycle " + ruler,
        "ACT   " + "".join(act),
        "COL   " + "".join(col),
        "DATA  " + "".join(data),
    ]
    return "\n".join(lines)


def occupancy_summary(
    schedule: FixedServiceSchedule,
    pattern: Optional[Sequence[bool]] = None,
) -> Dict[str, float]:
    """Fraction of cycles each lane is busy over one interval."""
    art = render_interval(schedule, pattern)
    lanes = art.splitlines()[2:]
    q = schedule.interval_length
    out: Dict[str, float] = {}
    for lane in lanes:
        name, cells = lane[:6].strip(), lane[6:]
        busy = sum(1 for c in cells[:q + schedule.lead] if c not in " |.")
        out[name] = busy / q
    return out
