"""Online runtime verification of the FS security invariants.

:class:`OnlineInvariantMonitor` is the streaming, bounded-memory
counterpart of the two post-hoc validators:

* :func:`repro.core.invariants.check_schedule_conformance` — every
  service event must land on one of its own domain's slot anchors, and no
  slot may be served twice;
* :class:`repro.dram.checker.TimingChecker` — the raw pairwise JEDEC
  constraints on the command stream.

The offline tools replay a *finished* run; this monitor watches the run
live, one event at a time, holding only O(banks + a small window) of
state, and (in ``strict`` mode) raises a structured
:class:`~repro.errors.ScheduleViolationError` naming the domain and the
cycle **the moment** an invariant breaks.  That matters for security: a
deviation from the fixed timetable is a potential timing channel, so a
faulted run must stop (or at minimum be flagged) before its results are
trusted — not after a grid of experiments has already consumed them.

The timing rules are a faithful streaming port of
:class:`~repro.dram.checker.TimingChecker`; ``tests/test_faults.py``
proves the two flag *exactly* the same violations on randomly perturbed
command streams.  Commands must be observed in non-decreasing cycle
order (which is how every controller issues them).
"""

from __future__ import annotations

import bisect
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..dram.checker import Violation
from ..dram.commands import Command, CommandType
from ..dram.timing import TimingParams
from ..errors import ScheduleViolationError
from .invariants import InvariantViolation
from .schedule import FixedServiceSchedule


@dataclass
class _BankState:
    """Streaming per-bank JEDEC state (mirrors ``_check_one_bank``)."""

    last_act: Optional[Command] = None
    implied_pre_done: int = -(10 ** 9)


@dataclass
class _RankState:
    """Streaming per-rank JEDEC state (mirrors ``_check_rank_rules``)."""

    last_act: Optional[Command] = None
    act_cycles: Deque[Command] = field(
        default_factory=lambda: deque(maxlen=4)
    )
    last_col: Optional[Command] = None
    #: Refreshes whose tRFC window may still cover future commands.
    active_refs: List[Command] = field(default_factory=list)
    #: Non-REF commands at the current (latest) cycle, for REF-arrives-
    #: second collisions inside one cycle.
    cycle_cmds: Tuple[int, List[Command]] = (-1, [])


class _ChannelState:
    """All streaming timing state for one channel."""

    def __init__(self) -> None:
        self.bus_cycle = -1
        self.bus_first: Optional[Command] = None
        self.bus_count = 0
        #: Data-bus transfers not yet safely ordered: (start, seq, cmd).
        self.pending: List[Tuple[int, int, Command]] = []
        self.pending_seq = 0
        self.last_final: Optional[Tuple[int, int, Command]] = None
        self.banks: Dict[Tuple[int, int], _BankState] = {}
        self.ranks: Dict[int, _RankState] = {}


class OnlineInvariantMonitor:
    """Streaming watchdog over service events and DRAM commands.

    Parameters
    ----------
    params:
        DRAM timing parameters (JEDEC rules).
    schedule:
        The FS timetable, when the watched controller interprets one;
        enables the conformance checks.  ``None`` (e.g. for the
        reordered-BP controller, whose observable is the interval, not a
        slot) keeps only the timing rules.
    strict:
        Raise :class:`ScheduleViolationError` on the first violation
        instead of accumulating.
    max_recorded:
        Bound on retained violation objects; the total count stays exact.
    """

    def __init__(
        self,
        params: TimingParams,
        schedule: Optional[FixedServiceSchedule] = None,
        strict: bool = False,
        max_recorded: int = 1000,
    ) -> None:
        self.params = params
        self.schedule = schedule
        self.strict = strict
        self.max_recorded = max_recorded
        self.violations: List[object] = []
        self.total_violations = 0
        #: Optional telemetry session (wired by
        #: ``MemoryController.attach_telemetry``); every flagged
        #: violation streams into it live.
        self.telemetry = None
        self._channels: Dict[int, _ChannelState] = {}
        # Conformance state.
        self._allowed: Dict[int, Set[int]] = {}
        if schedule is not None:
            self._allowed = {
                d: {s.anchor_offset for s in schedule.slots_of_domain(d)}
                for d in range(schedule.num_domains)
            }
        self._recent_service: Dict[int, Counter] = {}
        self._recent_order: Dict[int, Deque[int]] = {}
        # Constant-service accounting (finalize-time shape check).
        self._service_counts: Counter = Counter()
        self._horizon = 0
        self._finalized = False

    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def raise_if_violated(self) -> None:
        """Raise on any accumulated violation (non-strict runs)."""
        if self.total_violations:
            first = self.violations[0] if self.violations else None
            raise ScheduleViolationError(
                f"{self.total_violations} invariant violation(s); "
                f"first: {first}"
            )

    def _flag_conformance(
        self, domain: int, cycle: int, reason: str
    ) -> None:
        self.total_violations += 1
        if len(self.violations) < self.max_recorded:
            self.violations.append(
                InvariantViolation(domain, cycle, reason)
            )
        if self.telemetry is not None:
            self.telemetry.on_violation(domain, cycle, reason)
        if self.strict:
            raise ScheduleViolationError(reason, domain=domain,
                                         cycle=cycle)

    def _flag_timing(self, violation: Violation) -> None:
        self.total_violations += 1
        if len(self.violations) < self.max_recorded:
            self.violations.append(violation)
        domain = violation.second.domain
        if self.telemetry is not None:
            self.telemetry.on_violation(
                domain if domain >= 0 else None,
                violation.second.cycle, str(violation),
            )
        if self.strict:
            raise ScheduleViolationError(
                str(violation),
                domain=domain if domain >= 0 else None,
                cycle=violation.second.cycle,
            )

    # ------------------------------------------------------------------
    # Conformance: service events.
    # ------------------------------------------------------------------

    def observe_service(self, domain: int, cycle: int, kind: str) -> None:
        """One service event, live from the controller's ``_trace``."""
        self._service_counts[domain] += 1
        self._horizon = max(self._horizon, cycle)
        schedule = self.schedule
        if schedule is None:
            return
        offset = (cycle - schedule.lead) % schedule.interval_length
        if offset not in self._allowed.get(domain, ()):
            self._flag_conformance(
                domain, cycle,
                f"service at foreign offset {offset} (kind {kind!r})",
            )
        seen = self._recent_service.setdefault(domain, Counter())
        order = self._recent_order.setdefault(domain, deque())
        seen[cycle] += 1
        order.append(cycle)
        if seen[cycle] > 1:
            self._flag_conformance(
                domain, cycle, "slot served more than once"
            )
        # Bounded memory: forget cycles older than two intervals.
        floor = cycle - 2 * schedule.interval_length
        while order and order[0] < floor:
            old = order.popleft()
            seen[old] -= 1
            if seen[old] <= 0:
                del seen[old]

    # ------------------------------------------------------------------
    # Timing: DRAM commands (streaming TimingChecker).
    # ------------------------------------------------------------------

    def observe_command(self, command: Command) -> None:
        """One command, live from the controller's issue path.

        Commands must arrive in non-decreasing cycle order per channel.
        """
        state = self._channels.setdefault(command.channel, _ChannelState())
        self._check_command_bus(state, command)
        self._check_data_bus(state, command)
        self._check_refresh(state, command)
        self._check_bank(state, command)
        self._check_rank(state, command)

    def finalize(self) -> None:
        """Flush windowed state and run the end-of-run shape check."""
        if self._finalized:
            return
        self._finalized = True
        for state in self._channels.values():
            self._flush_data_bus(state, None)
        self._check_constant_service()

    # -- command bus ----------------------------------------------------

    def _check_command_bus(
        self, state: _ChannelState, cmd: Command
    ) -> None:
        if cmd.type in (CommandType.POWER_DOWN, CommandType.POWER_UP):
            return
        if cmd.cycle != state.bus_cycle:
            state.bus_cycle = cmd.cycle
            state.bus_first = cmd
            state.bus_count = 1
            return
        state.bus_count += 1
        if state.bus_count == 2:
            # One violation per overcommitted cycle, like the offline
            # checker's per-cycle grouping.
            self._flag_timing(
                Violation("command-bus", state.bus_first, cmd, 1, 0)
            )

    # -- data bus -------------------------------------------------------

    def _check_data_bus(self, state: _ChannelState, cmd: Command) -> None:
        p = self.params
        if not cmd.type.is_column:
            # Every command still advances the flush floor.
            self._flush_data_bus(state, cmd.cycle + min(p.tCAS, p.tCWD))
            return
        floor = cmd.cycle + min(p.tCAS, p.tCWD)
        self._flush_data_bus(state, floor)
        offset = p.tCAS if cmd.type.is_read else p.tCWD
        start = cmd.cycle + offset
        entry = (start, state.pending_seq, cmd)
        state.pending_seq += 1
        bisect.insort(state.pending, entry)

    def _flush_data_bus(
        self, state: _ChannelState, floor: Optional[int]
    ) -> None:
        """Finalize transfers whose order can no longer change: any
        future command's transfer starts at or after ``floor``."""
        p = self.params
        while state.pending and (
            floor is None or state.pending[0][0] < floor
        ):
            entry = state.pending.pop(0)
            if state.last_final is not None:
                s1, _, c1 = state.last_final
                s2, _, c2 = entry
                gap = (
                    p.tBURST if c1.rank == c2.rank
                    else p.tBURST + p.tRTRS
                )
                if s2 - s1 < gap:
                    self._flag_timing(
                        Violation("data-bus", c1, c2, gap, s2 - s1)
                    )
            state.last_final = entry

    # -- refresh (tRFC) -------------------------------------------------

    def _check_refresh(self, state: _ChannelState, cmd: Command) -> None:
        p = self.params
        rank = state.ranks.setdefault(cmd.rank, _RankState())
        # Prune dead refresh windows.
        rank.active_refs = [
            ref for ref in rank.active_refs
            if cmd.cycle < ref.cycle + p.tRFC
        ]
        cycle, cmds = rank.cycle_cmds
        if cycle != cmd.cycle:
            cycle, cmds = cmd.cycle, []
        if cmd.type is CommandType.REFRESH:
            # Same-cycle commands observed before this REF are inside
            # its window too (offline checks both directions of a tie).
            for other in cmds:
                self._flag_timing(
                    Violation("tRFC", cmd, other, p.tRFC, 0)
                )
            rank.active_refs.append(cmd)
        else:
            for ref in rank.active_refs:
                if ref.cycle <= cmd.cycle < ref.cycle + p.tRFC:
                    self._flag_timing(Violation(
                        "tRFC", ref, cmd, p.tRFC, cmd.cycle - ref.cycle
                    ))
            cmds = cmds + [cmd]
        rank.cycle_cmds = (cycle, cmds)

    # -- per-bank rules -------------------------------------------------

    def _check_bank(self, state: _ChannelState, cmd: Command) -> None:
        p = self.params
        if cmd.type is CommandType.REFRESH or cmd.bank < 0:
            return
        bank = state.banks.setdefault((cmd.rank, cmd.bank), _BankState())
        if cmd.type is CommandType.ACTIVATE:
            if bank.last_act is not None and (
                cmd.cycle - bank.last_act.cycle < p.tRC
            ):
                self._flag_timing(Violation(
                    "tRC", bank.last_act, cmd, p.tRC,
                    cmd.cycle - bank.last_act.cycle,
                ))
            if cmd.cycle < bank.implied_pre_done:
                self._flag_timing(Violation(
                    "tRP(auto)", bank.last_act, cmd, 0,
                    cmd.cycle - bank.implied_pre_done,
                ))
            bank.last_act = cmd
        elif cmd.type.is_column:
            if bank.last_act is None:
                self._flag_timing(Violation("no-activate", cmd, cmd, 0, 0))
                return
            if cmd.cycle - bank.last_act.cycle < p.tRCD:
                self._flag_timing(Violation(
                    "tRCD", bank.last_act, cmd, p.tRCD,
                    cmd.cycle - bank.last_act.cycle,
                ))
            if cmd.type.auto_precharge:
                if cmd.type.is_read:
                    pre_at = max(cmd.cycle + p.tRTP,
                                 bank.last_act.cycle + p.tRAS)
                else:
                    pre_at = max(
                        cmd.cycle + p.tCWD + p.tBURST + p.tWR,
                        bank.last_act.cycle + p.tRAS,
                    )
                bank.implied_pre_done = pre_at + p.tRP
        elif cmd.type is CommandType.PRECHARGE:
            if bank.last_act is not None and (
                cmd.cycle - bank.last_act.cycle < p.tRAS
            ):
                self._flag_timing(Violation(
                    "tRAS", bank.last_act, cmd, p.tRAS,
                    cmd.cycle - bank.last_act.cycle,
                ))
            bank.implied_pre_done = cmd.cycle + p.tRP

    # -- per-rank rules -------------------------------------------------

    def _check_rank(self, state: _ChannelState, cmd: Command) -> None:
        p = self.params
        rank = state.ranks.setdefault(cmd.rank, _RankState())
        if cmd.type is CommandType.ACTIVATE:
            if rank.last_act is not None and (
                cmd.cycle - rank.last_act.cycle < p.tRRD
            ):
                self._flag_timing(Violation(
                    "tRRD", rank.last_act, cmd, p.tRRD,
                    cmd.cycle - rank.last_act.cycle,
                ))
            if len(rank.act_cycles) == 4:
                a1 = rank.act_cycles[0]
                if cmd.cycle - a1.cycle < p.tFAW:
                    self._flag_timing(Violation(
                        "tFAW", a1, cmd, p.tFAW, cmd.cycle - a1.cycle
                    ))
            rank.last_act = cmd
            rank.act_cycles.append(cmd)
        elif cmd.type.is_column:
            if rank.last_col is not None:
                c1 = rank.last_col
                gap = cmd.cycle - c1.cycle
                if c1.type.is_read == cmd.type.is_read:
                    need, rule = p.tCCD, "tCCD"
                elif c1.type.is_read:
                    need, rule = p.read_to_write, "rd->wr"
                else:
                    need, rule = p.write_to_read, "wr->rd(tWTR)"
                if gap < need:
                    self._flag_timing(
                        Violation(rule, c1, cmd, need, gap)
                    )
            rank.last_col = cmd

    # -- end-of-run shape check -----------------------------------------

    def _check_constant_service(
        self, tolerance_intervals: int = 2
    ) -> None:
        """Streaming port of
        :func:`~repro.core.invariants.check_constant_service`."""
        schedule = self.schedule
        if schedule is None or self._horizon == 0:
            return
        intervals = (
            (self._horizon - schedule.lead) // schedule.interval_length + 1
        )
        for domain, served in sorted(self._service_counts.items()):
            share = len(schedule.slots_of_domain(domain))
            expected = intervals * share
            if abs(served - expected) > tolerance_intervals * share:
                self._flag_conformance(
                    domain, self._horizon,
                    f"served {served} slots, expected ~{expected}",
                )


__all__ = ["OnlineInvariantMonitor"]
