"""Offline constraint solver for Fixed Service pipelines (Section 3-4).

The paper builds FS schedules by solving systems of integer inequalities
over the DRAM timing parameters: pick the anchor event that repeats with a
fixed period ``l`` (the data burst, the Activate/RAS, or the column
command/CAS), then find the smallest ``l`` such that *no* assignment of
reads and writes to slots can create a command-bus, data-bus, bank, or
rank conflict.

This module generalizes the paper's hand-derived equations: for a
candidate ``l`` it enumerates every slot pair within the constraint
horizon and every read/write type combination and checks the full
constraint set for the requested sharing level.  For the Table-1 part it
reproduces the paper's solutions exactly:

====================  ==========  ==========  =========
sharing level         DATA        RAS         CAS
====================  ==========  ==========  =========
rank partitioning     **7**       12          12
bank partitioning     21          **15**      15
no partitioning       49          **43**      43
====================  ==========  ==========  =========

(bold = the pipeline the paper selects for that level).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..dram.timing import TimingParams


class PeriodicMode(enum.Enum):
    """Which event recurs every ``l`` cycles (paper Section 3)."""

    DATA = "data"
    RAS = "ras"
    CAS = "cas"


class SharingLevel(enum.Enum):
    """Worst-case resource relationship between two different slots."""

    #: Different slots always target different ranks (rank partitioning):
    #: only the channel buses are shared.
    RANK = "rank"
    #: Different slots may target the same rank, never the same bank.
    BANK = "bank"
    #: Different slots may target the very same bank (no partitioning).
    NONE = "none"


@dataclass(frozen=True)
class SlotTiming:
    """Command/data times of one slot relative to its anchor.

    ``act``, ``col`` and ``data`` are offsets from ``k * l`` for slot k;
    they depend on whether the slot is a read or a write.
    """

    act: int
    col: int
    data: int
    is_read: bool


def slot_timing(
    params: TimingParams, mode: PeriodicMode, is_read: bool
) -> SlotTiming:
    """Offsets of ACT / column / data for one slot, per periodic mode."""
    p = params
    col_to_data = p.tCAS if is_read else p.tCWD
    if mode is PeriodicMode.DATA:
        data = 0
        col = -col_to_data
        act = col - p.tRCD
    elif mode is PeriodicMode.RAS:
        act = 0
        col = p.tRCD
        data = col + col_to_data
    else:  # CAS periodic
        col = 0
        act = -p.tRCD
        data = col_to_data
    return SlotTiming(act=act, col=col, data=data, is_read=is_read)


@dataclass(frozen=True)
class ConflictReport:
    """Why a candidate ``l`` was rejected (for diagnostics and tests)."""

    l: int
    rule: str
    distance: int
    earlier_is_read: bool
    later_is_read: bool
    required: int
    actual: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        e = "R" if self.earlier_is_read else "W"
        lt = "R" if self.later_is_read else "W"
        return (
            f"l={self.l}: {self.rule} between slots {self.distance} apart "
            f"({e}->{lt}) needs {self.required}, got {self.actual}"
        )


class PipelineSolver:
    """Finds the minimal conflict-free slot gap ``l``."""

    def __init__(self, params: TimingParams) -> None:
        self.params = params

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def check(
        self, l: int, mode: PeriodicMode, sharing: SharingLevel
    ) -> Optional[ConflictReport]:
        """Return the first conflict for slot gap ``l``, or None if legal."""
        if l < 1:
            raise ValueError("slot gap must be >= 1")
        horizon = self._horizon()
        max_distance = max(1, -(-horizon // l))  # ceil
        timings = {
            True: slot_timing(self.params, mode, True),
            False: slot_timing(self.params, mode, False),
        }
        for d in range(1, max_distance + 1):
            for first_read, second_read in itertools.product(
                (True, False), repeat=2
            ):
                report = self._check_pair(
                    l, d, timings[first_read], timings[second_read], sharing
                )
                if report is not None:
                    return report
        if sharing in (SharingLevel.BANK, SharingLevel.NONE):
            report = self._check_faw(l, timings)
            if report is not None:
                return report
        return None

    def solve(
        self,
        mode: PeriodicMode,
        sharing: SharingLevel,
        max_l: int = 512,
    ) -> int:
        """Smallest ``l`` with no conflicts (paper Equations 1-4)."""
        for l in range(self.params.tBURST, max_l + 1):
            if self.check(l, mode, sharing) is None:
                return l
        raise RuntimeError(
            f"no feasible slot gap <= {max_l} for mode={mode.value} "
            f"sharing={sharing.value}"
        )

    def solve_all(
        self, max_l: int = 512
    ) -> Dict[Tuple[str, str], int]:
        """Minimal ``l`` for every (sharing, mode) combination."""
        out: Dict[Tuple[str, str], int] = {}
        for sharing in SharingLevel:
            for mode in PeriodicMode:
                out[(sharing.value, mode.value)] = self.solve(
                    mode, sharing, max_l
                )
        return out

    def best(self, sharing: SharingLevel, max_l: int = 512
             ) -> Tuple[PeriodicMode, int]:
        """The (mode, l) pair with the smallest ``l`` for a sharing level.

        Ties break in PeriodicMode declaration order (DATA first), which
        matches the paper's choices: DATA for rank partitioning, RAS for
        bank and no partitioning.
        """
        options = [
            (self.solve(mode, sharing, max_l), mode) for mode in PeriodicMode
        ]
        l, mode = min(options, key=lambda t: t[0])
        return mode, l

    def same_bank_min_gap(self) -> int:
        """Worst-case anchor gap for two transactions to the *same bank*.

        A write followed by a read to a different row of the same bank
        needs ``tRCD + tCWD + tBURST + tWR + tRP`` = 43 cycles between
        activates (Section 4.3 / Section 7 sensitivity discussion).
        """
        p = self.params
        return max(p.tRC, p.write_turnaround_same_bank,
                   p.tRCD + p.tCAS + p.tRTP + p.tRP)

    # ------------------------------------------------------------------
    # Constraint checks.
    # ------------------------------------------------------------------

    def _horizon(self) -> int:
        """Largest time span any pairwise constraint can reach across."""
        p = self.params
        reach = max(
            p.tFAW,
            p.tRC,
            p.write_turnaround_same_bank,
            p.write_to_read,
            p.read_to_write,
            p.tBURST + p.tRTRS,
        )
        offsets = p.tRCD + max(p.tCAS, p.tCWD)
        return reach + 2 * offsets

    def _check_pair(
        self,
        l: int,
        d: int,
        first: SlotTiming,
        second: SlotTiming,
        sharing: SharingLevel,
    ) -> Optional[ConflictReport]:
        """Check slot k (timing ``first``) against slot k+d (``second``)."""
        p = self.params
        shift = d * l

        def report(rule: str, required: int, actual: int) -> ConflictReport:
            return ConflictReport(
                l, rule, d, first.is_read, second.is_read, required, actual
            )

        # --- command bus: one command per cycle, ever. -----------------
        first_cmds = (first.act, first.col)
        second_cmds = (second.act + shift, second.col + shift)
        for a in first_cmds:
            for b in second_cmds:
                if a == b:
                    return report("command-bus", 1, 0)

        # --- data bus. --------------------------------------------------
        data_gap = abs((second.data + shift) - first.data)
        if sharing is SharingLevel.RANK:
            # Worst case: the two slots are different ranks.
            need = p.tBURST + p.tRTRS
            if data_gap < need:
                return report("data-bus(tRTRS)", need, data_gap)
            return None  # nothing else is shared across ranks
        # Same-rank worst case still has to honour the cross-rank data
        # bubble (the slots *may* be different ranks too).
        need = p.tBURST + p.tRTRS
        if data_gap < need:
            return report("data-bus(tRTRS)", need, data_gap)

        # --- same-rank rank-level constraints (BANK and NONE). ---------
        act_gap = (second.act + shift) - first.act
        if abs(act_gap) < p.tRRD:
            return report("tRRD", p.tRRD, abs(act_gap))

        col_first = first.col
        col_second = second.col + shift
        if col_first <= col_second:
            earlier_read, later_read = first.is_read, second.is_read
            col_gap = col_second - col_first
        else:
            earlier_read, later_read = second.is_read, first.is_read
            col_gap = col_first - col_second
        if earlier_read == later_read:
            need, rule = p.tCCD, "tCCD"
        elif earlier_read:
            need, rule = p.read_to_write, "rd->wr"
        else:
            need, rule = p.write_to_read, "wr->rd(tWTR)"
        if col_gap < need:
            return report(rule, need, col_gap)

        if sharing is SharingLevel.BANK:
            return None

        # --- same-bank constraints (NONE). ------------------------------
        if abs(act_gap) < p.tRC:
            return report("tRC", p.tRC, abs(act_gap))
        # The later activate must wait for the earlier transaction's
        # (auto-)precharge to finish.
        if first.is_read:
            pre_done = max(
                first.col + p.tRTP, first.act + p.tRAS
            ) + p.tRP
        else:
            pre_done = max(
                first.col + p.tCWD + p.tBURST + p.tWR,
                first.act + p.tRAS,
            ) + p.tRP
        act_later = second.act + shift
        if act_later < pre_done:
            return report(
                "precharge-turnaround",
                pre_done - first.act,
                act_later - first.act,
            )
        return None

    def _check_faw(
        self, l: int, timings: Dict[bool, SlotTiming]
    ) -> Optional[ConflictReport]:
        """tFAW: activates of slots k and k+4 (same rank, worst case)."""
        p = self.params
        for first_read, fifth_read in itertools.product(
            (True, False), repeat=2
        ):
            gap = (timings[fifth_read].act + 4 * l) - timings[first_read].act
            if gap < p.tFAW:
                return ConflictReport(
                    l, "tFAW", 4, first_read, fifth_read, p.tFAW, gap
                )
        return None


@dataclass(frozen=True)
class GroupedPipeline:
    """A grouped FS pipeline: each domain issues ``group_size``
    consecutive transactions, ``intra_gap`` apart (same rank, different
    banks), with ``inter_gap`` before the next domain's group."""

    group_size: int
    intra_gap: int
    inter_gap: int

    @property
    def cycles_per_slot(self) -> float:
        """Average pipeline cost of one transaction slot."""
        total = (self.group_size - 1) * self.intra_gap + self.inter_gap
        return total / self.group_size

    def anchors(self, period_index: int = 0) -> list:
        """Anchor offsets of one group, starting at the period origin."""
        base = period_index * (
            (self.group_size - 1) * self.intra_gap + self.inter_gap
        )
        return [base + i * self.intra_gap for i in range(self.group_size)]


class GroupedPipelineSolver:
    """Section 3 "Improving bandwidth": N transactions per thread.

    Within a group the transactions share a rank (no tRTRS) but use
    different banks; between groups the rank changes.  The solver finds
    the (intra, inter) gap pair minimizing average cycles per
    transaction and lets the caller compare against the plain pipeline —
    reproducing the paper's conclusion that grouping does *not* help for
    the Table-1 part.
    """

    def __init__(self, params: TimingParams) -> None:
        self.params = params
        self._plain = PipelineSolver(params)

    def check(
        self, mode: PeriodicMode, group_size: int,
        intra_gap: int, inter_gap: int, horizon_groups: int = 8,
    ) -> bool:
        """Is the periodic grouped pattern conflict-free?"""
        if group_size < 1 or intra_gap < 1 or inter_gap < 1:
            raise ValueError("gaps and group size must be positive")
        pipeline = GroupedPipeline(group_size, intra_gap, inter_gap)
        anchors: list = []
        groups: list = []
        for g in range(horizon_groups):
            for a in pipeline.anchors(g):
                anchors.append(a)
                groups.append(g)
        timings = {
            True: slot_timing(self.params, mode, True),
            False: slot_timing(self.params, mode, False),
        }
        n = len(anchors)
        for i in range(n):
            for j in range(i + 1, n):
                for ri, rj in itertools.product((True, False), repeat=2):
                    if not self._pair_ok(
                        anchors[i], timings[ri], groups[i],
                        anchors[j], timings[rj], groups[j],
                    ):
                        return False
        # tFAW within a rank: activates of one group plus the wrap to
        # the same domain's next period are far apart; check the intra
        # group window directly.
        if group_size >= 4:
            for ri, rj in itertools.product((True, False), repeat=2):
                gap = (
                    (4 * intra_gap + timings[rj].act)
                    - timings[ri].act
                )
                if gap < self.params.tFAW:
                    return False
        return True

    def _pair_ok(self, a_i, t_i, g_i, a_j, t_j, g_j) -> bool:
        p = self.params
        # Command bus: never two commands in one cycle.
        for x in (t_i.act + a_i, t_i.col + a_i):
            for y in (t_j.act + a_j, t_j.col + a_j):
                if x == y:
                    return False
        data_gap = abs((t_j.data + a_j) - (t_i.data + a_i))
        if g_i != g_j:
            # Different ranks: only the shared buses matter.
            return data_gap >= p.tBURST + p.tRTRS
        # Same rank, different banks.
        if data_gap < p.tBURST:
            return False
        act_gap = abs((t_j.act + a_j) - (t_i.act + a_i))
        if act_gap < p.tRRD:
            return False
        col_i, col_j = t_i.col + a_i, t_j.col + a_j
        if col_i <= col_j:
            first_read, second_read = t_i.is_read, t_j.is_read
            col_gap = col_j - col_i
        else:
            first_read, second_read = t_j.is_read, t_i.is_read
            col_gap = col_i - col_j
        if first_read == second_read:
            need = p.tCCD
        elif first_read:
            need = p.read_to_write
        else:
            need = p.write_to_read
        return col_gap >= need

    def solve(
        self, mode: PeriodicMode, group_size: int, max_gap: int = 64
    ) -> GroupedPipeline:
        """Cheapest feasible (intra, inter) pair for a group size."""
        best: Optional[GroupedPipeline] = None
        for intra in range(self.params.tBURST, max_gap + 1):
            for inter in range(
                self.params.tBURST + self.params.tRTRS, max_gap + 1
            ):
                candidate = GroupedPipeline(group_size, intra, inter)
                if best is not None and (
                    candidate.cycles_per_slot >= best.cycles_per_slot
                ):
                    continue
                if self.check(mode, group_size, intra, inter):
                    best = candidate
        if best is None:
            raise RuntimeError(
                f"no feasible grouped pipeline within gap <= {max_gap}"
            )
        return best

    def grouping_helps(
        self, mode: PeriodicMode = PeriodicMode.DATA,
        group_sizes=(2, 3, 4),
    ) -> Dict[int, float]:
        """Average cycles/transaction for each group size vs plain.

        For the Table-1 part every entry is >= the plain pipeline's
        slot gap — the paper's negative result.
        """
        plain = self._plain.solve(mode, SharingLevel.RANK)
        out = {1: float(plain)}
        for n in group_sizes:
            out[n] = self.solve(mode, n).cycles_per_slot
        return out


def paper_solutions(params: TimingParams) -> Dict[str, int]:
    """The named design points from Sections 3-4, solved from scratch.

    Keys: ``fs_rp`` (rank partitioning, periodic data), ``fs_bp``
    (bank partitioning, periodic RAS), ``fs_np`` (no partitioning,
    periodic RAS), plus the rejected alternatives the paper quotes.
    """
    solver = PipelineSolver(params)
    return {
        "fs_rp": solver.solve(PeriodicMode.DATA, SharingLevel.RANK),
        "fs_rp_ras": solver.solve(PeriodicMode.RAS, SharingLevel.RANK),
        "fs_rp_cas": solver.solve(PeriodicMode.CAS, SharingLevel.RANK),
        "fs_bp_data": solver.solve(PeriodicMode.DATA, SharingLevel.BANK),
        "fs_bp": solver.solve(PeriodicMode.RAS, SharingLevel.BANK),
        "fs_np": solver.solve(PeriodicMode.RAS, SharingLevel.NONE),
        "same_bank_gap": solver.same_bank_min_gap(),
    }
