"""The Fixed Service memory controller (Sections 3-5).

:class:`FixedServiceController` interprets a precomputed
:class:`~repro.core.schedule.FixedServiceSchedule`: at every slot it
dispatches one transaction of the slot's domain — the queue head when
legal, another queued transaction when the head would violate one of the
domain's *own* DRAM hazards, a prefetch when the queue is empty, a dummy
otherwise, and a bubble when even a dummy is illegal.  Command times are
pure functions of the slot anchor, never of resource availability, so a
domain's service is bit-for-bit independent of its co-runners.

The same class covers the paper's FS_RP (rank partitioning), the basic
bank-partitioned and no-partitioning pipelines, and the triple-alternation
optimization (whose bank restrictions ride in on the schedule's
:attr:`~repro.core.schedule.SlotSpec.bank_mod`).  Reordered bank
partitioning lives in :mod:`repro.core.fs_reordered`.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..controllers.base import MemoryController
from ..dram.commands import (
    Address,
    Command,
    CommandType,
    OpType,
    Request,
    RequestKind,
)
from ..dram.refresh import RefreshScheduler
from ..dram.system import DramSystem
from ..faults import FaultInjector, FaultKind
from ..mapping.partition import PartitionPolicy
from .energy_opts import EnergyAdjustments, FsEnergyOptions
from .pipeline_solver import SharingLevel
from .schedule import CommandTimes, FixedServiceSchedule, SlotSpec
from .shaping import DomainHazardTracker, DummyGenerator


class PrefetchBuffer:
    """A small per-domain buffer holding prefetched lines (FIFO evict)."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lines: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.fills = 0

    def fill(self, line: int) -> None:
        if line in self._lines:
            self._lines.move_to_end(line)
            return
        self._lines[line] = True
        self.fills += 1
        while len(self._lines) > self.capacity:
            self._lines.popitem(last=False)

    def hit(self, line: Optional[int]) -> bool:
        if line is None or line not in self._lines:
            return False
        del self._lines[line]
        self.hits += 1
        return True

    @property
    def useful_fraction(self) -> float:
        if self.fills == 0:
            return 0.0
        return self.hits / self.fills


class FixedServiceController(MemoryController):
    """FS scheduling over a validated slot timetable."""

    #: How deep to scan a domain's queue for a legal transaction when the
    #: head is blocked by one of the domain's own hazards.
    SCAN_DEPTH = 8
    #: Latency (cycles) of returning a read that hits the prefetch buffer.
    PREFETCH_HIT_LATENCY = 5
    #: Per-domain transaction-queue capacity (Section 5.1: "the FS
    #: transaction queue can be relatively small because it is largely
    #: in-order"); a full queue back-pressures the owning core only.
    QUEUE_CAPACITY = 64

    def __init__(
        self,
        dram: DramSystem,
        schedule: FixedServiceSchedule,
        partition: PartitionPolicy,
        channel: int = 0,
        energy_options: FsEnergyOptions = None,
        prefetchers: Optional[Dict[int, object]] = None,
        refresh: "RefreshScheduler" = None,
        log_commands: bool = False,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(dram, schedule.num_domains, log_commands)
        if channel >= dram.num_channels:
            raise ValueError("channel out of range")
        self.schedule = schedule
        self.partition = partition
        self.channel_id = channel
        self.energy_options = energy_options or FsEnergyOptions.none()
        self.adjustments = EnergyAdjustments()
        self.prefetchers = prefetchers or {}
        self.prefetch_buffers: Dict[int, PrefetchBuffer] = {
            d: PrefetchBuffer() for d in range(self.num_domains)
        }
        self._queues: Dict[int, List[Request]] = {
            d: [] for d in range(self.num_domains)
        }
        self._hazards: Dict[int, DomainHazardTracker] = {
            d: DomainHazardTracker(dram.params)
            for d in range(self.num_domains)
        }
        self._dummies: Dict[int, DummyGenerator] = {
            d: DummyGenerator(d, partition, channel)
            for d in range(self.num_domains)
        }
        #: Last (bank-key -> row) serviced per domain, for the row-buffer
        #: energy boost.
        self._last_row: Dict[int, Dict[Tuple[int, int], int]] = {
            d: {} for d in range(self.num_domains)
        }
        #: Staged commands, applied to the channel in time order.
        self._staged: List[Tuple[int, int, Command]] = []
        self._stage_seq = itertools.count()
        self._next_slot = 0
        #: Optional fault-injection oracle; every predicate it answers is
        #: a pure function of (seed, domain, the domain's own progress),
        #: so faults cannot carry information between domains.
        self.fault_injector = fault_injector
        self._last_issued_key: Optional[Tuple] = None
        # Decisions must lead the earliest possible command of a slot.
        self._decision_lead = self._earliest_command_offset()
        self.refresh = refresh
        #: Domain -> ranks it owns on this channel (refresh suppression).
        self._domain_ranks: Dict[int, Tuple[int, ...]] = {
            d: tuple(sorted({
                rk for ch, rk, _ in partition.resources(d)
                if ch == channel
            }))
            for d in range(self.num_domains)
        }
        if self.refresh is not None and self.refresh.enabled:
            if schedule.sharing is not SharingLevel.RANK:
                raise ValueError(
                    "deterministic refresh is only supported with rank "
                    "partitioning (a refresh blackout must map to whole "
                    "domains)"
                )
            self._refresh_residue = self._free_command_residue()
            self._next_ref_windows = [
                self.refresh.next_refresh(rk, 0)
                for rk in range(len(dram.channels[channel].ranks))
            ]
        self.stat_refreshes = 0

    # ------------------------------------------------------------------

    def _earliest_command_offset(self) -> int:
        read = self.schedule.command_times(0, True)
        write = self.schedule.command_times(0, False)
        return min(read.first, write.first)

    def _free_command_residues(self) -> List[int]:
        """Cycle residues (mod the slot gap) no FS command ever uses.

        Section 5.2 observes that the FS pipeline leaves fixed command-bus
        cycles idle ("the command bus is free to transmit the power-down
        signal in that cycle"); we use them to issue REFRESH and
        power-down/up commands without any possibility of a bus conflict.
        """
        l = self.schedule.slot_gap
        used = set()
        for is_read in (True, False):
            rel = self.schedule.command_times(0, is_read)
            used.add(rel.act % l)
            used.add(rel.col % l)
        return [r for r in range(l) if r not in used]

    def _free_command_residue(self) -> int:
        residues = self._free_command_residues()
        if not residues:
            raise RuntimeError(
                "no free command-bus residue: refresh cannot be "
                "scheduled deterministically for this pipeline"
            )
        return residues[0]

    def _refresh_blackout(self, rank: int, anchor: int) -> bool:
        """Is a slot anchored at ``anchor`` inside ``rank``'s refresh
        blackout?  Purely clock-driven, hence leakage-free.

        A slot is suppressed when a refresh window starts inside
        ``(anchor - guard_post, anchor + guard_pre]``: ``guard_pre``
        covers the slot's own tail (worst-case activate-to-precharge
        recovery plus the REF residue shift) and ``guard_post`` covers
        tRFC plus the slot's command lead.
        """
        p = self.params
        l = self.schedule.slot_gap
        guard_pre = p.write_turnaround_same_bank + l
        guard_post = p.tRFC + (-self._decision_lead) + l
        window = self.refresh.next_refresh(
            rank, max(0, anchor - guard_post + 1)
        )
        return window is not None and window.start <= anchor + guard_pre

    def _pump_refreshes(self, until: int) -> None:
        """Stage REF commands whose windows open before ``until``."""
        for rank in range(len(self._next_ref_windows)):
            while True:
                window = self._next_ref_windows[rank]
                if window.start > until:
                    break
                # Land on the schedule's free command-bus residue.
                l = self.schedule.slot_gap
                cycle = window.start
                shift = (
                    self._refresh_residue
                    - (cycle - self.schedule.lead)
                ) % l
                cycle += shift
                self._stage(Command(
                    CommandType.REFRESH, cycle, self.channel_id, rank
                ))
                self.stat_refreshes += 1
                self._next_ref_windows[rank] = self.refresh.next_refresh(
                    rank, window.start + 1
                )

    def _slot_geometry(self, g: int) -> Tuple[int, SlotSpec, int]:
        interval, idx = divmod(g, self.schedule.slots_per_interval)
        spec = self.schedule.slots[idx]
        return interval, spec, self.schedule.anchor(interval, spec)

    def _decide_cycle(self, g: int) -> int:
        _, _, anchor = self._slot_geometry(g)
        return anchor + self._decision_lead

    # ------------------------------------------------------------------
    # MemoryController interface.
    # ------------------------------------------------------------------

    def enqueue(self, request: Request) -> None:
        if request.address.channel != self.channel_id:
            raise ValueError("request routed to the wrong FS channel")
        if request.is_read:
            # Store-to-load bypass within the domain's own transaction
            # queue, "just as in a baseline transaction queue" (Section
            # 5.1).  Only the domain's own writes are visible — no
            # cross-domain state is consulted.
            for queued in self._queues[request.domain]:
                if not queued.is_read and queued.line == request.line \
                        and request.line is not None:
                    self._schedule_release(request, request.arrival + 1)
                    return
        if request.is_read and self.prefetch_buffers[
            request.domain
        ].hit(request.line):
            # The prefetcher must keep seeing the demand stream even
            # when its own prefetches absorb it, or streams die after
            # one queue depth.
            prefetcher = self.prefetchers.get(request.domain)
            if prefetcher is not None and request.line is not None:
                prefetcher.observe(request.line)
            self._schedule_release(
                request, request.arrival + self.PREFETCH_HIT_LATENCY
            )
            return
        self._queues[request.domain].append(request)
        if self.fault_injector is not None:
            # Transient queue-overflow faults are armed per actual
            # enqueue, i.e. per position in the domain's own stream.
            self.fault_injector.note_enqueue(
                request.domain, request.arrival
            )

    def pending(self, domain: Optional[int] = None) -> int:
        if domain is not None:
            return len(self._queues[domain])
        return sum(map(len, self._queues.values()))

    def can_accept(self, domain: int) -> bool:
        """Back-pressure is a pure function of the domain's own queue
        (and, under fault injection, of the domain's own fault schedule —
        a transient overflow shrinks only the faulted domain's capacity,
        stalling only the owning core)."""
        capacity = self.QUEUE_CAPACITY
        if self.fault_injector is not None:
            capacity = self.fault_injector.effective_capacity(
                domain, capacity
            )
        return len(self._queues[domain]) < capacity

    def next_event(self) -> Optional[int]:
        """FS always has a next slot; report the sooner of the next slot
        decision, the next staged command, and the next release."""
        candidates = [self._decide_cycle(self._next_slot)]
        if self._staged:
            candidates.append(self._staged[0][0])
        if self._release_heap:
            candidates.append(self._release_heap[0][0])
        return max(self.now + 1, min(candidates))

    def busy(self) -> bool:
        """Outstanding *demand* work; dummy slots alone never count (the
        FS pipeline ticks forever, but there is nothing left to wait for)."""
        return bool(
            self._release_heap or any(self._queues.values())
        )

    def _work(self, until: int) -> None:
        if self.refresh is not None and self.refresh.enabled:
            self._pump_refreshes(until + self.schedule.interval_length)
        while True:
            decide_at = self._decide_cycle(self._next_slot)
            staged_at = self._staged[0][0] if self._staged else None
            if decide_at <= until and (
                staged_at is None or decide_at <= staged_at
            ):
                self._decide_slot(self._next_slot)
                self._next_slot += 1
                continue
            if staged_at is not None and staged_at <= until:
                _, _, command = heapq.heappop(self._staged)
                key = (
                    command.type, command.cycle, command.channel,
                    command.rank, command.bank, command.row,
                )
                if key == self._last_issued_key:
                    # Issue-path guard: a duplicated command (fault model
                    # ``duplicate_command``) is squashed before it can
                    # collide on the command bus or disturb bank state.
                    self.stats.squashed_duplicates += 1
                    continue
                self._last_issued_key = key
                self._issue(command)
                continue
            break
        self.dram.channels[self.channel_id].prune(self.now)

    # ------------------------------------------------------------------
    # Slot decisions.
    # ------------------------------------------------------------------

    def _decide_slot(self, g: int) -> None:
        interval, spec, anchor = self._slot_geometry(g)
        domain = spec.domain
        decide_at = anchor + self._decision_lead
        if self.refresh is not None and self.refresh.enabled:
            if any(
                self._refresh_blackout(rk, anchor)
                for rk in self._domain_ranks[domain]
            ):
                self.stats.bubbles += 1
                self._trace(domain, anchor, "-")
                return
        injector = self.fault_injector
        if injector is not None:
            if injector.refresh_collision(domain, g):
                # A spurious refresh blackout: the slot becomes a bubble
                # (exactly what a real blackout produces) and the demand
                # stays queued for the domain's next slot.
                injector.record(
                    FaultKind.REFRESH_COLLISION, domain, anchor,
                    "spurious refresh blackout",
                )
                self.stats.faulted_slots += 1
                self.stats.bubbles += 1
                self._trace(domain, anchor, "-")
                return
            if injector.delay_slot(domain, g):
                # Slot logic stalled for one slot: externally the slot
                # looks exactly like an empty-queue slot (dummy or
                # bubble); the demand is served at the domain's next
                # slot, never a borrowed one.
                injector.record(
                    FaultKind.DELAY_SLOT, domain, anchor,
                    "slot service delayed to next own slot",
                )
                self.stats.faulted_slots += 1
                self._fill_like_empty(domain, spec, anchor, decide_at)
                return
            if injector.borrow_foreign_slot(domain, g) and \
                    self._borrow_foreign(domain, spec, anchor, decide_at):
                return
        request = self._select_demand(domain, spec, anchor, decide_at)
        if request is not None:
            self._queues[domain].remove(request)
            self._dispatch(request, spec, anchor)
            return
        if any(r.arrival <= decide_at for r in self._queues[domain]):
            self.stats.blocked_slots += 1
        prefetch = self._select_prefetch(domain, spec, anchor, decide_at)
        if prefetch is not None:
            self._dispatch(prefetch, spec, anchor)
            return
        if self.energy_options.power_down_idle and \
                self._try_power_down(domain, spec, anchor):
            return
        dummy = self._select_dummy(domain, spec, anchor, decide_at)
        if dummy is not None:
            self._dispatch(dummy, spec, anchor)
            return
        self.stats.bubbles += 1
        self._trace(domain, anchor, "-")

    def _fill_like_empty(
        self, domain: int, spec: SlotSpec, anchor: int, decide_at: int
    ) -> None:
        """Fill a slot exactly as if the domain's queue were empty: a
        dummy when legal, a bubble otherwise.  Used by the delay-slot
        fault path so a fault is externally indistinguishable from an
        idle slot."""
        dummy = self._select_dummy(domain, spec, anchor, decide_at)
        if dummy is not None:
            self._dispatch(dummy, spec, anchor)
            return
        self.stats.bubbles += 1
        self._trace(domain, anchor, "-")

    def _borrow_foreign(
        self, domain: int, spec: SlotSpec, anchor: int, decide_at: int
    ) -> bool:
        """DELIBERATELY BROKEN recovery policy — test-only.

        Serves another domain's backlog inside this domain's slot.  This
        is precisely the recovery shortcut the paper's security argument
        forbids: the borrowed service lands at a foreign slot offset, so
        the borrowing is observable and re-opens the timing channel
        (Kadloor et al. make the same point for TDMA slot borrowing).
        It exists only so the test-suite can prove the online watchdog
        catches a broken recovery path the cycle it happens.
        """
        for other in range(self.num_domains):
            if other == domain:
                continue
            for request in self._queues[other]:
                if request.arrival > decide_at:
                    continue
                # Stay JEDEC-polite (the DRAM model would reject the
                # commands outright otherwise): the breakage here is the
                # *schedule* invariant, which only the watchdog sees.
                times = self.schedule.command_times(
                    anchor, request.is_read
                )
                if not self._hazards[other].legal(
                    times, request.address, request.is_read
                ):
                    continue
                self._queues[other].remove(request)
                if self.fault_injector is not None:
                    self.fault_injector.record(
                        FaultKind.BORROW_FOREIGN_SLOT, other, anchor,
                        f"served in domain {domain}'s slot",
                    )
                self._dispatch(request, spec, anchor)
                return True
        return False

    def _try_power_down(self, domain: int, spec: SlotSpec,
                        anchor: int) -> bool:
        """Energy optimization 3 (Section 5.2): instead of a dummy,
        power the rank down for the rest of the interval and wake it up
        before the domain's next slot.

        The decision is a pure function of the domain's own queue (it is
        empty) and the clock, and the PDN/PUP commands land on
        command-bus residues the FS pipeline provably never uses —
        nothing observable changes for any other domain.
        """
        p = self.params
        l = self.schedule.slot_gap
        ranks = self._domain_ranks[domain]
        if len(ranks) != 1 or \
                len(self.schedule.slots_of_domain(domain)) != 1:
            return False  # only the canonical one-rank/one-slot layout
        residues = self._free_command_residues()
        if len(residues) < 3:
            return False
        rank = ranks[0]
        next_anchor = anchor + self.schedule.interval_length
        if self.refresh is not None and self.refresh.enabled:
            window = self.refresh.next_refresh(
                rank, max(0, anchor - p.tRFC - 64)
            )
            if window is not None and window.start < next_anchor + 64:
                return False  # never power down across a refresh window
        # Dedicated residues: residues[0] belongs to REF; PDN and PUP
        # each get their own so commands from different domains (whose
        # anchors all share the same residue) can never collide.
        pdn_residue, pup_residue = residues[1], residues[2]

        def on_residue(cycle: int, residue: int) -> bool:
            return (cycle - self.schedule.lead) % l == residue

        # Enter after this (empty) slot's span; exit with tXP headroom
        # before the next slot's earliest command.
        pdn = anchor + p.tBURST
        while not on_residue(pdn, pdn_residue):
            pdn += 1
        pup = next_anchor + self._decision_lead - p.tXP - 1
        while not on_residue(pup, pup_residue):
            pup -= 1
        if pup - pdn < p.tCKE + p.tXP:
            return False
        self._stage(Command(
            CommandType.POWER_DOWN, pdn, self.channel_id, rank
        ))
        self._stage(Command(
            CommandType.POWER_UP, pup, self.channel_id, rank
        ))
        self._trace(domain, anchor, "p")
        return True

    def _select_demand(
        self, domain: int, spec: SlotSpec, anchor: int, decide_at: int
    ) -> Optional[Request]:
        tracker = self._hazards[domain]
        scanned = 0
        for request in self._queues[domain]:
            if request.arrival > decide_at:
                continue
            if spec.bank_mod is not None and (
                request.address.bank % 3 != spec.bank_mod
            ):
                # The class filter is a cheap tag compare ("scan a few
                # bits in one queue", Section 5.1); it does not consume
                # the hazard-check scan budget.
                continue
            scanned += 1
            if scanned > self.SCAN_DEPTH:
                break
            times = self.schedule.command_times(anchor, request.is_read)
            if tracker.legal(times, request.address, request.is_read):
                return request
        return None

    def _select_prefetch(
        self, domain: int, spec: SlotSpec, anchor: int, decide_at: int
    ) -> Optional[Request]:
        prefetcher = self.prefetchers.get(domain)
        if prefetcher is None:
            return None
        tracker = self._hazards[domain]
        times = self.schedule.command_times(anchor, True)
        for line in prefetcher.claim_candidates():
            address = self.partition.decode(domain, line)
            if address.channel != self.channel_id:
                continue
            if spec.bank_mod is not None and address.bank % 3 != (
                spec.bank_mod
            ):
                continue
            if not tracker.legal(times, address, True):
                continue
            return Request(
                op=OpType.READ,
                address=address,
                domain=domain,
                kind=RequestKind.PREFETCH,
                arrival=decide_at,
                line=line,
            )
        return None

    def _select_dummy(
        self, domain: int, spec: SlotSpec, anchor: int, decide_at: int
    ) -> Optional[Request]:
        tracker = self._hazards[domain]
        times = self.schedule.command_times(anchor, True)
        for address in self._dummies[domain].candidates(spec.bank_mod):
            if tracker.legal(times, address, True):
                return Request(
                    op=OpType.READ,
                    address=address,
                    domain=domain,
                    kind=RequestKind.DUMMY,
                    arrival=decide_at,
                )
        return None

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------

    def _dispatch(
        self, request: Request, spec: SlotSpec, anchor: int
    ) -> None:
        domain = request.domain
        addr = request.address
        times = self.schedule.command_times(anchor, request.is_read)
        self._hazards[domain].commit(times, addr, request.is_read)

        injector = self.fault_injector
        if injector is not None and injector.drop_command(domain, anchor):
            # The transaction's commands are lost in transit.  Security-
            # preserving recovery: commit the hazards conservatively (the
            # controller cannot know the loss yet), keep the slot's
            # external appearance, and re-issue the transaction in the
            # SAME domain's next slot — never a borrowed foreign slot,
            # which would leak the fault to a co-runner.
            injector.record(
                FaultKind.DROP_COMMAND, domain, anchor,
                f"{request.kind.value} commands dropped; "
                f"retrying next own slot",
            )
            self.stats.faulted_slots += 1
            if request.kind is RequestKind.DEMAND:
                self._queues[domain].insert(0, request)
            self._trace(domain, anchor, "F")
            return

        bank_key = (addr.rank, addr.bank)
        row_hit = self._last_row[domain].get(bank_key) == addr.row
        self._last_row[domain][bank_key] = addr.row
        request.row_hit = row_hit
        if row_hit and self.energy_options.boost_row_hits:
            self.adjustments.rowhit_saved_activates += 1
            self.stats.row_hit_boosts += 1

        suppress = (
            request.kind is RequestKind.DUMMY
            and self.energy_options.suppress_dummies
        )
        if suppress:
            request.suppressed = True
            self.stats.suppressed_dummies += 1
        else:
            col_type = (
                CommandType.COL_READ_AP if request.is_read
                else CommandType.COL_WRITE_AP
            )
            act = Command(
                CommandType.ACTIVATE, times.act, self.channel_id,
                addr.rank, addr.bank, addr.row, request.req_id, domain,
            )
            self._stage(act)
            if injector is not None and injector.duplicate_command(
                domain, anchor
            ):
                # Fault model: the staging logic repeats the ACT; the
                # issue-path guard in _work squashes the copy before it
                # can reach the command bus.
                injector.record(
                    FaultKind.DUPLICATE_COMMAND, domain, anchor,
                    "ACT staged twice",
                )
                self._stage(act)
            self._stage(Command(
                col_type, times.col, self.channel_id, addr.rank,
                addr.bank, addr.row, request.req_id, domain,
            ))

        request.issue = times.first
        request.data_start = times.data
        request.completion = times.data + self.params.tBURST
        self.stats.record_service(request)
        kind = request.kind
        if kind is RequestKind.DEMAND:
            kind_code = "R" if request.is_read else "W"
        elif kind is RequestKind.PREFETCH:
            kind_code = "P"
        else:
            kind_code = "D"
        self._trace(domain, anchor, kind_code)

        if request.kind is RequestKind.PREFETCH:
            self.prefetch_buffers[domain].fill(request.line)
        if request.kind is RequestKind.DEMAND:
            prefetcher = self.prefetchers.get(domain)
            if prefetcher is not None and request.is_read and (
                request.line is not None
            ):
                prefetcher.observe(request.line)
            if request.is_read:
                self._schedule_release(request, request.completion)

    def _stage(self, command: Command) -> None:
        heapq.heappush(
            self._staged, (command.cycle, next(self._stage_seq), command)
        )
