"""Per-domain request shaping helpers (Section 3 / Section 5.2).

The FS controller shapes every security domain to one fixed-footprint
memory access per slot.  The pieces here are deliberately *per-domain
only*: every decision they make depends exclusively on the domain's own
history, which is what makes the controller non-interfering by
construction.

* :class:`DomainHazardTracker` — tracks the domain's own recent commands
  so intra-domain DRAM hazards (the Section-7 "two back-to-back
  transactions to the same rank need 43 cycles" problem at low thread
  counts) can be detected before dispatch.  Cross-domain hazards never
  need checking: the pipeline solver proved the timetable free of them.
* :class:`DummyGenerator` — deterministic dummy-address stream confined
  to the domain's partition (and, under triple alternation, to the slot's
  ``bank % 3`` class).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..dram.commands import Address
from ..dram.timing import TimingParams
from ..mapping.partition import PartitionPolicy
from .schedule import CommandTimes


class DomainHazardTracker:
    """The domain's own command history, for self-hazard checks.

    ``legal`` answers: if this domain dispatches a transaction with the
    given command times, do any of *its own* earlier commands forbid it?
    ``commit`` records a dispatched transaction.
    """

    def __init__(self, params: TimingParams) -> None:
        self.params = params
        #: (rank, bank) -> (act cycle, col cycle, col was read)
        self._bank_last: Dict[Tuple[int, int], Tuple[int, int, bool]] = {}
        #: rank -> recent activate cycles (tFAW window)
        self._rank_acts: Dict[int, Deque[int]] = {}
        #: rank -> (last column cycle, was read)
        self._rank_col: Dict[int, Tuple[int, bool]] = {}

    def legal(
        self, times: CommandTimes, address: Address, is_read: bool
    ) -> bool:
        p = self.params
        key = (address.rank, address.bank)
        last = self._bank_last.get(key)
        if last is not None:
            act, col, col_was_read = last
            if times.act - act < p.tRC:
                return False
            if col_was_read:
                pre_done = max(col + p.tRTP, act + p.tRAS) + p.tRP
            else:
                pre_done = max(
                    col + p.tCWD + p.tBURST + p.tWR, act + p.tRAS
                ) + p.tRP
            if times.act < pre_done:
                return False
        acts = self._rank_acts.get(address.rank)
        if acts:
            if times.act - acts[-1] < p.tRRD:
                return False
            if len(acts) == 4 and times.act - acts[0] < p.tFAW:
                return False
        rank_col = self._rank_col.get(address.rank)
        if rank_col is not None:
            col, was_read = rank_col
            if was_read == is_read:
                need = p.tCCD
            elif was_read:
                need = p.read_to_write
            else:
                need = p.write_to_read
            if times.col - col < need:
                return False
        return True

    def commit(
        self, times: CommandTimes, address: Address, is_read: bool
    ) -> None:
        key = (address.rank, address.bank)
        self._bank_last[key] = (times.act, times.col, is_read)
        self._rank_acts.setdefault(
            address.rank, deque(maxlen=4)
        ).append(times.act)
        self._rank_col[address.rank] = (times.col, is_read)


class DummyGenerator:
    """Deterministic per-domain dummy requests (Section 5.2).

    Banks rotate round-robin through the domain's partition resources and
    rows follow a xorshift stream seeded only by the domain id, so the
    dummy pattern is a pure function of the domain — never of co-runners.
    """

    def __init__(
        self,
        domain: int,
        partition: PartitionPolicy,
        channel: int = 0,
        rows: int = 65536,
    ) -> None:
        resources = [
            r for r in partition.resources(domain) if r[0] == channel
        ]
        if not resources:
            raise ValueError(
                f"domain {domain} owns no resources on channel {channel}"
            )
        self.domain = domain
        self._resources = resources
        self._rows = rows
        self._cursor = 0
        self._state = (domain * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF

    def _next_row(self) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        return x % self._rows

    def candidates(
        self, bank_mod: Optional[int] = None, limit: int = 8
    ) -> List[Address]:
        """Up to ``limit`` dummy addresses, rotating over allowed banks."""
        allowed = [
            (ch, rk, bk)
            for ch, rk, bk in self._resources
            if bank_mod is None or bk % 3 == bank_mod
        ]
        if not allowed:
            return []
        out: List[Address] = []
        row = self._next_row()
        for i in range(min(limit, len(allowed))):
            ch, rk, bk = allowed[(self._cursor + i) % len(allowed)]
            out.append(Address(ch, rk, bk, row, 0))
        self._cursor = (self._cursor + 1) % len(allowed)
        return out
