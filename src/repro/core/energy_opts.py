"""Energy optimizations for FS controllers (Section 5.2, Figure 9).

The paper's three optimizations all share one property: they change what
the DRAM devices physically do *without changing a single command time* —
"DRAM state is updated as if the command had issued".  We model them
accordingly:

1. **Suppressed dummies** — behavioural: the controller simply does not
   put the dummy's commands on the bus (safe: FS command times never
   depend on resource availability, and removing commands can only relax
   constraints).  The energy saving falls out of the activity counters.
2. **Row-buffer boost** — accounting: when consecutive accesses of a
   domain hit the same row of the same bank, the auto-precharge +
   re-activate pair is charged as saved.
3. **Power-down** — accounting: a rank whose owning domain has no pending
   work for a whole interval spends that interval in precharge power-down
   (minus the entry/exit overhead), converting IDD2N standby cycles to
   IDD2P.

:func:`adjusted_energy` applies the accounting components on top of a
measured :class:`~repro.dram.power.EnergyBreakdown`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..dram.power import DramPowerParams, EnergyBreakdown, PowerModel
from ..dram.timing import TimingParams


@dataclass
class FsEnergyOptions:
    """Which of the Section 5.2 optimizations are enabled."""

    suppress_dummies: bool = False
    boost_row_hits: bool = False
    power_down_idle: bool = False

    @classmethod
    def none(cls) -> "FsEnergyOptions":
        return cls()

    @classmethod
    def all(cls) -> "FsEnergyOptions":
        return cls(True, True, True)


@dataclass
class EnergyAdjustments:
    """Accounting-only savings accumulated by an FS controller."""

    #: Activate/precharge pairs avoided by the row-buffer boost.
    rowhit_saved_activates: int = 0
    #: Precharge-standby cycles converted to power-down residency.
    powerdown_cycles: int = 0

    def merge(self, other: "EnergyAdjustments") -> None:
        self.rowhit_saved_activates += other.rowhit_saved_activates
        self.powerdown_cycles += other.powerdown_cycles


def adjusted_energy(
    measured: EnergyBreakdown,
    adjustments: EnergyAdjustments,
    model: PowerModel,
) -> EnergyBreakdown:
    """Apply accounting-only savings to a measured energy breakdown."""
    t = model.timing
    p = model.power
    scale = p.vdd * p.devices_per_rank * model.cycle_ns

    act_charge = (
        p.idd0 * t.tRC - p.idd3n * t.tRAS - p.idd2n * (t.tRC - t.tRAS)
    )
    activate_saving = adjustments.rowhit_saved_activates * act_charge * scale
    background_saving = (
        adjustments.powerdown_cycles * (p.idd2n - p.idd2p) * scale
    )
    return EnergyBreakdown(
        activate_pj=max(0.0, measured.activate_pj - activate_saving),
        read_pj=measured.read_pj,
        write_pj=measured.write_pj,
        refresh_pj=measured.refresh_pj,
        background_pj=max(0.0, measured.background_pj - background_saving),
        io_pj=measured.io_pj,
    )
