"""Service-level agreements: unequal slot assignments (Section 5.1).

The paper's OS/hypervisor assigns each security domain a *fixed level of
service*: the number of issue slots it owns in every Q-cycle interval,
decided by the SLA and never by run-time demand (that would leak).  This
module builds FS timetables for arbitrary slot assignments, spreading
each domain's slots evenly across the interval with a smooth weighted
round-robin so a two-slot domain is served twice as often — not twice in
a row.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..dram.timing import TimingParams
from .pipeline_solver import PeriodicMode, PipelineSolver, SharingLevel
from .schedule import FixedServiceSchedule, SlotSpec


def weighted_slot_order(assignment: Sequence[int]) -> List[int]:
    """Smooth weighted round-robin order of domains.

    Classic smooth-WRR: each step, every domain gains its weight in
    credit; the richest domain is served and pays the total weight.
    Deterministic, and spreads each domain's slots across the interval.

    >>> weighted_slot_order([2, 1, 1])
    [0, 1, 2, 0]
    """
    if not assignment:
        raise ValueError("assignment must not be empty")
    if any(w < 1 for w in assignment):
        raise ValueError("every domain needs at least one slot")
    total = sum(assignment)
    credits = [0] * len(assignment)
    order: List[int] = []
    for _ in range(total):
        for d, weight in enumerate(assignment):
            credits[d] += weight
        winner = max(range(len(assignment)), key=lambda d: (credits[d], -d))
        credits[winner] -= total
        order.append(winner)
    return order


def build_sla_schedule(
    params: TimingParams,
    sharing: SharingLevel,
    slot_assignment: Sequence[int],
    mode: Optional[PeriodicMode] = None,
) -> FixedServiceSchedule:
    """An FS timetable honouring a per-domain slot assignment.

    ``slot_assignment[d]`` is the number of issue slots domain ``d`` owns
    per interval; bandwidth shares follow directly.  The slot gap ``l``
    is the same solver output as the equal-share schedule — the SLA only
    changes who owns each slot, never the pipeline itself, so the
    security argument is untouched.
    """
    solver = PipelineSolver(params)
    if mode is None:
        mode, slot_gap = solver.best(sharing)
    else:
        slot_gap = solver.solve(mode, sharing)
    order = weighted_slot_order(slot_assignment)
    slots = [
        SlotSpec(index=i, domain=domain, anchor_offset=i * slot_gap)
        for i, domain in enumerate(order)
    ]
    return FixedServiceSchedule(
        params=params,
        mode=mode,
        slot_gap=slot_gap,
        num_domains=len(slot_assignment),
        slots=slots,
        interval_length=slot_gap * len(order),
        sharing=sharing,
        name=f"fs_sla_{'-'.join(map(str, slot_assignment))}",
    )


def bandwidth_share(slot_assignment: Sequence[int], domain: int) -> float:
    """Fraction of the pipeline's slots owned by ``domain``."""
    total = sum(slot_assignment)
    if total == 0:
        raise ValueError("assignment must not be empty")
    if not 0 <= domain < len(slot_assignment):
        raise ValueError("domain out of range")
    return slot_assignment[domain] / total
