"""Sandbox prefetcher (Pugsley et al., HPCA 2014), simplified.

The FS controller uses a thread's otherwise-wasted dummy slots to issue
prefetches (Section 5.2).  The sandbox prefetcher evaluates a set of
candidate *offset* prefetchers without touching memory: each candidate's
hypothetical prefetches go into a sandbox filter, and when later demand
accesses hit the sandbox, the candidate scores.  Candidates scoring above
a threshold become active and generate real prefetch lines — at most
:attr:`SandboxPrefetcher.MAX_ACTIVE` per demand access, mirroring the
paper's "up to 4 high-confidence prefetch instructions".

Everything is keyed on the domain's own demand stream only, so the
prefetcher cannot leak cross-domain information.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set


@dataclass
class _Candidate:
    offset: int
    score: int = 0
    #: Lines this candidate *would* have prefetched (the sandbox).
    sandbox: Set[int] = None

    def __post_init__(self) -> None:
        if self.sandbox is None:
            self.sandbox = set()


class SandboxPrefetcher:
    """Offset prefetcher with sandbox-based confidence estimation."""

    #: Candidate strides evaluated in the sandbox.
    DEFAULT_OFFSETS = (1, 2, 3, 4, -1, -2, 8, 16)
    #: Demand accesses per evaluation round.
    ROUND_LENGTH = 128
    #: Minimum sandbox hits for a candidate to go live (25% accuracy).
    ACTIVATION_SCORE = 32
    #: Active offsets generating real prefetches ("up to 4").
    MAX_ACTIVE = 4
    #: Sandbox capacity per candidate (a Bloom filter stand-in).
    SANDBOX_CAPACITY = 1024
    #: Real prefetch queue depth ("a few-entry prefetch queue").
    QUEUE_DEPTH = 4

    def __init__(
        self,
        offsets=DEFAULT_OFFSETS,
        seed: int = 0,
        round_length: int = None,
        activation_score: int = None,
    ) -> None:
        if not offsets:
            raise ValueError("need at least one candidate offset")
        if round_length is not None:
            if round_length < 1:
                raise ValueError("round_length must be positive")
            self.ROUND_LENGTH = round_length
        if activation_score is not None:
            if activation_score < 1:
                raise ValueError("activation_score must be positive")
            self.ACTIVATION_SCORE = activation_score
        self._candidates: List[_Candidate] = [
            _Candidate(offset) for offset in offsets
        ]
        self._active: List[int] = []
        self._accesses_this_round = 0
        self._queue: Deque[int] = deque(maxlen=self.QUEUE_DEPTH)
        self._issued: Set[int] = set()
        self._rng = random.Random(seed)
        self.stat_observed = 0
        self.stat_generated = 0

    # ------------------------------------------------------------------

    def observe(self, line: int) -> None:
        """Feed one demand access (domain-local line address)."""
        self.stat_observed += 1
        self._accesses_this_round += 1
        for candidate in self._candidates:
            if line in candidate.sandbox:
                candidate.score += 1
                candidate.sandbox.discard(line)
            hypothetical = line + candidate.offset
            if hypothetical >= 0:
                candidate.sandbox.add(hypothetical)
                if len(candidate.sandbox) > self.SANDBOX_CAPACITY:
                    candidate.sandbox.pop()
        if self._accesses_this_round >= self.ROUND_LENGTH:
            self._finish_round()
        for offset in self._active:
            target = line + offset
            if target >= 0 and target not in self._issued:
                self._queue.append(target)
                self._issued.add(target)
                self.stat_generated += 1
                if len(self._issued) > 4 * self.SANDBOX_CAPACITY:
                    self._issued.clear()

    def _finish_round(self) -> None:
        scored = sorted(
            self._candidates, key=lambda c: c.score, reverse=True
        )
        self._active = [
            c.offset for c in scored[: self.MAX_ACTIVE]
            if c.score >= self.ACTIVATION_SCORE
        ]
        for candidate in self._candidates:
            candidate.score = 0
            candidate.sandbox.clear()
        self._accesses_this_round = 0

    # ------------------------------------------------------------------

    def claim_candidates(self) -> List[int]:
        """Drain the prefetch queue (called by the FS controller when a
        dummy slot could carry a prefetch instead)."""
        out = list(self._queue)
        self._queue.clear()
        return out

    @property
    def active_offsets(self) -> List[int]:
        return list(self._active)
