"""Prefetchers that can fill FS dummy slots with useful work."""

from .sandbox import SandboxPrefetcher

__all__ = ["SandboxPrefetcher"]
