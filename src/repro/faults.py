"""Seed-deterministic fault injection for the simulation stack.

The paper's security argument is that Fixed Service timetables are
conflict-free and non-interfering *by construction*; this module stresses
that claim under transient faults.  The key design constraint is that a
fault campaign must itself be leakage-free: whether a fault strikes
domain ``d`` is a pure function of ``(seed, fault kind, d, d's own
progress)`` — never of co-runner state — so the victim's observable
timing stays bit-identical across co-runner changes even *with* faults
enabled (the property ``tests/test_faults.py`` proves).

Two layers:

* :class:`FaultPlan` — an immutable campaign description (which fault
  kinds, at which rates, for which domains, under which seed).  Plans are
  safe to share across runs and hashable, so they ride inside
  :class:`~repro.sim.runner.SchemeOptions`.
* :class:`FaultInjector` — the per-run stateful instance built from a
  plan.  Controllers query its predicates at decision points and record
  every struck fault as a :class:`FaultEvent`.

Fault models (ISSUE 1):

=====================  ==================================================
kind                   effect
=====================  ==================================================
``drop_command``       a transaction's DRAM commands are lost in transit;
                       the controller re-issues it in the *same domain's
                       next slot* (never a borrowed one)
``duplicate_command``  the staging logic repeats a command; the issue
                       path squashes the copy before it reaches the bus
``delay_slot``         slot logic stalls for one slot; the demand stays
                       queued and the slot is filled like an empty one
``refresh_collision``  a spurious refresh blackout forces a bubble
``corrupt_trace``      a workload trace record is bit-flipped, then
                       sanitized back into the trace contract
``queue_overflow``     a domain's transaction queue transiently shrinks,
                       back-pressuring the owning core only
``borrow_foreign_slot``  **deliberately broken** recovery used by the
                       test-suite to prove the watchdog fires: a faulted
                       domain's backlog is served in a foreign slot,
                       which re-opens the timing channel
=====================  ==================================================
"""

from __future__ import annotations

import enum
import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .errors import FaultInjectionError


class FaultKind(enum.Enum):
    """The fault models the injector understands."""

    DROP_COMMAND = "drop_command"
    DUPLICATE_COMMAND = "duplicate_command"
    DELAY_SLOT = "delay_slot"
    REFRESH_COLLISION = "refresh_collision"
    CORRUPT_TRACE = "corrupt_trace"
    QUEUE_OVERFLOW = "queue_overflow"
    #: Test-only: a *broken* recovery policy that borrows another
    #: domain's slot.  Exists so the watchdog can be shown to catch it.
    BORROW_FOREIGN_SLOT = "borrow_foreign_slot"


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind armed at a given rate."""

    kind: FaultKind
    #: Probability per decision point, in [0, 1].
    rate: float
    #: Domains the fault may strike (None = every domain).
    domains: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultInjectionError(
                f"fault rate must be in [0, 1], got {self.rate!r} "
                f"for {self.kind.value}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, shareable fault campaign: specs + seed.

    Build one fresh :class:`FaultInjector` per run with
    :meth:`injector`; sharing a single injector across runs would let one
    run's progress counters perturb the next run's fault schedule.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse ``"kind:rate,kind:rate,..."`` (the CLI ``--inject``
        syntax), e.g. ``"drop_command:0.01,delay_slot:0.05"``."""
        specs: List[FaultSpec] = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            name, _, rate_text = chunk.partition(":")
            try:
                kind = FaultKind(name.strip())
            except ValueError:
                known = ", ".join(k.value for k in FaultKind)
                raise FaultInjectionError(
                    f"unknown fault kind {name.strip()!r}; known: {known}"
                ) from None
            try:
                rate = float(rate_text) if rate_text else 0.01
            except ValueError:
                raise FaultInjectionError(
                    f"bad fault rate {rate_text!r} for {kind.value}"
                ) from None
            specs.append(FaultSpec(kind, rate))
        if not specs:
            raise FaultInjectionError(
                f"no fault specs in {text!r} (expected 'kind:rate,...')"
            )
        return cls(tuple(specs), seed)

    def rate_of(self, kind: FaultKind, domain: int) -> float:
        for spec in self.specs:
            if spec.kind is kind and (
                spec.domains is None or domain in spec.domains
            ):
                return spec.rate
        return 0.0

    @property
    def empty(self) -> bool:
        return not any(s.rate > 0 for s in self.specs)

    def injector(self) -> "FaultInjector":
        """A fresh per-run injector for this plan."""
        return FaultInjector(self)


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually struck."""

    kind: FaultKind
    domain: int
    cycle: int
    detail: str = ""


class FaultInjector:
    """Per-run fault oracle + event log.

    Every predicate is a pure function of ``(plan.seed, kind, domain,
    key)`` where ``key`` indexes the domain's *own* progress (its slot
    index, enqueue count, or trace-record index).  No predicate reads
    cross-domain or global simulator state, so enabling faults cannot
    open a timing channel between domains.
    """

    #: Cap on retained events (counts stay exact past the cap).
    MAX_EVENTS = 10_000
    #: How many subsequent accepts a queue-overflow episode covers.
    OVERFLOW_SPAN = 16
    #: Capacity divisor during an overflow episode.
    OVERFLOW_SHRINK = 4

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.events: List[FaultEvent] = []
        self.counts: Counter = Counter()
        self._enqueues: Dict[int, int] = {}
        self._overflow_until: Dict[int, int] = {}
        #: Optional telemetry session (wired by
        #: ``MemoryController.attach_telemetry``); every recorded strike
        #: streams into it as a labeled counter + timeline event.
        self.telemetry = None

    # -- deterministic coin ---------------------------------------------

    def _roll(self, kind: FaultKind, domain: int, key: int) -> bool:
        rate = self.plan.rate_of(kind, domain)
        if rate <= 0.0:
            return False
        token = f"{self.plan.seed}|{kind.value}|{domain}|{key}"
        digest = hashlib.blake2s(
            token.encode(), digest_size=8
        ).digest()
        draw = int.from_bytes(digest, "big") / 2**64
        return draw < rate

    def record(
        self, kind: FaultKind, domain: int, cycle: int, detail: str = ""
    ) -> None:
        self.counts[kind] += 1
        if len(self.events) < self.MAX_EVENTS:
            self.events.append(FaultEvent(kind, domain, cycle, detail))
        if self.telemetry is not None:
            self.telemetry.on_fault(kind, domain, cycle, detail)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def counts_by_name(self) -> Dict[str, int]:
        """Strike counts keyed by fault-kind name (JSON/metric-friendly)."""
        return {
            kind.value: count
            for kind, count in sorted(
                self.counts.items(), key=lambda kv: kv[0].value
            )
        }

    def summary(self) -> str:
        if not self.counts:
            return "no faults struck"
        parts = [
            f"{kind.value}={count}"
            for kind, count in sorted(
                self.counts.items(), key=lambda kv: kv[0].value
            )
        ]
        return ", ".join(parts)

    # -- controller-facing predicates -----------------------------------

    def delay_slot(self, domain: int, slot_index: int) -> bool:
        return self._roll(FaultKind.DELAY_SLOT, domain, slot_index)

    def drop_command(self, domain: int, key: int) -> bool:
        return self._roll(FaultKind.DROP_COMMAND, domain, key)

    def duplicate_command(self, domain: int, key: int) -> bool:
        return self._roll(FaultKind.DUPLICATE_COMMAND, domain, key)

    def refresh_collision(self, domain: int, slot_index: int) -> bool:
        return self._roll(FaultKind.REFRESH_COLLISION, domain, slot_index)

    def borrow_foreign_slot(self, domain: int, slot_index: int) -> bool:
        return self._roll(
            FaultKind.BORROW_FOREIGN_SLOT, domain, slot_index
        )

    # -- queue overflow ---------------------------------------------------

    def note_enqueue(self, domain: int, cycle: int = 0) -> None:
        """Called by the controller on every actual queue append; may arm
        a transient overflow episode keyed purely on the domain's own
        enqueue count."""
        count = self._enqueues.get(domain, 0) + 1
        self._enqueues[domain] = count
        if self._roll(FaultKind.QUEUE_OVERFLOW, domain, count):
            self._overflow_until[domain] = count + self.OVERFLOW_SPAN
            self.record(
                FaultKind.QUEUE_OVERFLOW, domain, cycle,
                f"capacity shrunk for {self.OVERFLOW_SPAN} accepts",
            )

    def effective_capacity(self, domain: int, capacity: int) -> int:
        """The queue capacity the domain currently experiences."""
        until = self._overflow_until.get(domain)
        if until is None:
            return capacity
        if self._enqueues.get(domain, 0) >= until:
            del self._overflow_until[domain]
            return capacity
        return max(1, capacity // self.OVERFLOW_SHRINK)

    # -- trace corruption -------------------------------------------------

    def corrupt_trace(self, trace, domain: int):
        """Bit-flip some records of ``trace``, then sanitize the result
        back into the trace contract (graceful degradation: the sim must
        survive a corrupted input, not crash on it).

        Returns a new :class:`~repro.cpu.trace.Trace`; corruption is a
        pure function of ``(seed, domain, record index)``.
        """
        from .cpu.trace import Trace, TraceRecord

        rate = self.plan.rate_of(FaultKind.CORRUPT_TRACE, domain)
        if rate <= 0.0:
            return trace
        records = []
        for index, record in enumerate(trace):
            if not self._roll(FaultKind.CORRUPT_TRACE, domain, index):
                records.append(record)
                continue
            # Model a flipped address/gap word, then sanitize: mask the
            # line back to non-negative, clamp the gap at zero.
            raw_line = record.line ^ (0x5A5A << (index % 16))
            raw_gap = record.gap - (index % 7)
            records.append(TraceRecord(
                gap=max(0, raw_gap),
                op=record.op,
                line=abs(raw_line),
                depends_on_prev=record.depends_on_prev,
            ))
            self.record(
                FaultKind.CORRUPT_TRACE, domain, 0,
                f"record {index} corrupted and sanitized",
            )
        return Trace(records, name=trace.name)


__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
]
