"""Information-leakage measurement (Figure 4 and the security claims).

The paper's security argument is *non-interference*: a domain's memory
service timing must be a pure function of its own requests.  We test that
operationally:

* :func:`victim_view` runs one victim workload against a chosen set of
  co-runners and extracts everything the victim could ever observe — its
  execution profile (time to retire each instruction block) and the
  release time of each of its reads.
* :func:`interference_report` runs the same victim against *different*
  co-runners and diffs the observations.  For FS schemes the views must
  be bit-for-bit identical; for the non-secure baseline they diverge,
  which is exactly the Figure 4 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.config import SystemConfig
from ..sim.runner import SchemeOptions, build_system
from ..sim.system import RunResult
from ..workloads.synthetic import WorkloadSpec, idle_spec, intense_spec


@dataclass(frozen=True)
class VictimView:
    """Everything the victim (domain 0) can observe about its own run."""

    scheme: str
    co_runner: str
    #: (instruction count, mem cycle retired) milestones.
    profile: Tuple[Tuple[int, int], ...]
    #: Release cycle of every demand read, in arrival order.
    read_releases: Tuple[int, ...]
    ipc: float


def victim_view(
    scheme: str,
    victim: WorkloadSpec,
    co_runner: WorkloadSpec,
    config: Optional[SystemConfig] = None,
    options: Optional[SchemeOptions] = None,
    max_cycles: int = 10_000_000,
    profile_block: Optional[int] = None,
    engine: str = "reference",
) -> VictimView:
    """Run ``victim`` on domain 0 with ``co_runner`` on all other domains
    and capture the victim-visible timing.

    ``engine`` selects the simulator (reference cycle-stepper or the
    differentially-verified fast path); the certification harness runs
    both and demands identical verdicts.
    """
    config = config or SystemConfig()
    specs = [victim] + [co_runner] * (config.num_cores - 1)
    system = build_system(scheme, config, specs, options, engine=engine)
    releases: List[int] = []
    victim_core = system.cores[0]
    original = victim_core.on_complete

    def recording_on_complete(request, mem_cycle):
        releases.append(mem_cycle)
        original(request, mem_cycle)

    victim_core.on_complete = recording_on_complete
    result = system.run(max_cycles=max_cycles)
    if profile_block is None:
        # ~25 milestones over the victim's instruction count (the paper's
        # Figure 4 plots 10k-instruction blocks over a far longer run).
        profile_block = max(100, victim_core.trace.instructions // 25)
    return VictimView(
        scheme=scheme,
        co_runner=co_runner.name,
        profile=tuple(victim_core.completion_profile(profile_block)),
        read_releases=tuple(releases),
        ipc=result.cores[0].ipc,
    )


@dataclass(frozen=True)
class InterferenceReport:
    """Comparison of victim views under different co-runners."""

    scheme: str
    views: Tuple[VictimView, ...]
    identical: bool
    max_profile_divergence_cycles: int
    max_release_divergence_cycles: int

    @property
    def leaks(self) -> bool:
        """True when the co-runners measurably altered the victim."""
        return not self.identical


def interference_report(
    scheme: str,
    victim: WorkloadSpec,
    co_runners: Sequence[WorkloadSpec] = None,
    config: Optional[SystemConfig] = None,
    options: Optional[SchemeOptions] = None,
    engine: str = "reference",
) -> InterferenceReport:
    """Run the victim against each co-runner and diff the views.

    Default co-runners are the Figure 4 pair: non-memory-intensive and
    maximally memory-intensive synthetic threads.
    """
    if co_runners is None:
        co_runners = [idle_spec(), intense_spec()]
    if len(co_runners) < 2:
        raise ValueError("need at least two co-runner variants")
    views = tuple(
        victim_view(scheme, victim, co, config, options, engine=engine)
        for co in co_runners
    )
    reference = views[0]
    max_profile = 0
    max_release = 0
    identical = True
    for view in views[1:]:
        if view.profile != reference.profile:
            identical = False
            for (n1, t1), (n2, t2) in zip(reference.profile, view.profile):
                if n1 == n2:
                    max_profile = max(max_profile, abs(t1 - t2))
        if view.read_releases != reference.read_releases:
            identical = False
            for r1, r2 in zip(reference.read_releases, view.read_releases):
                max_release = max(max_release, abs(r1 - r2))
    return InterferenceReport(
        scheme=scheme,
        views=views,
        identical=identical,
        max_profile_divergence_cycles=max_profile,
        max_release_divergence_cycles=max_release,
    )


def figure4_profiles(
    config: Optional[SystemConfig] = None,
    victim: Optional[WorkloadSpec] = None,
) -> Dict[str, VictimView]:
    """The four Figure 4 curves: {baseline, fs_rp} x {idle, intense}."""
    from ..workloads.spec import workload

    victim = victim or workload("mcf")
    out: Dict[str, VictimView] = {}
    for scheme in ("baseline", "fs_rp"):
        for co_name, co in (
            ("non_intensive", idle_spec()),
            ("intensive", intense_spec()),
        ):
            out[f"{scheme}/{co_name}"] = victim_view(
                scheme, victim, co, config
            )
    return out
