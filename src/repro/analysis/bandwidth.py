"""Bandwidth-latency characterization of memory schedulers.

The classic memory-system curve: drive a controller open-loop at a fixed
offered load and measure sustained bandwidth and mean latency.  As the
offered load approaches a scheduler's capacity the latency knee appears;
for FS the knee sits exactly at the pipeline's per-domain slot rate,
which is how the paper's "theoretical peak bandwidth" numbers become
measurable facts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..dram.commands import OpType, Request
from ..sim.config import SystemConfig
from ..sim.runner import SchemeOptions, build_controller, partition_for


@dataclass(frozen=True)
class LoadPoint:
    """One point of a bandwidth-latency curve."""

    scheme: str
    #: Offered load: requests per domain per 100 cycles.
    offered_per_100: float
    #: Sustained data-bus utilization.
    utilization: float
    #: Mean demand-read latency in cycles.
    mean_latency: float
    #: Fraction of offered requests completed inside the measurement.
    completion: float


def measure_load_point(
    scheme: str,
    offered_per_100: float,
    duration: int = 30_000,
    read_fraction: float = 0.7,
    config: Optional[SystemConfig] = None,
    seed: int = 11,
) -> LoadPoint:
    """Drive ``scheme`` open-loop at a fixed injection rate."""
    if offered_per_100 <= 0:
        raise ValueError("offered load must be positive")
    config = config or SystemConfig()
    options = SchemeOptions()
    partition = partition_for(scheme, config)
    controller = build_controller(scheme, config, partition, options)
    rng = random.Random(seed)
    period = 100.0 / offered_per_100
    requests: List[Request] = []
    for domain in range(config.num_cores):
        t = rng.uniform(0, period)
        while t < duration:
            line = rng.randrange(1 << 18)
            op = OpType.READ if rng.random() < read_fraction \
                else OpType.WRITE
            requests.append(Request(
                op=op, address=partition.decode(domain, line),
                domain=domain, arrival=int(t), line=line,
            ))
            t += period
    requests.sort(key=lambda r: (r.arrival, r.req_id))

    released: List[Request] = []
    clock, idx = 0, 0
    deadline = duration * 4  # allow queues to drain, bounded
    while idx < len(requests) or _busy(controller):
        nxt = controller.next_event()
        arrival = requests[idx].arrival if idx < len(requests) else None
        candidates = [c for c in (nxt, arrival) if c is not None]
        if not candidates:
            break
        clock = max(clock + 1, min(candidates))
        if clock > deadline:
            break
        while idx < len(requests) and requests[idx].arrival <= clock:
            controller.enqueue(requests[idx])
            idx += 1
        released.extend(controller.advance(clock))

    reads = [r for r in released if r.latency is not None]
    offered_reads = sum(1 for r in requests if r.is_read)
    mean_latency = (
        sum(r.latency for r in reads) / len(reads) if reads else 0.0
    )
    return LoadPoint(
        scheme=scheme,
        offered_per_100=offered_per_100,
        utilization=controller.dram.bus_utilization(max(clock, 1)),
        mean_latency=mean_latency,
        completion=len(reads) / offered_reads if offered_reads else 0.0,
    )


def _busy(controller) -> bool:
    if hasattr(controller, "busy"):
        return controller.busy()
    return bool(controller.pending() or controller._release_heap)


def bandwidth_latency_curve(
    scheme: str,
    loads: Sequence[float] = (0.2, 0.5, 1.0, 1.5, 2.0, 3.0),
    **kwargs,
) -> List[LoadPoint]:
    """The full curve for one scheme; loads in requests/domain/100cyc."""
    return [
        measure_load_point(scheme, load, **kwargs) for load in loads
    ]


def saturation_bandwidth(points: Sequence[LoadPoint]) -> float:
    """Highest sustained utilization across a measured curve."""
    if not points:
        raise ValueError("need points")
    return max(p.utilization for p in points)
