"""Exhaustive non-interference checking for bounded instances.

The sampled tests (:mod:`repro.analysis.leakage`) try a handful of
co-runner behaviours; this module tries *all of them* over a bounded
horizon — a model-checking-style argument.  The co-runner's behaviour
space is every sequence over {idle, read, write} at its decision points;
for each sequence we run the scheduler open-loop and record everything
the victim can observe.  Non-interference holds iff all observations are
identical.

The state space is 3^k for k decision points, so keep k small (the
default 4 gives 81 complete system runs); the value of the check is that
within the horizon it is *complete* — no adversarial co-runner strategy,
however contrived, is missed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..dram.commands import OpType, Request
from ..sim.config import SystemConfig
from ..sim.runner import SchemeOptions, build_controller, partition_for

#: One co-runner action at a decision point.
ACTIONS = ("idle", "read", "write")


@dataclass(frozen=True)
class ExhaustiveReport:
    """Outcome of an exhaustive bounded check."""

    scheme: str
    decision_points: int
    patterns_checked: int
    identical: bool
    #: A co-runner action sequence that perturbed the victim, if any.
    counterexample: Optional[Tuple[str, ...]] = None

    @property
    def holds(self) -> bool:
        return self.identical


def exhaustive_noninterference(
    scheme: str,
    decision_points: int = 4,
    decision_period: int = 24,
    victim_reads: int = 6,
    config: Optional[SystemConfig] = None,
    actions: Sequence[str] = ACTIONS,
) -> ExhaustiveReport:
    """Check every co-runner behaviour over a bounded horizon.

    The victim (domain 0) issues a fixed stream of ``victim_reads``
    reads; the co-runner (domain 1) takes one action from ``actions`` at
    each of ``decision_points`` points spaced ``decision_period`` cycles
    apart.  Returns whether the victim's release times were identical
    across all ``len(actions) ** decision_points`` runs.
    """
    if decision_points < 1:
        raise ValueError("need at least one decision point")
    config = config or SystemConfig()
    reference: Optional[Tuple[int, ...]] = None
    patterns = 0
    for pattern in itertools.product(actions, repeat=decision_points):
        observation = _run_pattern(
            scheme, pattern, decision_period, victim_reads, config
        )
        patterns += 1
        if reference is None:
            reference = observation
        elif observation != reference:
            return ExhaustiveReport(
                scheme=scheme,
                decision_points=decision_points,
                patterns_checked=patterns,
                identical=False,
                counterexample=pattern,
            )
    return ExhaustiveReport(
        scheme=scheme,
        decision_points=decision_points,
        patterns_checked=patterns,
        identical=True,
    )


def _run_pattern(
    scheme: str,
    pattern: Sequence[str],
    period: int,
    victim_reads: int,
    config: SystemConfig,
) -> Tuple[int, ...]:
    """One complete run; returns the victim's read release times."""
    options = SchemeOptions()
    partition = partition_for(scheme, config)
    controller = build_controller(scheme, config, partition, options)
    requests: List[Request] = []
    for i in range(victim_reads):
        line = 1000 + i * 257
        requests.append(Request(
            op=OpType.READ, address=partition.decode(0, line),
            domain=0, arrival=i * period, line=line,
        ))
    for i, action in enumerate(pattern):
        if action == "idle":
            continue
        # A non-idle action is a burst of four accesses: enough pressure
        # that a contended scheduler measurably perturbs the victim.
        for j in range(4):
            line = 5000 + i * 131 + j
            requests.append(Request(
                op=OpType.READ if action == "read" else OpType.WRITE,
                address=partition.decode(1, line),
                domain=1, arrival=i * period + j, line=line,
            ))
    requests.sort(key=lambda r: (r.arrival, r.domain))
    releases: List[int] = []
    clock, idx = 0, 0
    while idx < len(requests) or _busy(controller):
        nxt = controller.next_event()
        arrival = requests[idx].arrival if idx < len(requests) else None
        candidates = [c for c in (nxt, arrival) if c is not None]
        if not candidates:
            break
        clock = max(clock + 1, min(candidates))
        while idx < len(requests) and requests[idx].arrival <= clock:
            controller.enqueue(requests[idx])
            idx += 1
        for request in controller.advance(clock):
            if request.domain == 0:
                releases.append(request.release)
        if clock > 200_000:  # pragma: no cover - safety bound
            break
    return tuple(releases)


def _busy(controller) -> bool:
    if hasattr(controller, "busy"):
        return controller.busy()
    return bool(controller.pending() or controller._release_heap)
