"""Covert-channel construction and measurement (Section 2.2).

Implements the classic contention covert channel the paper cites (Wu et
al., Hunger et al.): a *sender* domain modulates its memory intensity —
bursts of reads for a 1 bit, silence for a 0 bit — while a *receiver*
domain continuously probes memory and measures its own latencies.  Under
a contended scheduler the receiver's per-window mean latency tracks the
sender's bits; under FS it is flat.

:func:`run_covert_channel` drives a controller open-loop (no cores) so
the channel is measured in isolation, and returns the received latency
signal, the decoded bits, and the bit error rate.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..dram.commands import OpType, Request
from ..mapping.partition import PartitionPolicy
from ..sim.config import SystemConfig
from ..sim.runner import SchemeOptions, build_controller, partition_for


@dataclass(frozen=True)
class CovertChannelResult:
    """Outcome of one covert-channel experiment."""

    scheme: str
    sent_bits: Tuple[int, ...]
    decoded_bits: Tuple[int, ...]
    #: Mean receiver latency per bit window.
    window_means: Tuple[float, ...]

    @property
    def bit_error_rate(self) -> float:
        errors = sum(
            1 for s, d in zip(self.sent_bits, self.decoded_bits) if s != d
        )
        return errors / len(self.sent_bits)

    @property
    def signal_swing(self) -> float:
        """Receiver-visible latency swing between 0 and 1 windows."""
        ones = [m for m, b in zip(self.window_means, self.sent_bits) if b]
        zeros = [
            m for m, b in zip(self.window_means, self.sent_bits) if not b
        ]
        if not ones or not zeros:
            return 0.0
        return abs(statistics.fmean(ones) - statistics.fmean(zeros))


def run_covert_channel(
    scheme: str,
    bits: Sequence[int] = None,
    window: int = 4000,
    probe_period: int = 100,
    burst_period: int = 6,
    config: Optional[SystemConfig] = None,
    seed: int = 7,
) -> CovertChannelResult:
    """Measure the covert channel through a scheduler.

    Domain 0 is the receiver (one probe read every ``probe_period``
    cycles); domain 1 is the sender (reads every ``burst_period`` cycles
    during 1-bit windows, nothing during 0-bit windows).  Remaining
    domains are silent.
    """
    config = config or SystemConfig()
    if bits is None:
        rng_bits = random.Random(seed)
        bits = tuple(rng_bits.randrange(2) for _ in range(32))
    bits = tuple(int(b) for b in bits)
    options = SchemeOptions()
    partition = partition_for(scheme, config)
    controller = build_controller(scheme, config, partition, options)

    rng = random.Random(seed)
    requests: List[Request] = []
    total_cycles = window * len(bits)
    # Receiver probes: random lines so the baseline cannot hide them in
    # row hits.
    t = 0
    while t < total_cycles:
        line = rng.randrange(1 << 16)
        requests.append(Request(
            op=OpType.READ, address=partition.decode(0, line),
            domain=0, arrival=t, line=line,
        ))
        t += probe_period
    # Sender bursts during 1 windows.
    for index, bit in enumerate(bits):
        if not bit:
            continue
        t = index * window
        while t < (index + 1) * window:
            line = rng.randrange(1 << 16)
            requests.append(Request(
                op=OpType.READ, address=partition.decode(1, line),
                domain=1, arrival=t, line=line,
            ))
            t += burst_period
    requests.sort(key=lambda r: r.arrival)

    released: List[Request] = []
    clock = 0
    idx = 0
    while idx < len(requests) or _busy(controller):
        ctrl_next = controller.next_event()
        arrival = requests[idx].arrival if idx < len(requests) else None
        candidates = [c for c in (ctrl_next, arrival) if c is not None]
        if not candidates:
            break
        clock = max(clock + 1, min(candidates))
        while idx < len(requests) and requests[idx].arrival <= clock:
            controller.enqueue(requests[idx])
            idx += 1
        released.extend(controller.advance(clock))
        if clock > total_cycles * 50:
            break  # scheduler cannot keep up; stop measuring

    window_means = window_latency_means(released, window, len(bits))
    decoded = threshold_decode(window_means)
    return CovertChannelResult(
        scheme=scheme,
        sent_bits=bits,
        decoded_bits=decoded,
        window_means=tuple(window_means),
    )


def _busy(controller) -> bool:
    if hasattr(controller, "busy"):
        return controller.busy()
    return bool(controller.pending() or controller._release_heap)


def window_latency_means(
    released: Sequence[Request], window: int, num_windows: int
) -> List[float]:
    """Mean receiver (domain-0) latency per bit window.

    Requests outside the measured span fold into the last window;
    windows the receiver never probed read as 0.0.
    """
    if window < 1:
        raise ValueError(f"window must be positive, got {window}")
    if num_windows < 1:
        raise ValueError(
            f"need at least one window, got {num_windows}"
        )
    sums = [0.0] * num_windows
    counts = [0] * num_windows
    for request in released:
        if request.domain != 0 or request.latency is None:
            continue
        index = min(request.arrival // window, num_windows - 1)
        sums[index] += request.latency
        counts[index] += 1
    return [
        sums[i] / counts[i] if counts[i] else 0.0
        for i in range(num_windows)
    ]


def threshold_decode(window_means: Sequence[float]) -> Tuple[int, ...]:
    """Decode with the optimal single threshold: the midpoint between the
    two latency clusters (sender-agnostic).

    A flat signal (swing below 1e-9, the FS case) carries nothing and
    decodes to all zeros; a window mean exactly *at* the threshold is
    not ``>`` it and also decodes to 0.
    """
    if not window_means:
        return ()
    lo, hi = min(window_means), max(window_means)
    threshold = (lo + hi) / 2.0
    if hi - lo < 1e-9:
        # Flat signal: the channel carries nothing; decode everything as 0.
        return tuple(0 for _ in window_means)
    return tuple(1 if m > threshold else 0 for m in window_means)


#: Backwards-compatible aliases for the pre-promotion private names.
_window_latency_means = window_latency_means
_threshold_decode = threshold_decode
