"""Plain-text rendering of experiment results (figure regeneration).

The benchmark harness prints each figure as an ASCII table whose rows and
series match the paper's plots, so paper-vs-measured comparison is a
side-by-side read.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render a fixed-width table."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells))
        if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row)))
        )
    return "\n".join(lines)


def format_series(
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render named series against shared X labels (a figure as a table)."""
    headers = ["x"] + list(series.keys())
    rows = []
    for i, label in enumerate(x_labels):
        rows.append([label] + [values[i] for values in series.values()])
    return format_table(headers, rows, title=title, precision=precision)


def format_comparison(
    name: str,
    paper_value: float,
    measured_value: float,
    unit: str = "",
) -> str:
    """One paper-vs-measured line for EXPERIMENTS.md."""
    return (
        f"{name}: paper {paper_value:g}{unit}, "
        f"measured {measured_value:g}{unit}"
    )
