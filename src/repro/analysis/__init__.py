"""Security and performance analysis: leakage, covert channels, metrics."""

from .leakage import (
    InterferenceReport,
    VictimView,
    figure4_profiles,
    interference_report,
    victim_view,
)
from .bandwidth import (
    LoadPoint,
    bandwidth_latency_curve,
    measure_load_point,
    saturation_bandwidth,
)
from .covert import (
    CovertChannelResult,
    run_covert_channel,
    threshold_decode,
    window_latency_means,
)
from .exhaustive import ExhaustiveReport, exhaustive_noninterference
from .mutual_information import (
    LeakageEstimate,
    estimate_channel_leakage,
    mutual_information_bits,
)
from .metrics import (
    SchemeSummary,
    arithmetic_mean,
    geometric_mean,
    normalized,
    sum_weighted_ipc,
)
from .report import format_comparison, format_series, format_table

__all__ = [
    "LoadPoint", "bandwidth_latency_curve", "measure_load_point",
    "saturation_bandwidth",
    "InterferenceReport", "VictimView", "figure4_profiles",
    "interference_report", "victim_view",
    "CovertChannelResult", "run_covert_channel",
    "threshold_decode", "window_latency_means",
    "ExhaustiveReport", "exhaustive_noninterference",
    "LeakageEstimate", "estimate_channel_leakage",
    "mutual_information_bits",
    "SchemeSummary", "arithmetic_mean", "geometric_mean",
    "normalized", "sum_weighted_ipc",
    "format_comparison", "format_series", "format_table",
]
