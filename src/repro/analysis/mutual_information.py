"""Quantify leakage in bits: mutual information of the memory channel.

The paper argues FS gives *zero* information leakage; the operational
test (exact trace equality) is binary.  This module gives the graded
version: treat the co-runner behaviour as a secret random variable ``S``
and the attacker's observation (its own run time / latency profile) as
``O``, estimate ``I(S; O)`` empirically, and report bits per observation.

For a deterministic simulator each (scheme, secret) pair yields one
observation, so observations are augmented with the attacker's own seed:
the secret is leaked exactly when observations *cluster by secret*
beyond what seed variation explains.  With FS the observation is a pure
function of the attacker's seed, so the estimated MI is exactly zero;
with the baseline it approaches ``log2(len(secrets))``.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.config import SystemConfig
from ..workloads.spec import workload
from ..workloads.synthetic import WorkloadSpec, idle_spec, intense_spec
from .leakage import victim_view


def mutual_information_bits(
    samples: Sequence[Tuple[int, Tuple]],
) -> float:
    """Plug-in MI estimate from (secret, observation) samples.

    ``I(S;O) = H(S) + H(O) - H(S,O)`` with empirical distributions.
    Observations must be hashable.
    """
    if not samples:
        raise ValueError("need samples")
    n = len(samples)

    def entropy(counter: Counter) -> float:
        return -sum(
            (c / n) * math.log2(c / n) for c in counter.values()
        )

    h_s = entropy(Counter(s for s, _ in samples))
    h_o = entropy(Counter(o for _, o in samples))
    h_so = entropy(Counter(samples))
    return max(0.0, h_s + h_o - h_so)


@dataclass(frozen=True)
class LeakageEstimate:
    """MI of the co-runner secret given the attacker's observations."""

    scheme: str
    bits: float
    max_bits: float
    samples: int

    @property
    def fraction_leaked(self) -> float:
        if self.max_bits == 0:
            return 0.0
        return self.bits / self.max_bits


def estimate_channel_leakage(
    scheme: str,
    secrets: Optional[Sequence[WorkloadSpec]] = None,
    attacker: Optional[WorkloadSpec] = None,
    seeds: Sequence[int] = (0, 1, 2),
    config: Optional[SystemConfig] = None,
) -> LeakageEstimate:
    """Estimate how many bits of the co-runner identity the attacker's
    own finishing time reveals under ``scheme``.

    Each sample runs the attacker (with one of several trace seeds, so
    the attacker's own variation is represented) against one secret
    co-runner; the observation is the attacker's full execution profile.
    """
    config = config or SystemConfig(accesses_per_core=200)
    if secrets is None:
        secrets = [idle_spec(), intense_spec(), workload("milc")]
    attacker = attacker or workload("mcf")
    samples: List[Tuple[int, Tuple]] = []
    for seed in seeds:
        seeded = replace(config, seed=1000 + seed)
        for index, secret in enumerate(secrets):
            view = victim_view(
                scheme, attacker, secret, config=seeded
            )
            # The observation is the profile *relative to this seed's
            # own idle run*: collapse seed-induced variation by pairing
            # with the secret-0 reference.
            samples.append((index, (seed, view.profile)))
    # Condition out the seed: group by seed, and within each group map
    # each distinct observation to its canonical id.
    canonical: List[Tuple[int, Tuple]] = []
    for seed in seeds:
        group = [
            (s, o) for s, (g, o) in samples if g == seed
        ]
        ids: Dict[Tuple, int] = {}
        for s, o in group:
            ids.setdefault(o, len(ids))
        canonical.extend((s, (ids[o],)) for s, o in group)
    bits = mutual_information_bits(canonical)
    return LeakageEstimate(
        scheme=scheme,
        bits=bits,
        max_bits=math.log2(len(secrets)),
        samples=len(canonical),
    )
