"""Evaluation metrics (Section 6/7): weighted IPC and friends."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..sim.system import RunResult


def sum_weighted_ipc(run: RunResult, baseline: RunResult) -> float:
    """Sum over cores of IPC(run) / IPC(baseline) — the paper's metric.

    A non-secure baseline scores ``num_cores`` against itself.
    """
    return run.weighted_ipc(baseline)


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain average (the paper's AM columns)."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalized(value: float, reference: float) -> float:
    """value / reference, with a zero-reference guard."""
    if reference == 0:
        raise ValueError("reference must be non-zero")
    return value / reference


@dataclass
class SchemeSummary:
    """Cross-workload summary for one scheme."""

    scheme: str
    #: workload -> sum of weighted IPC.
    weighted_ipc: Dict[str, float]
    #: workload -> normalized memory energy (vs baseline).
    energy: Dict[str, float]
    #: workload -> mean demand-read latency (cycles).
    latency: Dict[str, float]
    #: workload -> dummy fraction (FS only; 0 otherwise).
    dummy_fraction: Dict[str, float]

    @property
    def mean_weighted_ipc(self) -> float:
        return arithmetic_mean(list(self.weighted_ipc.values()))

    @property
    def mean_energy(self) -> float:
        return arithmetic_mean(list(self.energy.values()))

    @property
    def mean_latency(self) -> float:
        return arithmetic_mean(list(self.latency.values()))

    def relative_to(self, other: "SchemeSummary") -> float:
        """Throughput of this scheme relative to another (ratio of mean
        weighted IPC) — e.g. FS_RP vs TP_BP is the paper's +69%."""
        return self.mean_weighted_ipc / other.mean_weighted_ipc
