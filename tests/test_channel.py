"""Unit tests for the channel: shared command and data buses."""

import pytest

from repro.dram.bank import TimingViolation
from repro.dram.channel import Channel
from repro.dram.commands import Command, CommandType
from repro.dram.timing import DDR3_1600_X4

P = DDR3_1600_X4


@pytest.fixture
def channel():
    return Channel(P, num_ranks=8, num_banks=8)


def act(cycle, rank=0, bank=0, row=5):
    return Command(CommandType.ACTIVATE, cycle, 0, rank, bank, row)


def rd(cycle, rank=0, bank=0, row=5):
    return Command(CommandType.COL_READ_AP, cycle, 0, rank, bank, row)


class TestCommandBus:
    def test_one_command_per_cycle(self, channel):
        channel.issue(act(0, rank=0))
        with pytest.raises(TimingViolation):
            channel.issue(act(0, rank=1))

    def test_next_free_cycle_skips_reservations(self, channel):
        channel.issue(act(0, rank=0))
        assert channel.next_free_cmd_cycle(0) == 1

    def test_different_cycles_ok(self, channel):
        channel.issue(act(0, rank=0))
        channel.issue(act(1, rank=1))
        assert channel.stat_commands == 2


class TestDataBus:
    def test_read_reserves_data_bus(self, channel):
        channel.issue(act(0))
        start = channel.issue(rd(P.tRCD))
        assert start == P.tRCD + P.tCAS

    def test_same_rank_back_to_back(self, channel):
        channel.issue(act(0, bank=0))
        channel.issue(act(P.tRRD, bank=1))
        channel.issue(rd(P.tRCD, bank=0))
        # Same rank: the second column is bounded by its own bank's tRCD
        # (from the activate at tRRD), which exceeds the tCCD gap here.
        t2 = channel.earliest_column(0, 0, 1, True)
        assert t2 == max(P.tRCD + P.tCCD, P.tRRD + P.tRCD)

    def test_cross_rank_needs_trtrs(self, channel):
        channel.issue(act(0, rank=0))
        channel.issue(act(1, rank=1))
        channel.issue(rd(P.tRCD, rank=0))
        t2 = channel.earliest_column(0, 1, 0, True)
        # Data of rank 1 must trail rank 0's burst by tBURST + tRTRS.
        assert t2 + P.tCAS >= (P.tRCD + P.tCAS) + P.tBURST + P.tRTRS

    def test_data_conflict_detection(self, channel):
        channel.issue(act(0))
        channel.issue(rd(P.tRCD))
        data_at = P.tRCD + P.tCAS
        assert channel.data_conflict(data_at, rank=1)
        assert channel.data_conflict(data_at + 2, rank=0)
        assert not channel.data_conflict(data_at + P.tBURST, rank=0)

    def test_direct_data_conflict_raises(self, channel):
        channel.issue(act(0, rank=0))
        channel.issue(act(1, rank=1))
        channel.issue(rd(P.tRCD, rank=0))
        with pytest.raises(TimingViolation):
            # Same column cycle is a command-bus conflict; one later
            # collides on the data bus instead.
            channel.issue(rd(P.tRCD + 1, rank=1))


class TestEarliestQueries:
    def test_earliest_activate_respects_cmd_bus(self, channel):
        channel.issue(act(0, rank=0))
        assert channel.earliest_activate(0, 1, 0) == 1

    def test_earliest_column_aligns_to_data_slot(self, channel):
        channel.issue(act(0, rank=0))
        channel.issue(act(1, rank=1))
        channel.issue(rd(P.tRCD, rank=0))
        t = channel.earliest_column(0, 1, 0, True)
        # Issuing at the reported time must not raise.
        channel.issue(rd(t, rank=1))

    def test_queries_are_pure(self, channel):
        channel.issue(act(0))
        before = channel.stat_commands
        channel.earliest_column(0, 0, 0, True)
        channel.earliest_activate(0, 1, 0)
        channel.earliest_precharge(0, 0, 0)
        assert channel.stat_commands == before


class TestUtilization:
    def test_data_cycles_accumulate(self, channel):
        channel.issue(act(0))
        channel.issue(rd(P.tRCD))
        assert channel.stat_data_cycles == P.tBURST

    def test_bus_utilization(self, channel):
        channel.issue(act(0))
        channel.issue(rd(P.tRCD))
        assert channel.bus_utilization(40) == P.tBURST / 40
        assert channel.bus_utilization(0) == 0.0


class TestPrune:
    def test_prune_keeps_schedulability(self, channel):
        channel.issue(act(0))
        channel.issue(rd(P.tRCD))
        channel.prune(1000)
        # Old reservations gone; new work can proceed at any cycle.
        t = channel.earliest_activate(1000, 0, 0)
        channel.issue(act(t))

    def test_wrong_channel_rejected(self, channel):
        cmd = Command(CommandType.ACTIVATE, 0, 3, 0, 0, 5)
        with pytest.raises(ValueError):
            channel.issue(cmd)
