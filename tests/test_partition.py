"""Unit and property tests for spatial partitioning policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.address import Geometry
from repro.mapping.partition import (
    BankPartition,
    ChannelPartition,
    NoPartition,
    RankPartition,
    make_partition,
)

G = Geometry()  # 1 channel, 8 ranks, 8 banks
G4 = Geometry(channels=4)


class TestChannelPartition:
    def test_needs_enough_channels(self):
        with pytest.raises(ValueError):
            ChannelPartition(G, 8)

    def test_disjoint_channels(self):
        p = ChannelPartition(G4, 4)
        owned = [set(p.channels_of(d)) for d in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not owned[i] & owned[j]

    def test_no_shared_resources(self):
        p = ChannelPartition(G4, 4)
        assert not p.domains_share_rank()
        assert not p.domains_share_bank()

    def test_decode_stays_in_partition(self):
        p = ChannelPartition(G4, 2)
        for line in (0, 17, 123456, 10**7):
            assert p.decode(1, line).channel in p.channels_of(1)


class TestRankPartition:
    def test_eight_domains_one_rank_each(self):
        p = RankPartition(G, 8)
        for d in range(8):
            assert p.ranks_of(d) == [(0, d)]

    def test_fewer_domains_get_multiple_ranks(self):
        p = RankPartition(G, 2)
        assert len(p.ranks_of(0)) == 4
        assert len(p.ranks_of(1)) == 4

    def test_ranks_disjoint(self):
        p = RankPartition(G, 3)
        owned = [set(p.ranks_of(d)) for d in range(3)]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not owned[i] & owned[j]

    def test_shares_nothing_below_rank(self):
        p = RankPartition(G, 8)
        assert not p.domains_share_rank()
        assert not p.domains_share_bank()

    def test_too_many_domains(self):
        with pytest.raises(ValueError):
            RankPartition(G, 9)

    @given(st.integers(0, 7), st.integers(0, 10**9))
    @settings(max_examples=100)
    def test_decode_confined(self, domain, line):
        p = RankPartition(G, 8)
        a = p.decode(domain, line)
        assert (a.channel, a.rank) in p.ranks_of(domain)


class TestBankPartition:
    def test_disjoint_banks(self):
        p = BankPartition(G, 8)
        assert not p.domains_share_bank()
        assert p.domains_share_rank()

    def test_eight_domains_bank_spread(self):
        p = BankPartition(G, 8)
        # Each domain owns one bank in every rank.
        banks = p.banks_of(0)
        assert len(banks) == 8
        assert len({rk for _, rk, _ in banks}) == 8

    @given(st.integers(0, 7), st.integers(0, 10**9))
    @settings(max_examples=100)
    def test_decode_confined(self, domain, line):
        p = BankPartition(G, 8)
        a = p.decode(domain, line)
        assert (a.channel, a.rank, a.bank) in set(p.banks_of(domain))

    def test_too_many_domains(self):
        small = Geometry(channels=1, ranks=1, banks=4)
        with pytest.raises(ValueError):
            BankPartition(small, 5)


class TestNoPartition:
    def test_everything_shared(self):
        p = NoPartition(G, 8)
        assert p.domains_share_rank()
        assert p.domains_share_bank()

    def test_domains_do_not_alias(self):
        p = NoPartition(G, 8)
        a = p.decode(0, 1000)
        b = p.decode(1, 1000)
        assert a != b

    def test_resources_cover_everything(self):
        p = NoPartition(G, 2)
        assert len(p.resources(0)) == 8 * 8


class TestFactory:
    @pytest.mark.parametrize("level,cls", [
        ("channel", ChannelPartition),
        ("rank", RankPartition),
        ("bank", BankPartition),
        ("none", NoPartition),
    ])
    def test_levels(self, level, cls):
        geometry = G4 if level == "channel" else G
        assert isinstance(make_partition(level, geometry, 4), cls)

    def test_unknown_level(self):
        with pytest.raises(ValueError, match="unknown partition level"):
            make_partition("zone", G, 4)

    def test_level_property(self):
        assert make_partition("rank", G, 8).level == "rank"

    def test_domain_bounds_checked(self):
        p = make_partition("rank", G, 4)
        with pytest.raises(ValueError):
            p.resources(4)
