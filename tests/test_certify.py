"""End-to-end tests for the adversarial certification harness.

Covers the ISSUE 7 acceptance surface: strategy generation is
seed-deterministic; FS schemes certify at MI <= epsilon; the non-secure
baseline and the planted leaky scheme (``tests/leaky_scheme.py``) fail
certification; parallel batches write byte-identical artifacts to
serial ones; checkpoints make a batch resumable; and the CLI exit codes
encode the verdict.
"""

import dataclasses
import json

import pytest

from repro.certify import (
    AttackerStrategy,
    CertificationRun,
    STRATEGIES,
    StrategyRegistry,
    certify_scheme,
    generate_strategies,
    register_strategy,
    strategy_seed,
)
from repro.certify import harness as harness_mod
from repro.cli import main
from repro.errors import ConfigError, SchemeError
from repro.schemes import REGISTRY
from repro.sim.config import SystemConfig
from repro.workloads.synthetic import WorkloadSpec

from .leaky_scheme import LEAKY_SPEC


@pytest.fixture(autouse=True, scope="module")
def _leaky_spec_registered():
    """Scope the planted-leak scheme to this module: the registry is
    global, and unrelated suites pin exact scheme-name tuples."""
    REGISTRY.register(LEAKY_SPEC)
    yield
    REGISTRY.unregister(LEAKY_SPEC.name)


#: Small platform: every certification here is a real two-world
#: experiment, so the per-test budget matters.
CFG = SystemConfig(num_cores=4, accesses_per_core=100).with_cores(4)

#: One strategy per registered family, trials cut to 2 for speed.
BATCH = [
    dataclasses.replace(s, trials=2)
    for s in generate_strategies(len(STRATEGIES), seed=11)
]


# ---------------------------------------------------------------------
# Strategy generation.
# ---------------------------------------------------------------------


class TestStrategyGeneration:
    def test_registry_has_the_issue_families(self):
        for family in ("adaptive_probe", "refresh_phase", "burst_idle",
                       "fault_composed", "secret_pair"):
            assert family in STRATEGIES

    def test_generation_is_seed_deterministic(self):
        assert generate_strategies(12, seed=5) == \
            generate_strategies(12, seed=5)
        a = generate_strategies(12, seed=5)
        b = generate_strategies(12, seed=6)
        assert a != b

    def test_generation_round_robins_families_with_unique_names(self):
        strategies = generate_strategies(11, seed=3)
        names = [s.name for s in strategies]
        assert len(set(names)) == 11
        families = [s.family for s in strategies]
        for family in STRATEGIES:
            assert families.count(family) in (2, 3)

    def test_family_filter_and_unknown_family(self):
        only = generate_strategies(4, seed=1, families=["burst_idle"])
        assert {s.family for s in only} == {"burst_idle"}
        with pytest.raises(ConfigError):
            generate_strategies(2, seed=1, families=["nope"])

    def test_strategy_seed_is_stable_and_family_dependent(self):
        assert strategy_seed("x", 0, 7) == strategy_seed("x", 0, 7)
        assert strategy_seed("x", 0, 7) != strategy_seed("y", 0, 7)
        assert strategy_seed("x", 0, 7) != strategy_seed("x", 1, 7)

    def test_strategy_validation(self):
        probe = WorkloadSpec(name="p", mpki=10.0)
        quiet = WorkloadSpec(name="q", mpki=0.1)
        with pytest.raises(ConfigError):
            AttackerStrategy(
                name="bad", family="f", seed=1, attacker=probe,
                secret0=quiet, secret1=quiet,
            )
        with pytest.raises(ConfigError):
            AttackerStrategy(
                name="bad", family="f", seed=1, attacker=probe,
                secret0=quiet,
                secret1=WorkloadSpec(name="l", mpki=50.0), trials=0,
            )

    def test_custom_registry_is_isolated(self):
        registry = StrategyRegistry()

        @register_strategy("custom", registry=registry)
        def _gen(rng, index):
            probe = WorkloadSpec(name=f"p{index}", mpki=10.0)
            return AttackerStrategy(
                name="x", family="custom", seed=0, attacker=probe,
                secret0=WorkloadSpec(name="q", mpki=0.1),
                secret1=WorkloadSpec(name="l", mpki=50.0),
            )

        assert "custom" in registry and "custom" not in STRATEGIES
        out = generate_strategies(3, seed=2, registry=registry)
        assert [s.family for s in out] == ["custom"] * 3


# ---------------------------------------------------------------------
# Verdicts.
# ---------------------------------------------------------------------


class TestVerdicts:
    def test_fs_scheme_certifies(self):
        cert = certify_scheme("fs_rp", BATCH, config=CFG)
        assert cert.certified and cert.complete
        assert cert.max_mi_upper_bits == 0.0
        for verdict in cert.verdicts:
            assert verdict.exact_match and verdict.passed
            assert verdict.capacity_bits == 0.0

    def test_baseline_fails_certification(self):
        cert = certify_scheme("baseline", BATCH[:2], config=CFG)
        assert not cert.certified
        for verdict in cert.verdicts:
            assert not verdict.exact_match and not verdict.passed
            assert verdict.mi_upper_bits > 0.5  # near-perfect readout

    def test_planted_leaky_scheme_is_flagged(self):
        cert = certify_scheme("leaky_fs", BATCH[:2], config=CFG)
        assert not cert.certified
        assert all(not v.passed for v in cert.verdicts)

    def test_non_certifiable_scheme_refused(self):
        with pytest.raises(SchemeError):
            certify_scheme("fcfs", BATCH[:1], config=CFG)

    def test_duplicate_strategy_names_refused(self):
        with pytest.raises(ConfigError):
            certify_scheme("fs_rp", [BATCH[0], BATCH[0]], config=CFG)

    def test_strategy_error_is_isolated_and_fails(self, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("simulated harness failure")

        monkeypatch.setattr(harness_mod, "two_world_samples", boom)
        cert = certify_scheme("fs_rp", BATCH[:1], config=CFG)
        assert not cert.certified
        verdict = cert.verdicts[0]
        assert verdict.error_type == "RuntimeError"
        assert not verdict.passed
        assert cert.worst_strategy is verdict

    def test_budget_zero_skips_everything(self):
        run = CertificationRun(config=CFG, budget_s=0.0)
        cert = run.run("fs_rp", BATCH[:2])
        assert cert.skipped == tuple(s.name for s in BATCH[:2])
        assert not cert.complete and not cert.certified

    def test_fixed_service_demands_exact_match(self, monkeypatch):
        """An FS scheme whose MI bound is below epsilon but whose
        worlds were not literally equal still fails: the paper's claim
        is exact, not approximate."""
        def near_miss(scheme, strategy, config, **kwargs):
            # Worlds agree in every trial (MI exactly 0) — but report
            # that somewhere equality was violated.
            raw = [
                (t, s, f"obs-{t}") for t in range(2) for s in (0, 1)
            ]
            return raw, False

        monkeypatch.setattr(
            harness_mod, "two_world_samples", near_miss
        )
        cert = certify_scheme("fs_rp", BATCH[:1], config=CFG)
        verdict = cert.verdicts[0]
        assert verdict.mi_upper_bits == 0.0
        assert not verdict.exact_match and not verdict.passed
        assert not cert.certified

    def test_validation_errors(self):
        with pytest.raises(ConfigError):
            CertificationRun(workers=0)
        with pytest.raises(ConfigError):
            CertificationRun(epsilon_bits=-1.0)


# ---------------------------------------------------------------------
# Determinism, checkpointing, artifacts.
# ---------------------------------------------------------------------


class TestArtifacts:
    def test_serial_run_is_reproducible(self):
        a = certify_scheme("fs_rp", BATCH[:2], config=CFG)
        b = certify_scheme("fs_rp", BATCH[:2], config=CFG)
        assert [v.to_json_dict() for v in a.verdicts] == \
            [v.to_json_dict() for v in b.verdicts]

    def test_parallel_artifact_is_byte_identical(self, tmp_path):
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        serial = CertificationRun(config=CFG)
        serial.export_jsonl(
            serial.run("fs_rp", BATCH[:3]), str(serial_path)
        )
        parallel = CertificationRun(config=CFG, workers=2)
        parallel.export_jsonl(
            parallel.run("fs_rp", BATCH[:3]), str(parallel_path)
        )
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_span_trace_byte_identical_and_passive(self, tmp_path):
        """Spans armed: the merged certify trace matches across worker
        counts (modulo ``wall_*``) and the artifact bytes are unchanged
        vs. a spanless run — capture is a pure side channel."""
        import io

        from repro.telemetry import scrub_volatile_args

        baseline_path = tmp_path / "bare.jsonl"
        bare = CertificationRun(config=CFG)
        bare.export_jsonl(
            bare.run("fs_rp", BATCH[:3]), str(baseline_path)
        )
        traces = {}
        for workers in (1, 2):
            run = CertificationRun(
                config=CFG, workers=workers, collect_spans=True
            )
            certificate = run.run("fs_rp", BATCH[:3])
            out = tmp_path / f"spans{workers}.jsonl"
            run.export_jsonl(certificate, str(out))
            assert out.read_bytes() == baseline_path.read_bytes()
            buf = io.StringIO()
            exported = run.export_trace(buf)
            assert exported == len(run.tracer.records) > 0
            payload = scrub_volatile_args(json.loads(buf.getvalue()))
            traces[workers] = json.dumps(payload, sort_keys=True)
            categories = {r.category for r in run.tracer.records}
            assert {"batch", "trial", "run", "epoch"} <= categories
        assert traces[1] == traces[2]

    def test_artifact_shape(self, tmp_path):
        path = tmp_path / "cert.jsonl"
        run = CertificationRun(config=CFG)
        run.export_jsonl(run.run("fs_rp", BATCH[:2]), str(path))
        lines = [
            json.loads(l) for l in path.read_text().splitlines()
        ]
        assert len(lines) == 3  # two verdicts + trailer
        for verdict in lines[:2]:
            assert verdict["passed"] and verdict["exact_match"]
        trailer = lines[-1]["certificate"]
        assert trailer["scheme"] == "fs_rp" and trailer["certified"]

    def test_checkpoint_resume_skips_finished_strategies(
        self, tmp_path, monkeypatch
    ):
        checkpoint = tmp_path / "certify.ckpt.json"
        run = CertificationRun(config=CFG, checkpoint=str(checkpoint))
        first = run.run("fs_rp", BATCH[:2])
        assert checkpoint.exists()

        def boom(payload):
            raise AssertionError(
                "resume must not re-run finished strategies"
            )

        monkeypatch.setattr(harness_mod, "_certify_worker", boom)
        resumed = CertificationRun(
            config=CFG, checkpoint=str(checkpoint)
        )
        second = resumed.run("fs_rp", BATCH[:2])
        assert [v.to_json_dict() for v in second.verdicts] == \
            [v.to_json_dict() for v in first.verdicts]

    def test_checkpoint_invalidated_by_different_batch_key(
        self, tmp_path
    ):
        checkpoint = tmp_path / "certify.ckpt.json"
        run = CertificationRun(config=CFG, checkpoint=str(checkpoint))
        run.run("fs_rp", BATCH[:1])
        other = CertificationRun(
            config=CFG, epsilon_bits=0.5, checkpoint=str(checkpoint)
        )
        other._load_checkpoint("fs_rp")
        assert other._completed == {}  # epsilon changed: fresh batch

    def test_checkpoint_version_mismatch_starts_fresh(self, tmp_path):
        checkpoint = tmp_path / "certify.ckpt.json"
        checkpoint.write_text(json.dumps({
            "version": 999, "batch_key": "x", "verdicts": [],
        }))
        run = CertificationRun(config=CFG, checkpoint=str(checkpoint))
        run._load_checkpoint("fs_rp")
        assert run._completed == {}

    def test_metrics_registry_export(self):
        run = CertificationRun(config=CFG)
        cert = run.run("fs_rp", BATCH[:2])
        registry = run.metrics_registry(cert)
        snapshot = registry.snapshot()
        assert "certify_mi_upper_bits" in snapshot
        assert "certify_wall_seconds" not in snapshot  # volatile
        certified = registry.get("certify_certified")
        assert certified.value(scheme="fs_rp") == 1
        outcomes = registry.get("certify_strategies_total")
        assert outcomes.value(scheme="fs_rp", outcome="pass") == 2


# ---------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------


def _certify_args(*extra):
    return [
        "certify", "--cores", "4", "--accesses", "80",
        "--strategies", "2", "--trials", "1", *extra,
    ]


class TestCli:
    def test_fs_scheme_exits_zero(self, capsys):
        code = main(_certify_args("--scheme", "fs_rp"))
        out = capsys.readouterr().out
        assert code == 0 and "CERTIFIED" in out

    def test_baseline_exits_one(self, capsys):
        code = main(_certify_args("--scheme", "baseline"))
        out = capsys.readouterr().out
        assert code == 1 and "NOT CERTIFIED" in out

    def test_non_certifiable_exits_two(self, capsys):
        code = main(_certify_args("--scheme", "fcfs"))
        assert code == 2
        assert "not certifiable" in capsys.readouterr().err

    def test_artifact_and_metrics_outputs(self, tmp_path, capsys):
        artifact = tmp_path / "cert.jsonl"
        metrics = tmp_path / "cert-metrics.json"
        code = main(_certify_args(
            "--scheme", "fs_rp", "--artifact", str(artifact),
            "--metrics", str(metrics),
        ))
        assert code == 0
        lines = artifact.read_text().splitlines()
        assert json.loads(lines[-1])["certificate"]["certified"]
        exported = json.loads(metrics.read_text())
        assert "certify_mi_bits" in exported["metrics"]

    def test_multiple_schemes_any_failure_wins(self, capsys):
        code = main(_certify_args(
            "--scheme", "fs_rp", "--scheme", "baseline",
        ))
        assert code == 1
