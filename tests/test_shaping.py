"""Tests for per-domain shaping: hazard tracking and dummy generation."""

import pytest

from repro.core.schedule import CommandTimes
from repro.core.shaping import DomainHazardTracker, DummyGenerator
from repro.dram.commands import Address
from repro.dram.timing import DDR3_1600_X4
from repro.mapping.address import Geometry
from repro.mapping.partition import BankPartition, RankPartition

P = DDR3_1600_X4
G = Geometry()


def times(anchor, is_read=True):
    """Periodic-data command times for an anchor."""
    if is_read:
        return CommandTimes(anchor - 22, anchor - 11, anchor)
    return CommandTimes(anchor - 16, anchor - 5, anchor)


ADDR = Address(0, 0, 0, 10, 0)
OTHER_BANK = Address(0, 0, 1, 10, 0)
OTHER_RANK = Address(0, 1, 0, 10, 0)


class TestHazardTracker:
    @pytest.fixture
    def tracker(self):
        return DomainHazardTracker(P)

    def test_fresh_tracker_allows_anything(self, tracker):
        assert tracker.legal(times(100), ADDR, True)

    def test_same_bank_needs_trc(self, tracker):
        tracker.commit(times(100), ADDR, True)
        assert not tracker.legal(times(100 + P.tRC - 1), ADDR, True)
        assert tracker.legal(times(100 + P.tRC + 22), ADDR, True)

    def test_same_bank_write_turnaround_43(self, tracker):
        tracker.commit(times(100, False), ADDR, False)
        # ACT-to-ACT gap must be >= 43 after a write.
        write_act = 100 - 16
        ok_anchor = write_act + 43 + 22
        assert tracker.legal(times(ok_anchor), ADDR, True)
        assert not tracker.legal(times(ok_anchor - 2), ADDR, True)

    def test_same_rank_write_to_read(self, tracker):
        tracker.commit(times(100, False), ADDR, False)
        # Read column must trail the write column by Wr2Rd = 15.
        # Write col at 95; read col at anchor - 11.
        assert not tracker.legal(times(95 + 15 + 11 - 1), OTHER_BANK, True)
        assert tracker.legal(times(95 + 15 + 11 + 22), OTHER_BANK, True)

    def test_same_rank_trrd(self, tracker):
        tracker.commit(times(100), ADDR, True)
        # ACT at 78; next ACT needs >= 83.
        assert not tracker.legal(
            CommandTimes(80, 91, 102), OTHER_BANK, True
        )

    def test_tfaw_window(self, tracker):
        # Four activates at 0, 6, 12, 18 to different banks.
        for i in range(4):
            addr = Address(0, 0, i, 1, 0)
            tracker.commit(CommandTimes(i * 6, i * 6 + 11, i * 6 + 22),
                           addr, True)
        fifth = Address(0, 0, 4, 1, 0)
        assert not tracker.legal(
            CommandTimes(P.tFAW - 1, P.tFAW + 10, P.tFAW + 21), fifth, True
        )
        assert tracker.legal(
            CommandTimes(P.tFAW + 40, P.tFAW + 51, P.tFAW + 62),
            fifth, True,
        )

    def test_different_rank_unconstrained(self, tracker):
        tracker.commit(times(100, False), ADDR, False)
        assert tracker.legal(times(104), OTHER_RANK, True)

    def test_read_then_read_same_bank_trc_ok(self, tracker):
        tracker.commit(times(100), ADDR, True)
        anchor = 100 - 22 + P.tRC + 22
        assert tracker.legal(times(anchor), ADDR, True)


class TestDummyGenerator:
    def test_deterministic_per_domain(self):
        part = RankPartition(G, 8)
        a = DummyGenerator(3, part)
        b = DummyGenerator(3, part)
        for _ in range(20):
            assert [x.bank_key() for x in a.candidates()] == \
                [x.bank_key() for x in b.candidates()]

    def test_different_domains_differ(self):
        part = RankPartition(G, 8)
        a = DummyGenerator(0, part)
        b = DummyGenerator(1, part)
        assert a.candidates()[0].rank != b.candidates()[0].rank

    def test_confined_to_partition(self):
        part = RankPartition(G, 8)
        gen = DummyGenerator(5, part)
        for _ in range(50):
            for addr in gen.candidates():
                assert (addr.channel, addr.rank) in part.ranks_of(5)

    def test_rotates_banks(self):
        part = RankPartition(G, 8)
        gen = DummyGenerator(0, part)
        first = [gen.candidates(limit=1)[0].bank for _ in range(8)]
        assert len(set(first)) == 8  # cycles through all 8 banks

    def test_bank_mod_filter(self):
        part = BankPartition(G, 2)
        gen = DummyGenerator(0, part)
        for mod in (0, 1, 2):
            for addr in gen.candidates(bank_mod=mod):
                assert addr.bank % 3 == mod

    def test_empty_partition_rejected(self):
        part = RankPartition(G, 8)
        with pytest.raises(ValueError):
            DummyGenerator(0, part, channel=5)

    def test_rows_vary(self):
        part = RankPartition(G, 8)
        gen = DummyGenerator(0, part)
        rows = {gen.candidates(limit=1)[0].row for _ in range(32)}
        assert len(rows) > 8
