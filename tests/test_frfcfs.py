"""Tests for the non-secure FR-FCFS baseline."""

import random

import pytest

from repro.controllers.frfcfs import FrFcfsController
from repro.dram.checker import TimingChecker
from repro.dram.commands import OpType, Request
from repro.dram.system import DramSystem
from repro.dram.timing import DDR3_1600_X4
from repro.mapping.address import Geometry
from repro.mapping.partition import NoPartition

P = DDR3_1600_X4
G = Geometry()


def make():
    dram = DramSystem(P)
    return FrFcfsController(dram, 8, log_commands=True), NoPartition(G, 8)


def drive(ctrl, requests):
    requests = sorted(requests, key=lambda r: r.arrival)
    released, clock, idx = [], 0, 0
    while idx < len(requests) or ctrl.pending() or ctrl._release_heap:
        nxt = ctrl.next_event()
        arr = requests[idx].arrival if idx < len(requests) else None
        cands = [c for c in (nxt, arr) if c is not None]
        if not cands:
            break
        clock = max(clock + 1, min(cands))
        while idx < len(requests) and requests[idx].arrival <= clock:
            ctrl.enqueue(requests[idx])
            idx += 1
        released += ctrl.advance(clock)
    return released, clock


def read(part, domain, line, arrival):
    return Request(op=OpType.READ, address=part.decode(domain, line),
                   domain=domain, arrival=arrival, line=line)


def write(part, domain, line, arrival):
    return Request(op=OpType.WRITE, address=part.decode(domain, line),
                   domain=domain, arrival=arrival, line=line)


class TestCorrectness:
    def test_all_reads_complete(self):
        ctrl, part = make()
        rng = random.Random(5)
        reqs = []
        t = 0
        for _ in range(400):
            d = rng.randrange(8)
            if rng.random() < 0.7:
                reqs.append(read(part, d, rng.randrange(50_000), t))
            else:
                reqs.append(write(part, d, rng.randrange(50_000), t))
            t += rng.randrange(0, 8)
        released, _ = drive(ctrl, reqs)
        assert len(released) == sum(1 for r in reqs if r.is_read)

    def test_commands_pass_jedec_checker(self):
        ctrl, part = make()
        rng = random.Random(6)
        reqs = []
        t = 0
        for _ in range(400):
            d = rng.randrange(8)
            op = OpType.READ if rng.random() < 0.6 else OpType.WRITE
            line = rng.randrange(20_000)
            reqs.append(Request(op=op, address=part.decode(d, line),
                                domain=d, arrival=t, line=line))
            t += rng.randrange(0, 5)
        drive(ctrl, reqs)
        assert TimingChecker(P).check(ctrl.command_log) == []


class TestRowHits:
    def test_row_hits_detected(self):
        ctrl, part = make()
        # Sequential lines share a row: open-page should hit.
        reqs = [read(part, 0, i, i * 30) for i in range(20)]
        released, _ = drive(ctrl, reqs)
        hits = sum(1 for r in released if r.row_hit)
        assert hits >= 15

    def test_row_hit_is_faster(self):
        ctrl, part = make()
        reqs = [read(part, 0, 0, 0), read(part, 0, 1, 0)]
        released, _ = drive(ctrl, reqs)
        lat = sorted(r.latency for r in released)
        # Second access rides the open row: only tCCD + burst later.
        assert lat[1] - lat[0] <= P.tCCD + P.tBURST

    def test_row_hit_bypasses_older_miss(self):
        ctrl, part = make()
        # Line 0 opens a row; a conflicting row arrives, then a hit.
        g = G
        row_stride = g.columns  # next row, same bank
        reqs = [
            read(part, 0, 0, 0),
            read(part, 0, row_stride * 8, 1),  # same bank, other row
            read(part, 0, 1, 2),               # row hit
        ]
        released, _ = drive(ctrl, reqs)
        by_line = {r.line: r for r in released}
        assert by_line[1].data_start < by_line[row_stride * 8].data_start


class TestWriteDrain:
    def test_writes_drain_at_high_watermark(self):
        ctrl, part = make()
        reqs = [write(part, 0, i * 997, i) for i in range(40)]
        drive(ctrl, reqs)
        assert ctrl.stats.demand_writes == 40

    def test_reads_prioritized_over_writes(self):
        ctrl, part = make()
        reqs = [write(part, 0, 1000 + i, 0) for i in range(8)]
        reqs.append(read(part, 1, 5, 0))
        released, _ = drive(ctrl, reqs)
        # The read should complete quickly despite queued writes.
        assert released[0].latency < 200

    def test_forwarding_from_write_queue(self):
        ctrl, part = make()
        w = write(part, 0, 123, 0)
        r = read(part, 0, 123, 1)
        released, _ = drive(ctrl, [w, r])
        assert released[0].latency <= 2  # forwarded, no DRAM trip


class TestStarvation:
    def test_old_requests_eventually_win(self):
        ctrl, part = make()
        # A stream of row hits to one row plus one conflicting request.
        reqs = [read(part, 0, i % 32, i * 5) for i in range(300)]
        victim = read(part, 0, G.columns * 64, 10)  # same bank, other row
        released, _ = drive(ctrl, reqs + [victim])
        v = next(r for r in released if r.line == G.columns * 64)
        assert v.latency < ctrl.STARVATION_LIMIT + 500


class TestValidation:
    def test_watermark_ordering_enforced(self):
        dram = DramSystem(P)
        with pytest.raises(ValueError):
            FrFcfsController(dram, 8, write_queue_high=8,
                             write_queue_low=8)
