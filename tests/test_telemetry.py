"""Tests for the unified telemetry layer (ISSUE 3).

The three pinned properties:

(a) telemetry is **inert**: a run without a session records zero events,
    and attaching one changes no simulated observable;
(b) the **invariance picture**: every FS scheme yields a degenerate
    (single-bucket) inter-service-time histogram per domain, FR-FCFS a
    spread;
(c) the Chrome trace export is valid JSON with monotonically
    non-decreasing timestamps within every (pid, tid) track.

Plus unit coverage of the registry (determinism, label validation,
Prometheus exposition, volatile exclusion), the collector (ring bound,
JSONL sink, friendly path errors), fault/monitor streaming, and the CLI
surfaces (``run --metrics/--trace``, ``stats``, ``trace``).
"""

import dataclasses
import io
import json
from collections import defaultdict

import pytest

from repro.errors import TelemetryError
from repro.sim.config import SystemConfig
from repro.sim.runner import SchemeOptions, build_system, run_scheme
from repro.telemetry import (
    MetricsRegistry,
    TelemetrySession,
    TraceCollector,
    chrome_trace_dict,
    export_chrome_trace,
    inter_service_histogram,
    is_degenerate,
)
from repro.telemetry.report import histogram_report
from repro.workloads.spec import suite_specs


def _small_config(cores: int = 2, accesses: int = 60) -> SystemConfig:
    config = SystemConfig(accesses_per_core=accesses)
    if cores != config.num_cores:
        config = config.with_cores(cores)
    return config


def _run(scheme, options=None, cores=2, accesses=60, engine="reference"):
    config = _small_config(cores, accesses)
    system = build_system(
        scheme, config, suite_specs("mix1", cores), options,
        engine=engine,
    )
    return system.run(), system.controller


# ---------------------------------------------------------------------
# (a) Disabled telemetry is inert.
# ---------------------------------------------------------------------


def test_disabled_telemetry_records_nothing():
    """No session attached => no events, no metrics, plain attrs."""
    result, controller = _run("fs_bp")
    assert controller.telemetry is None
    assert result.cycles > 0


@pytest.mark.parametrize("scheme", ["fs_bp", "baseline"])
def test_enabling_telemetry_does_not_change_observables(scheme):
    """Collection is passive: every observable is bit-identical with
    and without a session attached."""
    bare, _ = _run(scheme)
    session = TelemetrySession(collector=TraceCollector(), profile=True)
    observed, _ = _run(scheme, SchemeOptions(telemetry=session))
    assert observed.cycles == bare.cycles
    assert observed.service_trace == bare.service_trace
    assert observed.energy == bare.energy
    assert observed.cores == bare.cores
    assert observed.bus_utilization == bare.bus_utilization
    for f in dataclasses.fields(type(bare.stats)):
        assert getattr(observed.stats, f.name) == \
            getattr(bare.stats, f.name), f.name
    # ... and the session actually saw the run.
    assert session.collector.total_events > 0
    svc = session.registry.get("service_events_total")
    total = sum(v for _, v in svc.samples())
    assert total == sum(
        len(events) for events in observed.service_trace.values()
    )


# ---------------------------------------------------------------------
# (b) The invariance picture.
# ---------------------------------------------------------------------


@pytest.mark.parametrize(
    "scheme", ["fs_rp", "fs_bp", "fs_np", "fs_np_ta", "fs_reordered_bp"]
)
def test_fs_histograms_degenerate(scheme):
    """Fixed Service: every domain's service cadence is one constant."""
    result, _ = _run(scheme, accesses=80)
    histograms = inter_service_histogram(result.service_trace)
    assert is_degenerate(histograms), histogram_report(
        histograms, scheme
    )
    for domain, hist in histograms.items():
        assert len(hist) == 1, (domain, dict(hist))


@pytest.mark.parametrize("scheme", ["baseline", "tp_bp"])
def test_insecure_histograms_spread(scheme):
    """FR-FCFS / TP: the spacing is workload-dependent (many buckets)."""
    result, _ = _run(scheme, accesses=120)
    histograms = inter_service_histogram(result.service_trace)
    assert not is_degenerate(histograms)
    assert any(len(h) > 4 for h in histograms.values())
    assert "timing channel" in histogram_report(histograms, scheme)


def test_histogram_kinds_filter():
    result, _ = _run("fs_bp")
    demand_only = inter_service_histogram(
        result.service_trace, kinds=("R", "W")
    )
    everything = inter_service_histogram(result.service_trace)
    for domain in everything:
        assert sum(demand_only[domain].values()) <= sum(
            everything[domain].values()
        )


# ---------------------------------------------------------------------
# (c) Chrome trace export.
# ---------------------------------------------------------------------


def test_chrome_trace_valid_and_monotonic():
    session = TelemetrySession(collector=TraceCollector())
    result, controller = _run(
        "fs_bp", SchemeOptions(telemetry=session, monitor=True)
    )
    session.harvest(result, controller)
    buf = io.StringIO()
    exported = export_chrome_trace(
        session.collector, buf, metadata={"scheme": "fs_bp"}
    )
    assert exported == session.collector.total_events
    payload = json.loads(buf.getvalue())
    assert payload["otherData"]["scheme"] == "fs_bp"
    per_track = defaultdict(list)
    names = {"process_name": 0, "thread_name": 0}
    for event in payload["traceEvents"]:
        if event["name"] in names:
            names[event["name"]] += 1
            continue
        per_track[(event["pid"], event["tid"])].append(event["ts"])
    assert names["process_name"] > 0 and names["thread_name"] > 0
    assert per_track, "no non-metadata events exported"
    for track, stamps in per_track.items():
        assert stamps == sorted(stamps), track


def test_chrome_trace_deterministic_ids():
    events = [
        dict(ts=5, pid="b", tid="y", name="n2", ph="i", dur=0, args=None),
        dict(ts=1, pid="a", tid="x", name="n1", ph="X", dur=3,
             args={"k": 1}),
    ]
    from repro.telemetry import TraceEvent

    payload = chrome_trace_dict([TraceEvent(**e) for e in events])
    body = [e for e in payload["traceEvents"]
            if e["name"] not in ("process_name", "thread_name")]
    assert [e["name"] for e in body] == ["n1", "n2"]
    assert body[0]["dur"] == 3 and body[0]["args"] == {"k": 1}


# ---------------------------------------------------------------------
# Registry unit behaviour.
# ---------------------------------------------------------------------


def test_registry_counter_gauge_histogram():
    registry = MetricsRegistry()
    c = registry.counter("c_total", "help", ("kind",))
    c.inc(kind="a")
    c.inc(2, kind="a")
    c.inc(kind="b")
    assert c.value(kind="a") == 3
    assert c.value(kind="never") == 0
    g = registry.gauge("g", "help")
    g.set(4.5)
    g.inc(0.5)
    assert g.value() == 5.0
    h = registry.histogram("h", "help", buckets=(1, 10, 100))
    for v in (0, 5, 50, 500):
        h.observe(v)
    sample = h.snapshot_samples()[""]
    assert sample["count"] == 4 and sample["sum"] == 555
    assert sample["overflow"] == 1


def test_registry_rejects_misuse():
    registry = MetricsRegistry()
    c = registry.counter("x_total", labelnames=("kind",))
    with pytest.raises(TelemetryError):
        c.inc()  # missing label
    with pytest.raises(TelemetryError):
        c.inc(kind="a", extra="b")
    with pytest.raises(TelemetryError):
        c.inc(-1, kind="a")
    with pytest.raises(TelemetryError):
        registry.gauge("x_total")  # kind mismatch
    with pytest.raises(TelemetryError):
        registry.counter("x_total", labelnames=("other",))
    # Idempotent get-or-create with matching shape is fine.
    assert registry.counter("x_total", labelnames=("kind",)) is c


def test_registry_snapshot_excludes_volatile_and_sorts():
    registry = MetricsRegistry()
    registry.counter("b_total").inc(1)
    registry.counter("a_total").inc(2)
    registry.gauge("wall_seconds", volatile=True).set(1.23)
    snap = registry.snapshot()
    assert list(snap) == ["a_total", "b_total"]
    assert "wall_seconds" not in snap
    # ...but the full JSON export keeps it, flagged.
    full = registry.to_json_dict()["metrics"]
    assert full["wall_seconds"]["volatile"] is True
    # Snapshots of equal state are byte-identical.
    other = MetricsRegistry()
    other.counter("a_total").inc(2)
    other.counter("b_total").inc(1)
    other.gauge("wall_seconds", volatile=True).set(9.87)
    assert json.dumps(snap, sort_keys=True) == json.dumps(
        other.snapshot(), sort_keys=True
    )


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    registry.counter(
        "faults_injected_total", "faults that struck", ("kind",)
    ).inc(3, kind="drop_command")
    registry.histogram("lat", "latency", buckets=(1, 2)).observe(1.5)
    text = registry.to_prometheus()
    assert "# TYPE faults_injected_total counter" in text
    assert 'faults_injected_total{kind="drop_command"} 3' in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_sum 1.5" in text and "lat_count 1" in text


def test_prometheus_every_family_has_help_and_type():
    """Exposition-format conformance: each family leads with exactly
    one ``# HELP`` and one ``# TYPE`` line, in that order."""
    session = TelemetrySession(profile=True)
    result, controller = _run(
        "fs_bp", SchemeOptions(telemetry=session), accesses=40
    )
    session.harvest(result, controller)
    text = session.registry.to_prometheus()
    families = []
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if line.startswith("# TYPE "):
            name = line.split()[2]
            families.append(name)
            prev = lines[i - 1] if i else ""
            assert prev.startswith(f"# HELP {name}"), name
    assert families, "no families exposed"
    assert len(families) == len(set(families))


def test_prometheus_label_escaping_round_trip():
    from repro.telemetry import parse_prometheus_text

    registry = MetricsRegistry()
    nasty = 'back\\slash "quoted"\nnewline'
    registry.counter(
        "odd_labels_total", 'help with "quotes" and \\slashes',
        ("path",),
    ).inc(2, path=nasty)
    registry.gauge("bare", "").set(1.5)  # empty help: bare # HELP line
    registry.histogram("h", "hist", buckets=(1,)).observe(0.5)
    text = registry.to_prometheus()
    assert '\\"quoted\\"' in text and "\\n" in text
    parsed = parse_prometheus_text(text)
    assert parsed["odd_labels_total"]["type"] == "counter"
    assert parsed["odd_labels_total"]["help"] == \
        'help with "quotes" and \\slashes'
    ((sample_name, labels, value),) = \
        parsed["odd_labels_total"]["samples"]
    assert labels == {"path": nasty}  # escaping survived the trip
    assert value == 2
    assert parsed["bare"]["samples"] == [("bare", {}, 1.5)]
    # Histogram series fold back into one family.
    sample_names = {s[0] for s in parsed["h"]["samples"]}
    assert {"h_bucket", "h_sum", "h_count"} <= sample_names


def test_prometheus_parse_round_trips_whole_run():
    """Parsing a full run's exposition recovers every family and every
    sample value — the conformance gate for external scrapers."""
    from repro.telemetry import parse_prometheus_text

    session = TelemetrySession(profile=True)
    result, controller = _run(
        "fs_bp", SchemeOptions(telemetry=session), accesses=40
    )
    session.harvest(result, controller)
    registry = session.registry
    parsed = parse_prometheus_text(registry.to_prometheus())
    exposed = {m.name for m in registry.metrics()}
    assert set(parsed) == exposed
    svc = registry.get("service_events_total")
    expected = {
        tuple(key): value for key, value in svc.samples()
    }
    got = {
        tuple(labels[n] for n in ("domain", "kind")): value
        for _, labels, value in
        parsed["service_events_total"]["samples"]
    }
    assert got == {
        tuple(str(part) for part in key): value
        for key, value in expected.items()
    }


def test_prometheus_parse_rejects_malformed():
    from repro.telemetry import parse_prometheus_text

    with pytest.raises(TelemetryError):
        parse_prometheus_text('x{unterminated="v\n')
    with pytest.raises(TelemetryError):
        parse_prometheus_text("lonely_number_is_not_a_sample\n")


# ---------------------------------------------------------------------
# Structured logging (satellite: repro.telemetry.log).
# ---------------------------------------------------------------------


def _capture_log(level="INFO"):
    import logging

    from repro.telemetry.log import JsonLineFormatter

    stream = io.StringIO()
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLineFormatter())
    root = logging.getLogger("repro")
    root.addHandler(handler)
    old_level = root.level
    root.setLevel(level)
    return stream, handler, old_level


def _release_log(handler, old_level):
    import logging

    root = logging.getLogger("repro")
    root.removeHandler(handler)
    root.setLevel(old_level)


def test_structured_logger_emits_json_lines():
    from repro.telemetry import get_logger, get_run_id

    stream, handler, old = _capture_log()
    try:
        log = get_logger("unit")
        log.info("cell done", extra={
            "scheme": "fs_rp", "cycles": 123,
            "unserializable": object(),
        })
    finally:
        _release_log(handler, old)
    line = json.loads(stream.getvalue().strip())
    assert line["logger"] == "repro.unit"
    assert line["level"] == "INFO"
    assert line["msg"] == "cell done"
    assert line["scheme"] == "fs_rp" and line["cycles"] == 123
    assert line["run_id"] == get_run_id()
    assert "object object" in line["unserializable"]  # repr fallback


def test_run_id_correlates_and_pins():
    from repro.telemetry import get_run_id, set_run_id

    original = get_run_id()
    assert get_run_id() == original  # stable within the process
    try:
        set_run_id("deadbeef0123")
        assert get_run_id() == "deadbeef0123"
    finally:
        set_run_id(original)


def test_configure_levels_and_rejects_unknown():
    import logging

    from repro.telemetry import configure

    root = logging.getLogger("repro")
    old = root.level
    try:
        configure("debug")
        assert root.level == logging.DEBUG
        with pytest.raises(TelemetryError, match="unknown log level"):
            configure("chatty")
    finally:
        root.setLevel(old)


def test_sweep_logs_cells_with_run_id():
    """The sweep executor reports each finished cell as JSON."""
    from repro.sim.sweep import Sweep

    stream, handler, old = _capture_log()
    try:
        sweep = Sweep(_small_config(), max_cycles=2_000_000)
        sweep.run_grid(["fs_bp"], ["mix1"])
    finally:
        _release_log(handler, old)
    lines = [json.loads(l) for l in stream.getvalue().splitlines()]
    cells = [l for l in lines if l["msg"] == "cell done"]
    assert len(cells) == 1
    assert cells[0]["logger"] == "repro.sweep"
    assert cells[0]["scheme"] == "fs_bp"
    assert cells[0]["cycles"] > 0
    assert len({l["run_id"] for l in lines}) == 1


def test_log_duration_context():
    from repro.telemetry import get_logger
    from repro.telemetry.log import log_duration

    stream, handler, old = _capture_log()
    try:
        log = get_logger("unit")
        with log_duration(log, "timed", phase="x"):
            pass
        with pytest.raises(ValueError):
            with log_duration(log, "failed"):
                raise ValueError("boom")
    finally:
        _release_log(handler, old)
    ok, bad = [json.loads(l) for l in stream.getvalue().splitlines()]
    assert ok["msg"] == "timed" and ok["wall_s"] >= 0
    assert ok["phase"] == "x"
    assert bad["level"] == "WARNING" and bad["outcome"] == "error"


def test_cli_log_level_flag():
    """``--log-level info`` raises the shared level for the whole
    invocation, so executor progress lines actually emit."""
    import logging

    root = logging.getLogger("repro")
    old = root.level
    root.setLevel(logging.WARNING)  # the quiet default
    stream, handler, _ = _capture_log(level="WARNING")
    try:
        code = _cli([
            "--log-level", "info", "sweep", "--schemes", "fs_bp",
            "--workloads", "mix1", "--cores", "2", "--accesses", "40",
        ])
        assert code == 0
        assert root.level == logging.INFO  # the flag took effect
    finally:
        _release_log(handler, old)
    cell_lines = [
        json.loads(l) for l in stream.getvalue().splitlines()
        if '"cell done"' in l
    ]
    assert cell_lines and cell_lines[0]["scheme"] == "fs_bp"


# ---------------------------------------------------------------------
# Collector behaviour.
# ---------------------------------------------------------------------


def test_collector_ring_bound_and_sink():
    sink = io.StringIO()
    collector = TraceCollector(capacity=4, sink=sink)
    for i in range(10):
        collector.record(i, "p", "t", f"e{i}")
    assert len(collector) == 4
    assert collector.total_events == 10
    assert collector.dropped_events == 6
    assert [e.name for e in collector.events()] == \
        ["e6", "e7", "e8", "e9"]
    # The sink streamed *every* event as JSONL despite the ring bound.
    lines = [json.loads(l) for l in sink.getvalue().splitlines()]
    assert len(lines) == 10
    assert lines[0]["name"] == "e0" and lines[0]["ts"] == 0


def test_collector_bad_path_is_friendly():
    with pytest.raises(TelemetryError):
        TraceCollector(sink="/nonexistent-dir/trace.jsonl")
    with pytest.raises(TelemetryError):
        TraceCollector(capacity=0)


# ---------------------------------------------------------------------
# Fault and monitor streaming (satellite 6).
# ---------------------------------------------------------------------


def test_fault_events_stream_into_labeled_counters():
    from repro.faults import FaultPlan

    plan = FaultPlan.parse("drop_command:0.05,delay_slot:0.05", seed=3)
    session = TelemetrySession(collector=TraceCollector())
    options = SchemeOptions(telemetry=session, faults=plan, monitor=True)
    result, controller = _run("fs_bp", options, accesses=120)
    assert result.faults, "campaign struck nothing; raise the rates"
    faults = session.registry.get("faults_injected_total")
    for kind, count in result.faults.items():
        assert faults.value(kind=kind) == count
    recoveries = session.registry.get("recoveries_total")
    assert recoveries.value() == sum(result.faults.values())
    assert any(
        e.pid == "faults" for e in session.collector.events()
    )
    # Clean run: the watchdog stayed green and said so via the gauges.
    session.harvest(result, controller)
    assert session.registry.get("monitor_ok").value() == 1
    assert session.registry.get("monitor_violations_total").value() == 0


def test_violations_stream_live():
    from repro.faults import FaultPlan

    plan = FaultPlan.parse("borrow_foreign_slot:0.2", seed=1)
    session = TelemetrySession(collector=TraceCollector())
    options = SchemeOptions(telemetry=session, faults=plan, monitor=True)
    result, controller = _run("fs_bp", options, accesses=120)
    monitor = controller.monitor
    assert monitor.total_violations > 0, \
        "broken recovery must trip the watchdog"
    live = session.registry.get("monitor_violations_total")
    assert live.value() == monitor.total_violations
    session.harvest(result, controller)
    assert session.registry.get("monitor_ok").value() == 0


# ---------------------------------------------------------------------
# Harvest / engine profile.
# ---------------------------------------------------------------------


def test_harvest_covers_legacy_structs():
    session = TelemetrySession(profile=True)
    config = _small_config()
    result = run_scheme(
        "fs_bp", config, suite_specs("mix1", 2),
        SchemeOptions(telemetry=session), engine="fast",
    )
    registry = session.registry
    assert registry.get("run_cycles").value() == result.cycles
    assert registry.get("controller_dummies_total").value() == \
        result.stats.dummies
    assert registry.get("energy_total_pj").value() == pytest.approx(
        result.energy.total_pj, abs=0.01
    )
    for core in result.cores:
        assert registry.get("core_ipc").value(domain=core.domain) == \
            pytest.approx(core.ipc, abs=1e-6)
    spread = registry.get("inter_service_distinct_gaps")
    for domain in result.service_trace:
        assert spread.value(domain=domain) == 1
    assert registry.get("service_cadence_degenerate").value() == 1
    # Fast-engine profile: volatile, present, plausible.
    assert registry.get("engine_driver_iterations_total").volatile
    assert registry.get("engine_driver_iterations_total").value() > 0
    assert registry.get("engine_wall_seconds").value() > 0
    assert "engine_wall_seconds" not in registry.snapshot()


def test_multichannel_domains_relabeled_globally():
    session = TelemetrySession()
    config = _small_config(cores=8, accesses=40)
    run_scheme(
        "fs_rp_mc", config, suite_specs("mix1", 8),
        SchemeOptions(telemetry=session), engine="fast",
    )
    svc = session.registry.get("service_events_total")
    domains = sorted({int(key[0]) for key, _ in svc.samples()})
    assert domains == list(range(8))


# ---------------------------------------------------------------------
# CLI surfaces (satellite 2).
# ---------------------------------------------------------------------


def _cli(argv):
    from repro.cli import main

    return main(argv)


def test_cli_run_metrics_and_trace(tmp_path, capsys):
    metrics = tmp_path / "m.json"
    trace = tmp_path / "t.trace.json"
    code = _cli([
        "run", "fs_bp", "mix1", "--cores", "2", "--accesses", "40",
        "--metrics", str(metrics), "--trace", str(trace),
    ])
    assert code == 0
    data = json.loads(metrics.read_text())
    assert "service_events_total" in data["metrics"]
    payload = json.loads(trace.read_text())
    assert payload["traceEvents"]


def test_cli_run_bad_metrics_path_fails_fast(capsys):
    code = _cli([
        "run", "fs_bp", "mix1", "--cores", "2", "--accesses", "40",
        "--metrics", "/nonexistent-dir/m.json",
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "TelemetryError" in err and "nonexistent-dir" in err


def test_cli_stats_verdicts(tmp_path, capsys):
    prom = tmp_path / "m.prom"
    code = _cli([
        "stats", "fs_bp", "mix1", "--cores", "2", "--accesses", "40",
        "--metrics", str(prom),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "FIXED CADENCE" in out
    assert "# TYPE service_events_total counter" in prom.read_text()
    code = _cli([
        "stats", "baseline", "mix1", "--cores", "2",
        "--accesses", "40",
    ])
    assert code == 0  # insecure scheme: spread is expected, not an error
    assert "timing channel" in capsys.readouterr().out


def test_cli_trace_subcommand(tmp_path, capsys):
    out_path = tmp_path / "run.trace.json"
    code = _cli([
        "trace", "fs_bp", "mix1", "--cores", "2", "--accesses", "40",
        str(out_path),
    ])
    assert code == 0
    assert "perfetto" in capsys.readouterr().out
    payload = json.loads(out_path.read_text())
    assert payload["traceEvents"]


def test_cli_sweep_metrics_artifact(tmp_path):
    metrics = tmp_path / "grid.json"
    code = _cli([
        "sweep", "--schemes", "fs_bp", "--workloads", "mix1",
        "--cores", "2", "--accesses", "40", "--metrics", str(metrics),
    ])
    assert code == 0
    data = json.loads(metrics.read_text())
    assert data["metrics"]["sweep_cells_total"]["samples"][""] == 1
