"""Tests for synthetic workload generation and the benchmark suite."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.commands import OpType
from repro.workloads.spec import (
    EVALUATION_SUITE,
    MIXES,
    NPB,
    SPEC2K6,
    rate_mode,
    suite_specs,
    workload,
)
from repro.workloads.synthetic import (
    LINES_PER_ROW,
    WorkloadSpec,
    generate_trace,
    idle_spec,
    intense_spec,
)


class TestGeneration:
    def test_access_count(self):
        spec = workload("milc")
        trace = generate_trace(spec, 500, seed=1)
        assert len(trace) == 500

    def test_deterministic(self):
        spec = workload("mcf")
        a = generate_trace(spec, 300, seed=7)
        b = generate_trace(spec, 300, seed=7)
        assert [(r.gap, r.op, r.line) for r in a] == \
            [(r.gap, r.op, r.line) for r in b]

    def test_seeds_differ(self):
        spec = workload("mcf")
        a = generate_trace(spec, 300, seed=1)
        b = generate_trace(spec, 300, seed=2)
        assert [r.line for r in a] != [r.line for r in b]

    def test_mpki_matches_spec(self):
        spec = workload("libquantum")
        trace = generate_trace(spec, 5000, seed=3)
        assert trace.mpki == pytest.approx(spec.mpki, rel=0.15)

    def test_read_fraction_matches_spec(self):
        spec = workload("lbm")
        trace = generate_trace(spec, 5000, seed=4)
        reads = trace.reads / len(trace)
        assert reads == pytest.approx(spec.read_fraction, abs=0.03)

    def test_row_locality_creates_row_reuse(self):
        streaming = generate_trace(workload("libquantum"), 2000, seed=5)
        random_w = generate_trace(workload("mcf"), 2000, seed=5)

        def row_reuse_fraction(trace, window=16):
            """Accesses whose row was touched in the recent window
            (streams interleave, so adjacency is windowed, not strict)."""
            recent = []
            reused = 0
            for r in trace:
                row = r.line // LINES_PER_ROW
                if row in recent:
                    reused += 1
                recent.append(row)
                if len(recent) > window:
                    recent.pop(0)
            return reused / len(trace)

        assert row_reuse_fraction(streaming) > 0.7
        assert row_reuse_fraction(random_w) < 0.35

    def test_dependencies_only_on_reads(self):
        trace = generate_trace(workload("mcf"), 2000, seed=6)
        for r in trace:
            if r.depends_on_prev:
                assert r.op is OpType.READ

    def test_lines_within_working_set(self):
        spec = workload("xalancbmk")
        trace = generate_trace(spec, 2000, seed=8)
        assert all(0 <= r.line < spec.working_set_lines for r in trace)

    def test_needs_positive_count(self):
        with pytest.raises(ValueError):
            generate_trace(workload("milc"), 0)


class TestSpecValidation:
    def test_rejects_bad_mpki(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", mpki=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", mpki=1, read_fraction=1.5)

    def test_rejects_tiny_working_set(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", mpki=1, working_set_lines=10)

    def test_mean_gap(self):
        spec = WorkloadSpec(name="x", mpki=10)
        assert spec.mean_gap == pytest.approx(99.0)


class TestSuite:
    def test_paper_benchmarks_present(self):
        for name in ("libquantum", "milc", "mcf", "GemsFDTD", "astar",
                     "zeusmp", "xalancbmk", "lbm"):
            assert name in SPEC2K6

    def test_npb_present(self):
        assert set(NPB) == {"CG", "SP"}

    def test_evaluation_suite_is_papers_x_axis(self):
        assert EVALUATION_SUITE[0] == "mix1"
        assert EVALUATION_SUITE[-1] == "xalancbmk"
        assert len(EVALUATION_SUITE) == 12

    def test_intensity_contrast(self):
        # The paper's dummy-fraction extremes rely on this ordering.
        assert SPEC2K6["libquantum"].mpki > 10 * SPEC2K6["xalancbmk"].mpki

    def test_rate_mode(self):
        specs = rate_mode("milc", 8)
        assert len(specs) == 8
        assert all(s.name == "milc" for s in specs)

    def test_mixes_have_eight_threads(self):
        for names in MIXES.values():
            assert len(names) == 8

    def test_suite_specs_expands_mix(self):
        specs = suite_specs("mix1", 8)
        assert [s.name for s in specs] == MIXES["mix1"]

    def test_suite_specs_rescales_mix(self):
        specs = suite_specs("mix2", 4)
        assert len(specs) == 4

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload("doom")


class TestSyntheticCoRunners:
    def test_idle_is_quiet(self):
        assert idle_spec().mpki < 0.1

    def test_intense_is_loud(self):
        assert intense_spec().mpki > 50


class TestTraceType:
    def test_trace_statistics(self):
        trace = generate_trace(workload("zeusmp"), 1000, seed=2)
        assert trace.reads + trace.writes == 1000
        assert trace.instructions >= 1000

    @given(st.integers(1, 50))
    @settings(max_examples=20, deadline=None)
    def test_any_size_generates(self, n):
        trace = generate_trace(idle_spec(), n, seed=0)
        assert len(trace) == n
