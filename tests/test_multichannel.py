"""Tests for the full-target multi-channel FS system (Section 4.1)."""

import pytest

from repro.dram.checker import TimingChecker
from repro.dram.timing import DDR3_1600_X4
from repro.sim.config import SystemConfig, full_target_config
from repro.sim.runner import SchemeOptions, build_system, run_scheme
from repro.workloads.spec import suite_specs

P = DDR3_1600_X4
CFG = full_target_config(accesses_per_core=120)


class TestFullTargetSystem:
    def test_config_matches_section_4_1(self):
        assert CFG.num_cores == 32
        assert CFG.geometry.channels == 4
        assert CFG.geometry.ranks == 8
        assert CFG.geometry.banks == 8

    def test_completes_and_is_legal(self):
        system = build_system(
            "fs_rp_mc", CFG, suite_specs("milc", 32),
            SchemeOptions(log_commands=True),
        )
        result = system.run(max_cycles=8_000_000)
        assert all(c.done for c in result.cores)
        assert TimingChecker(P).check(system.controller.command_log) == []

    def test_per_channel_peak_utilization(self):
        system = build_system("fs_rp_mc", CFG, suite_specs("mcf", 32))
        result = system.run(max_cycles=8_000_000)
        # Each channel runs the 57% pipeline independently.
        assert result.bus_utilization <= 4 / 7 + 0.01

    def test_throughput_matches_single_channel_shape(self):
        specs = suite_specs("milc", 32)
        baseline = run_scheme("baseline", CFG, specs,
                              max_cycles=8_000_000)
        fs = run_scheme("fs_rp_mc", CFG, specs, max_cycles=8_000_000)
        ratio = fs.weighted_ipc(baseline) / 32.0
        assert 0.5 < ratio < 0.9  # the paper's -27% band, widened

    def test_stats_aggregate_across_channels(self):
        system = build_system("fs_rp_mc", CFG, suite_specs("milc", 32))
        result = system.run(max_cycles=8_000_000)
        assert result.stats.demand_reads == result.total_reads

    def test_service_trace_covers_every_domain(self):
        system = build_system("fs_rp_mc", CFG, suite_specs("milc", 32))
        system.run(max_cycles=8_000_000)
        trace = system.controller.service_trace
        assert set(trace) == set(range(32))
        assert all(trace[d] for d in range(32))

    def test_domains_spanning_channels_rejected(self):
        from repro.mapping.address import Geometry
        from repro.mapping.partition import RankPartition
        from repro.dram.system import DramSystem
        from repro.sim.multichannel import MultiChannelFsController

        geometry = Geometry(channels=4, ranks=8, banks=8)
        dram = DramSystem(P, num_channels=4)
        partition = RankPartition(geometry, 8)  # 4 ranks per domain
        with pytest.raises(ValueError, match="spans channels"):
            MultiChannelFsController(dram, partition, 8)


class TestCrossChannelIsolation:
    def test_victims_on_other_channels_invisible(self):
        """Domains on different channels share nothing; a domain's view
        must be identical whatever happens elsewhere."""
        from repro.analysis.leakage import interference_report
        from repro.workloads.spec import workload

        report = interference_report(
            "fs_rp_mc", workload("mcf"),
            config=full_target_config(accesses_per_core=150),
        )
        assert report.identical
