"""Unit tests for the per-bank DRAM state machine."""

import pytest

from repro.dram.bank import Bank, TimingViolation
from repro.dram.commands import Command, CommandType
from repro.dram.timing import DDR3_1600_X4

P = DDR3_1600_X4


def act(cycle, bank=0, row=5, rank=0):
    return Command(CommandType.ACTIVATE, cycle, 0, rank, bank, row)


def col(cycle, type_=CommandType.COL_READ, bank=0, row=5, rank=0):
    return Command(type_, cycle, 0, rank, bank, row)


def pre(cycle, bank=0, rank=0):
    return Command(CommandType.PRECHARGE, cycle, 0, rank, bank)


@pytest.fixture
def bank():
    return Bank(P)


class TestActivate:
    def test_opens_row(self, bank):
        bank.apply(act(0))
        assert bank.is_open and bank.open_row == 5

    def test_trc_between_activates(self, bank):
        bank.apply(act(0))
        bank.apply(pre(P.tRAS))
        assert bank.earliest_activate(0) == P.tRC  # tRAS + tRP = tRC

    def test_early_second_activate_rejected(self, bank):
        bank.apply(act(0))
        bank.apply(pre(P.tRAS))
        with pytest.raises(TimingViolation):
            bank.apply(act(P.tRC - 1, row=6))

    def test_counts_activates(self, bank):
        bank.apply(act(0))
        assert bank.stat_activates == 1


class TestColumn:
    def test_column_waits_for_trcd(self, bank):
        bank.apply(act(0))
        assert bank.earliest_column(0, True) == P.tRCD

    def test_column_to_closed_bank_raises(self, bank):
        with pytest.raises(RuntimeError):
            bank.earliest_column(0, True)

    def test_early_column_rejected(self, bank):
        bank.apply(act(0))
        with pytest.raises(TimingViolation):
            bank.apply(col(P.tRCD - 1))

    def test_row_hit_detection(self, bank):
        bank.apply(act(0, row=7))
        assert bank.is_row_hit(7)
        assert not bank.is_row_hit(8)


class TestAutoPrecharge:
    def test_read_ap_closes_row(self, bank):
        bank.apply(act(0))
        bank.apply(col(P.tRCD, CommandType.COL_READ_AP))
        assert not bank.is_open

    def test_read_ap_waits_for_tras(self, bank):
        bank.apply(act(0))
        bank.apply(col(P.tRCD, CommandType.COL_READ_AP))
        # Auto precharge cannot engage before tRAS; next activate waits
        # a full tRC after the original activate.
        assert bank.earliest_activate(0) >= P.tRC

    def test_write_ap_recovery(self, bank):
        bank.apply(act(0))
        bank.apply(col(P.tRCD, CommandType.COL_WRITE_AP))
        # Precharge engages after write recovery: col + tCWD + tBURST +
        # tWR, then tRP before the next activate.
        expected = P.tRCD + P.tCWD + P.tBURST + P.tWR + P.tRP
        assert bank.earliest_activate(0) == max(expected, P.tRC)


class TestPrecharge:
    def test_precharge_waits_for_tras(self, bank):
        bank.apply(act(0))
        assert bank.earliest_precharge(0) == P.tRAS

    def test_early_precharge_rejected(self, bank):
        bank.apply(act(0))
        with pytest.raises(TimingViolation):
            bank.apply(pre(P.tRAS - 1))

    def test_read_pushes_precharge(self, bank):
        bank.apply(act(0))
        bank.apply(col(P.tRCD))
        assert bank.earliest_precharge(0) >= P.tRCD + P.tRTP


class TestRefresh:
    def test_refresh_blocks_bank_for_trfc(self, bank):
        ref = Command(CommandType.REFRESH, 100, 0, 0)
        bank.apply(ref)
        assert bank.earliest_activate(0) == 100 + P.tRFC
