"""Security tests: non-interference and covert-channel elimination.

These are the operational form of the paper's central claim (Section 3:
"zero information leakage"): a domain's observable timing under any FS
scheme must be bit-for-bit identical no matter what the co-scheduled
domains do, while the non-secure baseline visibly leaks.
"""

import pytest

from repro.analysis.covert import run_covert_channel
from repro.analysis.leakage import (
    figure4_profiles,
    interference_report,
    victim_view,
)
from repro.sim.config import SystemConfig
from repro.workloads.spec import workload
from repro.workloads.synthetic import WorkloadSpec, idle_spec, intense_spec

CFG = SystemConfig(accesses_per_core=400)
FS_SCHEMES = ("fs_rp", "fs_bp", "fs_np", "fs_np_ta", "fs_reordered_bp")


class TestNonInterference:
    @pytest.mark.parametrize("scheme", FS_SCHEMES)
    def test_fs_schemes_are_bit_identical(self, scheme):
        report = interference_report(scheme, workload("mcf"), config=CFG)
        assert report.identical, (
            f"{scheme} leaked: profile divergence "
            f"{report.max_profile_divergence_cycles} cycles"
        )

    def test_tp_is_also_non_interfering(self):
        report = interference_report("tp_bp", workload("mcf"), config=CFG)
        assert report.identical

    def test_tp_np_is_also_non_interfering(self):
        report = interference_report("tp_np", workload("mcf"), config=CFG)
        assert report.identical

    def test_channel_partitioning_is_non_interfering(self):
        """Section 4.1: with private channels nothing is shared, so even
        the aggressive FR-FCFS scheduler is exactly isolating."""
        report = interference_report(
            "channel_part", workload("mcf"), config=CFG
        )
        assert report.identical

    def test_baseline_leaks(self):
        report = interference_report(
            "baseline", workload("mcf"), config=CFG
        )
        assert report.leaks
        assert report.max_profile_divergence_cycles > 1000

    def test_fs_rp_identical_across_many_co_runners(self):
        co_runners = [
            idle_spec(),
            intense_spec(),
            workload("lbm"),        # write-heavy
            workload("xalancbmk"),  # light
        ]
        report = interference_report(
            "fs_rp", workload("milc"), co_runners, config=CFG
        )
        assert report.identical

    def test_fs_rp_victim_does_depend_on_itself(self):
        """Sanity: the victim's own workload must still matter."""
        a = victim_view("fs_rp", workload("mcf"), idle_spec(), CFG)
        b = victim_view("fs_rp", workload("milc"), idle_spec(), CFG)
        assert a.profile != b.profile


class TestFigure4:
    @pytest.fixture(scope="class")
    def profiles(self):
        return figure4_profiles(config=CFG)

    def test_baseline_curves_diverge(self, profiles):
        quiet = profiles["baseline/non_intensive"]
        loud = profiles["baseline/intensive"]
        assert quiet.profile != loud.profile
        # The attacker can read co-runner intensity from its own slowdown.
        assert loud.ipc < quiet.ipc

    def test_fs_curves_overlap_perfectly(self, profiles):
        quiet = profiles["fs_rp/non_intensive"]
        loud = profiles["fs_rp/intensive"]
        assert quiet.profile == loud.profile
        assert quiet.read_releases == loud.read_releases

    def test_fs_pays_for_security_with_throughput(self, profiles):
        # FS with quiet co-runners is slower than the baseline with
        # quiet co-runners — that's the Figure 4 gap between the red and
        # black curves.
        assert profiles["fs_rp/non_intensive"].ipc < \
            profiles["baseline/non_intensive"].ipc


class TestPowerSideChannel:
    """Section 5.2: with dummies enabled (no suppression), every thread
    has a constant memory energy/power requirement, so the design also
    resists physical power-measurement attacks."""

    #: Fixed observation horizon: power traces compare per unit time.
    #: Short enough that no run finishes early under either co-runner.
    HORIZON = 20_000

    def _rank_activity(self, co_spec):
        from repro.sim.runner import build_system

        specs = [workload("mcf")] + [co_spec] * 7
        system = build_system("fs_rp", CFG, specs)
        result = system.run(max_cycles=self.HORIZON)
        rank0 = system.controller.dram.channels[0].ranks[0]
        return (
            (rank0.energy.activates, rank0.energy.reads,
             rank0.energy.writes),
            result.cycles,
        )

    def test_victim_rank_activity_independent_of_co_runners(self):
        quiet, c1 = self._rank_activity(idle_spec())
        loud, c2 = self._rank_activity(intense_spec())
        assert c1 == c2 == self.HORIZON
        assert quiet == loud

    def test_activity_rate_is_constant(self):
        """One activate per interval per rank: the power draw carries no
        signal at all (dummy slots burn the same energy as demand)."""
        (activates, _, _), cycles = self._rank_activity(idle_spec())
        intervals = cycles / 56
        assert activates == pytest.approx(intervals, rel=0.05)


class TestCovertChannel:
    BITS = (1, 0, 1, 1, 0, 0, 1, 0, 1, 0)

    def test_baseline_carries_the_channel(self):
        result = run_covert_channel("baseline", self.BITS, config=CFG)
        assert result.bit_error_rate <= 0.1
        assert result.signal_swing > 1.0

    def test_fs_rp_closes_the_channel(self):
        result = run_covert_channel("fs_rp", self.BITS, config=CFG)
        assert result.bit_error_rate >= 0.3
        assert result.signal_swing < 1.0

    def test_fs_reordered_bp_closes_the_channel(self):
        result = run_covert_channel(
            "fs_reordered_bp", self.BITS, config=CFG
        )
        assert result.signal_swing < 2.0

    def test_result_reports_windows(self):
        result = run_covert_channel("baseline", self.BITS, config=CFG)
        assert len(result.window_means) == len(self.BITS)
        assert len(result.decoded_bits) == len(self.BITS)
