"""Tests for the FS pipeline constraint solver — the paper's math.

The exact ``l`` values in Sections 3-4 are mathematical consequences of
Table 1, so these tests require exact equality, not tolerance bands.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline_solver import (
    PeriodicMode,
    PipelineSolver,
    SharingLevel,
    paper_solutions,
    slot_timing,
)
from repro.dram.timing import DDR3_1600_X4, TimingParams

P = DDR3_1600_X4


@pytest.fixture
def solver():
    return PipelineSolver(P)


class TestPaperSolutions:
    """Every published minimal slot gap, reproduced."""

    def test_rank_partition_periodic_data_is_7(self, solver):
        assert solver.solve(PeriodicMode.DATA, SharingLevel.RANK) == 7

    def test_rank_partition_periodic_ras_is_12(self, solver):
        assert solver.solve(PeriodicMode.RAS, SharingLevel.RANK) == 12

    def test_rank_partition_periodic_cas_is_12(self, solver):
        assert solver.solve(PeriodicMode.CAS, SharingLevel.RANK) == 12

    def test_bank_partition_periodic_data_is_21(self, solver):
        assert solver.solve(PeriodicMode.DATA, SharingLevel.BANK) == 21

    def test_bank_partition_periodic_ras_is_15(self, solver):
        assert solver.solve(PeriodicMode.RAS, SharingLevel.BANK) == 15

    def test_no_partition_periodic_ras_is_43(self, solver):
        assert solver.solve(PeriodicMode.RAS, SharingLevel.NONE) == 43

    def test_same_bank_min_gap_is_43(self, solver):
        assert solver.same_bank_min_gap() == 43

    def test_paper_solutions_summary(self):
        sols = paper_solutions(P)
        assert sols["fs_rp"] == 7
        assert sols["fs_bp"] == 15
        assert sols["fs_np"] == 43

    def test_best_picks_data_for_rank(self, solver):
        mode, l = solver.best(SharingLevel.RANK)
        assert mode is PeriodicMode.DATA and l == 7

    def test_best_picks_ras_for_bank(self, solver):
        mode, l = solver.best(SharingLevel.BANK)
        assert mode is PeriodicMode.RAS and l == 15

    def test_best_picks_ras_for_none(self, solver):
        mode, l = solver.best(SharingLevel.NONE)
        assert mode is PeriodicMode.RAS and l == 43


class TestRejectedGaps:
    """The specific conflicts the paper derives for rejected gaps."""

    def test_l6_rank_data_conflicts(self, solver):
        # Equation 1a/1f: offsets differ by 6, so l = 6 collides.
        report = solver.check(6, PeriodicMode.DATA, SharingLevel.RANK)
        assert report is not None
        assert report.rule == "command-bus"

    def test_l5_rank_data_conflicts(self, solver):
        assert solver.check(
            5, PeriodicMode.DATA, SharingLevel.RANK
        ) is not None

    def test_l14_bank_ras_conflicts(self, solver):
        report = solver.check(14, PeriodicMode.RAS, SharingLevel.BANK)
        assert report is not None

    def test_l42_none_ras_conflicts(self, solver):
        report = solver.check(42, PeriodicMode.RAS, SharingLevel.NONE)
        assert report is not None

    def test_larger_gaps_stay_legal(self, solver):
        # Any multiple of a legal gap structure: spot-check a range.
        for l in (43, 44, 50, 60, 100):
            assert solver.check(
                l, PeriodicMode.RAS, SharingLevel.NONE
            ) is None


class TestSlotTiming:
    def test_periodic_data_read_offsets(self):
        t = slot_timing(P, PeriodicMode.DATA, is_read=True)
        assert (t.act, t.col, t.data) == (-22, -11, 0)

    def test_periodic_data_write_offsets(self):
        t = slot_timing(P, PeriodicMode.DATA, is_read=False)
        assert (t.act, t.col, t.data) == (-16, -5, 0)

    def test_periodic_ras_read_offsets(self):
        t = slot_timing(P, PeriodicMode.RAS, is_read=True)
        assert (t.act, t.col, t.data) == (0, 11, 22)

    def test_periodic_cas_write_offsets(self):
        t = slot_timing(P, PeriodicMode.CAS, is_read=False)
        assert (t.act, t.col, t.data) == (-11, 0, 5)


class TestSolverProperties:
    def test_check_validates_input(self, solver):
        with pytest.raises(ValueError):
            solver.check(0, PeriodicMode.DATA, SharingLevel.RANK)

    def test_unsolvable_raises(self, solver):
        with pytest.raises(RuntimeError):
            solver.solve(PeriodicMode.RAS, SharingLevel.NONE, max_l=10)

    def test_sharing_levels_monotone(self, solver):
        """More sharing can never allow a smaller gap."""
        for mode in PeriodicMode:
            rank = solver.solve(mode, SharingLevel.RANK)
            bank = solver.solve(mode, SharingLevel.BANK)
            none = solver.solve(mode, SharingLevel.NONE)
            assert rank <= bank <= none

    def test_solve_all_covers_grid(self, solver):
        grid = solver.solve_all()
        assert len(grid) == 9


@st.composite
def timing_params(draw):
    """Random-but-consistent DDR3-like parameter sets."""
    tRCD = draw(st.integers(5, 15))
    tCAS = draw(st.integers(5, 15))
    tCWD = draw(st.integers(3, min(tCAS, 10)))
    tBURST = draw(st.integers(2, 6))
    tRAS = draw(st.integers(15, 35))
    tRP = draw(st.integers(5, 15))
    tRRD = draw(st.integers(3, 8))
    tFAW = draw(st.integers(4 * 4, 40))
    return TimingParams(
        tRCD=tRCD, tCAS=tCAS, tCWD=tCWD, tBURST=tBURST, tRAS=tRAS,
        tRP=tRP, tRC=tRAS + tRP, tRRD=tRRD, tFAW=tFAW,
        tWR=draw(st.integers(6, 16)), tWTR=draw(st.integers(3, 10)),
        tRTP=draw(st.integers(3, 10)), tCCD=max(2, tBURST),
        tRTRS=draw(st.integers(1, 4)),
    )


class TestSolverPropertyBased:
    @given(timing_params(),
           st.sampled_from(list(PeriodicMode)),
           st.sampled_from(list(SharingLevel)))
    @settings(max_examples=30, deadline=None)
    def test_solution_is_minimal_and_legal(self, params, mode, sharing):
        solver = PipelineSolver(params)
        l = solver.solve(mode, sharing, max_l=1024)
        assert solver.check(l, mode, sharing) is None
        if l > params.tBURST:
            assert solver.check(l - 1, mode, sharing) is not None

    @given(timing_params())
    @settings(max_examples=20, deadline=None)
    def test_rank_data_at_least_burst_plus_trtrs(self, params):
        solver = PipelineSolver(params)
        l = solver.solve(PeriodicMode.DATA, SharingLevel.RANK, max_l=1024)
        assert l >= params.tBURST + params.tRTRS


class TestTemplateCacheProperties:
    """The fast path's schedule-template cache vs the solver's math.

    :func:`repro.sim.fastpath.cached_fs_schedule` runs the pipeline
    solver once per ``(timing, domains, sharing, ...)`` key and serves a
    memoized :class:`~repro.sim.fastpath.TemplatedSchedule` afterwards.
    Whatever random-but-consistent timing the solver is handed, the
    cached timetable must be *the same timetable* the reference build
    produces — same solved gap, same slots, same command cycles — or
    the two engines would silently drift apart.
    """

    @given(timing_params(),
           st.sampled_from([SharingLevel.RANK, SharingLevel.BANK]),
           st.integers(2, 8))
    @settings(max_examples=15, deadline=None)
    def test_cached_schedule_matches_fresh_build(
        self, params, sharing, domains
    ):
        from repro.core.schedule import build_fs_schedule
        from repro.sim import fastpath

        fastpath.clear_caches()
        try:
            fresh = build_fs_schedule(params, domains, sharing)
        except RuntimeError:
            return  # no feasible gap under the default bound: skip
        cached = fastpath.cached_fs_schedule(params, domains, sharing)
        # One solver run per key: the second lookup is the same object.
        assert fastpath.cached_fs_schedule(
            params, domains, sharing
        ) is cached
        assert cached.slot_gap == fresh.slot_gap
        assert cached.mode is fresh.mode
        assert cached.interval_length == fresh.interval_length
        assert cached.slots == fresh.slots
        assert cached.lead == fresh.lead
        solver = PipelineSolver(params)
        assert solver.check(
            cached.slot_gap, cached.mode, sharing
        ) is None
        for anchor in (0, 1, cached.interval_length, 12345):
            for is_read in (True, False):
                assert cached.command_times(anchor, is_read) == \
                    fresh.command_times(anchor, is_read)
