"""Tests for FS with reordered bank partitioning (Section 4.2)."""

import random

import pytest

from repro.core.fs_reordered import ReorderedBpController
from repro.dram.checker import TimingChecker
from repro.dram.commands import CommandType, OpType, Request
from repro.dram.system import DramSystem
from repro.dram.timing import DDR3_1600_X4
from repro.mapping.address import Geometry
from repro.mapping.partition import BankPartition

P = DDR3_1600_X4
G = Geometry()


def make_controller(num_domains=8):
    dram = DramSystem(P)
    partition = BankPartition(G, num_domains)
    ctrl = ReorderedBpController(
        dram, partition, num_domains, log_commands=True
    )
    return ctrl, partition


def drive(ctrl, requests):
    requests = sorted(requests, key=lambda r: r.arrival)
    released, clock, idx = [], 0, 0
    while idx < len(requests) or ctrl.busy():
        nxt = ctrl.next_event()
        arr = requests[idx].arrival if idx < len(requests) else None
        cands = [c for c in (nxt, arr) if c is not None]
        if not cands:
            break
        clock = max(clock + 1, min(cands))
        while idx < len(requests) and requests[idx].arrival <= clock:
            ctrl.enqueue(requests[idx])
            idx += 1
        released += ctrl.advance(clock)
    return released, clock


def random_requests(partition, n, num_domains=8, seed=3, spacing=10):
    rng = random.Random(seed)
    out, t = [], 0
    for _ in range(n):
        d = rng.randrange(num_domains)
        line = rng.randrange(100_000)
        op = OpType.READ if rng.random() < 0.6 else OpType.WRITE
        out.append(Request(
            op=op, address=partition.decode(d, line), domain=d,
            arrival=t, line=line,
        ))
        t += rng.randrange(0, spacing)
    return out


class TestCorrectness:
    def test_all_reads_released(self):
        ctrl, part = make_controller()
        reqs = random_requests(part, 250)
        released, _ = drive(ctrl, reqs)
        assert len(released) == sum(1 for r in reqs if r.is_read)

    def test_commands_pass_jedec_checker(self):
        ctrl, part = make_controller()
        reqs = random_requests(part, 300, spacing=5)
        drive(ctrl, reqs)
        assert TimingChecker(P).check(ctrl.command_log) == []

    def test_interval_length_is_63(self):
        ctrl, _ = make_controller()
        assert ctrl.geometry.interval_length == 63

    def test_domain_count_mismatch_rejected(self):
        dram = DramSystem(P)
        part = BankPartition(G, 8)
        from repro.core.schedule import build_reordered_bp_geometry
        geo = build_reordered_bp_geometry(P, 4)
        with pytest.raises(ValueError):
            ReorderedBpController(dram, part, 8, geometry=geo)


class TestReordering:
    def test_reads_precede_writes_within_interval(self):
        ctrl, part = make_controller()
        reqs = random_requests(part, 200, spacing=4)
        drive(ctrl, reqs)
        q = ctrl.geometry.interval_length
        by_interval = {}
        for cmd in ctrl.command_log:
            if not cmd.type.is_column:
                continue
            data = cmd.cycle + (P.tCAS if cmd.type.is_read else P.tCWD)
            interval = (data - ctrl._lead) // q
            by_interval.setdefault(interval, []).append(
                (data, cmd.type.is_read)
            )
        for entries in by_interval.values():
            entries.sort()
            kinds = [is_read for _, is_read in entries]
            # Once a write appears, no read may follow in this interval.
            if False in kinds:
                first_write = kinds.index(False)
                assert all(not k for k in kinds[first_write:])

    def test_data_slots_on_six_cycle_pitch(self):
        ctrl, part = make_controller()
        reqs = random_requests(part, 200, spacing=4)
        drive(ctrl, reqs)
        q = ctrl.geometry.interval_length
        for cmd in ctrl.command_log:
            if not cmd.type.is_column:
                continue
            data = cmd.cycle + (P.tCAS if cmd.type.is_read else P.tCWD)
            offset = (data - ctrl._lead) % q
            assert offset % ctrl.geometry.data_gap == 0
            assert offset <= ctrl.geometry.data_gap * 7


class TestEnMasseRelease:
    def test_reads_release_at_interval_end(self):
        ctrl, part = make_controller()
        reqs = random_requests(part, 150, spacing=8)
        released, _ = drive(ctrl, reqs)
        q = ctrl.geometry.interval_length
        last_slot_offset = (
            (ctrl.geometry.num_domains - 1) * ctrl.geometry.data_gap
            + P.tBURST
        )
        for r in released:
            offset = (r.release - ctrl._lead) % q
            assert offset == last_slot_offset % q

    def test_same_interval_reads_release_together(self):
        ctrl, part = make_controller()
        # Two domains inject simultaneously; both reads must release at
        # the same cycle even though their data slots differ.
        reqs = [
            Request(op=OpType.READ, address=part.decode(0, 11), domain=0,
                    arrival=0, line=11),
            Request(op=OpType.READ, address=part.decode(1, 22), domain=1,
                    arrival=0, line=22),
        ]
        released, _ = drive(ctrl, reqs)
        assert len(released) == 2
        assert released[0].release == released[1].release
