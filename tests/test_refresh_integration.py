"""Integration tests for refresh-enabled controllers."""

import pytest

from repro.analysis.leakage import interference_report
from repro.dram.checker import TimingChecker
from repro.dram.commands import CommandType
from repro.dram.timing import DDR3_1600_X4
from repro.sim.config import SystemConfig
from repro.sim.runner import SchemeOptions, build_system
from repro.workloads.spec import suite_specs, workload

P = DDR3_1600_X4
CFG = SystemConfig(accesses_per_core=350)


def run_with_refresh(scheme, workload_name="milc"):
    system = build_system(
        scheme, CFG, suite_specs(workload_name, 8),
        SchemeOptions(refresh=True, log_commands=True),
    )
    result = system.run(max_cycles=8_000_000)
    return system.controller, result


class TestBaselineRefresh:
    def test_refresh_rate(self):
        ctrl, result = run_with_refresh("baseline")
        expected = result.cycles / P.tREFI * 8  # eight ranks
        assert ctrl.stat_refreshes == pytest.approx(expected, abs=9)

    def test_stream_stays_legal(self):
        ctrl, _ = run_with_refresh("baseline")
        assert TimingChecker(P).check(ctrl.command_log) == []

    def test_ref_commands_present(self):
        ctrl, _ = run_with_refresh("baseline")
        refs = [c for c in ctrl.command_log
                if c.type is CommandType.REFRESH]
        assert len(refs) == ctrl.stat_refreshes
        assert len({c.rank for c in refs}) == 8  # every rank refreshed

    def test_refresh_costs_some_performance(self):
        _, with_ref = run_with_refresh("baseline")
        system = build_system("baseline", CFG, suite_specs("milc", 8))
        without = system.run(max_cycles=8_000_000)
        assert with_ref.cycles >= without.cycles


class TestFsRefresh:
    def test_refresh_rate(self):
        ctrl, result = run_with_refresh("fs_rp")
        expected = result.cycles / P.tREFI * 8
        assert ctrl.stat_refreshes == pytest.approx(expected, abs=9)

    def test_stream_stays_legal(self):
        """The deterministic blackout + free-residue REF placement must
        satisfy every JEDEC rule, including tRFC."""
        ctrl, _ = run_with_refresh("fs_rp")
        assert TimingChecker(P).check(ctrl.command_log) == []

    def test_non_interference_preserved(self):
        report = interference_report(
            "fs_rp", workload("mcf"), config=CFG,
            options=SchemeOptions(refresh=True),
        )
        assert report.identical

    def test_blackouts_create_bubbles(self):
        ctrl, _ = run_with_refresh("fs_rp")
        assert ctrl.stats.bubbles > 0

    def test_refresh_energy_accounted(self):
        _, result = run_with_refresh("fs_rp")
        assert result.energy.refresh_pj > 0

    def test_unsupported_sharing_rejected(self):
        from repro.core.fs_controller import FixedServiceController
        from repro.core.pipeline_solver import SharingLevel
        from repro.core.schedule import build_fs_schedule
        from repro.dram.refresh import RefreshScheduler
        from repro.dram.system import DramSystem
        from repro.mapping.address import Geometry
        from repro.mapping.partition import BankPartition

        dram = DramSystem(P)
        with pytest.raises(ValueError, match="rank"):
            FixedServiceController(
                dram,
                build_fs_schedule(P, 8, SharingLevel.BANK),
                BankPartition(Geometry(), 8),
                refresh=RefreshScheduler(P, 8),
            )
