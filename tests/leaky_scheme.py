"""A deliberately-leaky Fixed Service controller: the planted bug the
certification harness must catch.

``LeakyFsController`` subclasses the real FS controller and breaks its
core guarantee in one place: when a *foreign* domain has requests
queued, domain 0's read releases are delayed by up to four extra cycles
(proportional to the foreign backlog).  The scheme still *claims* to be
a secure Fixed Service design (``fixed_service=True``, ``secure`` left
at the default) — its timetable, partitioning, and every other code
path are genuine — so nothing short of an adversarial two-world
experiment distinguishes it from ``fs_rp``.  ``repro certify`` must
flag it on both engines; a harness that certifies this scheme is
broken.

``LEAKY_SPEC`` rides the normal declarative registry, so the scheme
works everywhere a built-in does: the CLI, sweeps, and — because specs
pickle into spawn workers — parallel certification batches.  Tests
register it *scoped* (register in a fixture, unregister on teardown,
same pattern as ``tests/crashing_scheme.py``) so importing this module
never mutates the global registry under unrelated tests.
"""

from repro.core.fs_controller import FixedServiceController
from repro.schemes import SchemeSpec

#: Max extra cycles the foreign backlog can add to a domain-0 release.
LEAK_DELAY_CAP = 4


class LeakyFsController(FixedServiceController):
    """Fixed Service, except domain 0 observes foreign queue depth."""

    def _schedule_release(self, request, cycle):
        if request.domain == 0:
            foreign = sum(
                len(queue) for domain, queue in self._queues.items()
                if domain != 0
            )
            if foreign:
                cycle += min(foreign, LEAK_DELAY_CAP)
        super()._schedule_release(request, cycle)


LEAKY_SPEC = SchemeSpec(
    name="leaky_fs",
    description="fs_rp with a planted cross-domain timing leak "
                "(test fixture)",
    family="fs",
    partitioning="rank",
    sharing="rank",
    fixed_service=True,
    controller="tests.leaky_scheme.LeakyFsController",
)
