"""Golden-trace fixtures: the simulator's output, pinned bit-for-bit.

Each fixture under ``tests/golden/`` records every observable of one
small simulation — run length, statistics, per-domain service trace,
per-core results, energy, and a digest of the full command trace.  The
tests re-run the simulation and demand byte-identical output, which
locks in three properties at once:

* **Process determinism** — nothing in the pipeline depends on
  ``PYTHONHASHSEED`` (trace synthesis derives per-workload offsets from
  a CRC, not ``hash()``), dict iteration order, or wall-clock state.
* **Seed stability** — a config's behaviour is a pure function of its
  explicit ``(spec, accesses, seed)`` inputs.
* **Historical stability** — a refactor that changes any scheduling
  decision shows up as a loud diff here even if it is self-consistent
  across engines.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py \
        --regen-golden

and commit the updated JSON alongside the change that explains it.
The runs use the fast engine (the differential suite pins fast ==
reference separately, so one engine's golden data covers both).
"""

import dataclasses
import hashlib
import json
import os

import pytest

from repro.sim.config import SystemConfig
from repro.sim.runner import SchemeOptions, build_system
from repro.workloads.spec import suite_specs

from .engine_equivalence import MAX_CYCLES

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: (name, scheme, workload, cores, accesses, seed)
CASES = [
    ("fs_rp_mix1", "fs_rp", "mix1", 8, 120, 0),
    ("fs_reordered_bp_mcf", "fs_reordered_bp", "mcf", 8, 100, 0),
    ("fs_np_ta_mix1", "fs_np_ta", "mix1", 8, 100, 0),
    ("tp_bp_milc", "tp_bp", "milc", 8, 100, 0),
    ("baseline_libquantum_4core", "baseline", "libquantum", 4, 100, 3),
]


def _snapshot(scheme, workload, cores, accesses, seed):
    """One run's complete observable record, JSON-serializable."""
    config = SystemConfig(accesses_per_core=accesses, seed=seed)
    if cores != config.num_cores:
        config = config.with_cores(cores)
    system = build_system(
        scheme, config, suite_specs(workload, cores),
        SchemeOptions(log_commands=True), engine="fast",
    )
    result = system.run(max_cycles=MAX_CYCLES)
    controller = system.controller
    commands = [
        (c.type.value, c.cycle, c.channel, c.rank, c.bank, c.row,
         c.domain)
        for c in controller.command_log
    ]
    digest = hashlib.sha256(
        "\n".join(",".join(map(str, c)) for c in commands)
        .encode("ascii")
    ).hexdigest()
    return {
        "scheme": scheme,
        "workload": workload,
        "cores": cores,
        "accesses": accesses,
        "seed": seed,
        "cycles": result.cycles,
        "stats": dataclasses.asdict(result.stats),
        "service_trace": {
            str(domain): events
            for domain, events in sorted(result.service_trace.items())
        },
        "cores_result": [
            {
                "domain": c.domain,
                "workload": c.workload,
                "instructions": c.instructions,
                "reads_completed": c.reads_completed,
                "ipc": c.ipc,
                "done": c.done,
            }
            for c in result.cores
        ],
        "bus_utilization": result.bus_utilization,
        "energy": dataclasses.asdict(result.energy),
        "command_count": len(commands),
        "command_trace_sha256": digest,
        # A human-readable prefix so fixture diffs localize the drift.
        "command_trace_head": commands[:32],
    }


def _canonical(snapshot) -> str:
    return json.dumps(snapshot, indent=1, sort_keys=True)


@pytest.mark.parametrize(
    "name,scheme,workload,cores,accesses,seed", CASES,
    ids=[case[0] for case in CASES],
)
def test_golden_trace(name, scheme, workload, cores, accesses, seed,
                      regen_golden):
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    snapshot = _canonical(
        _snapshot(scheme, workload, cores, accesses, seed)
    )
    if regen_golden:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as handle:
            handle.write(snapshot + "\n")
        return
    assert os.path.exists(path), (
        f"missing golden fixture {path}; generate it with "
        f"pytest tests/test_golden_traces.py --regen-golden"
    )
    with open(path) as handle:
        golden = handle.read().rstrip("\n")
    assert snapshot == golden, (
        f"{name}: simulator output drifted from the golden fixture; "
        f"if the change is intentional, regenerate with --regen-golden "
        f"and commit the diff"
    )
