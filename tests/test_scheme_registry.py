"""The declarative scheme registry (repro.schemes).

Covers the tentpole contract of the registry refactor:

* spec round-trips: pickling (the multiprocess sweep transport),
  alias re-registration with differential observables, decorator use;
* duplicate-registration conflicts raise SchemeError;
* the Table 2 partition classification is *derived* from specs (the
  old hand-maintained tuples in sim/config.py are regression-locked);
* a user-registered toy scheme works end to end: ``run_scheme``, the
  ``repro sweep`` CLI, and the ``repro stats`` CLI.
"""

import pickle

import pytest

from repro.cli import main
from repro.errors import ConfigError, ReproError, SchemeError
from repro.schemes import (
    BUILTIN_SPECS,
    REGISTRY,
    SchemeRegistry,
    SchemeSpec,
    build_partition,
    builder_for,
    register_builder,
    register_scheme,
    spec_fields,
)
from repro.sim.config import (
    BANK_PARTITIONED_SCHEMES,
    RANK_PARTITIONED_SCHEMES,
    SystemConfig,
)
from repro.sim.runner import SCHEMES, run_scheme
from repro.workloads.spec import suite_specs

CFG = SystemConfig(num_cores=4, accesses_per_core=80).with_cores(4)

#: Registration order of the built-ins == the legacy SCHEMES tuple.
LEGACY_ORDER = (
    "baseline", "fcfs", "channel_part", "tp_bp", "tp_np",
    "fs_rp", "fs_rp_mc", "fs_bp", "fs_reordered_bp", "fs_np",
    "fs_np_ta",
)


@pytest.fixture
def scratch():
    """Names to unregister from the global registry after the test."""
    names = []
    yield names
    for name in names:
        if name in REGISTRY:
            REGISTRY.unregister(name)


class TestRegistryBasics:
    def test_builtin_names_in_legacy_order(self):
        assert REGISTRY.names()[: len(LEGACY_ORDER)] == LEGACY_ORDER

    def test_schemes_view_tracks_registry(self, scratch):
        assert tuple(SCHEMES) == REGISTRY.names()
        assert "fs_rp" in SCHEMES
        assert SCHEMES == REGISTRY.names()  # view == tuple
        spec = REGISTRY.get("fcfs").replace(name="fcfs_live_view")
        REGISTRY.register(spec)
        scratch.append("fcfs_live_view")
        assert "fcfs_live_view" in SCHEMES
        assert len(SCHEMES) == len(REGISTRY)

    def test_get_unknown_raises_scheme_error_with_names(self):
        with pytest.raises(SchemeError) as exc:
            REGISTRY.get("nope")
        assert "unknown scheme 'nope'" in str(exc.value)
        assert "fs_rp" in str(exc.value)
        assert exc.value.known == REGISTRY.names()

    def test_scheme_error_is_config_and_value_error(self):
        # Legacy call sites catch ValueError / ConfigError / ReproError;
        # all three must keep working.
        assert issubclass(SchemeError, ConfigError)
        assert issubclass(SchemeError, ReproError)
        assert issubclass(SchemeError, ValueError)

    def test_find_is_lenient(self):
        assert REGISTRY.find("nope") is None
        assert REGISTRY.find("fs_rp") is REGISTRY.get("fs_rp")

    def test_names_where(self):
        assert REGISTRY.names_where(
            family="fs", partitioning="rank"
        ) == ("fs_rp",)
        assert set(REGISTRY.names_where(fixed_service=True)) == {
            "fs_rp", "fs_rp_mc", "fs_bp", "fs_reordered_bp",
            "fs_np", "fs_np_ta",
        }


class TestRegistration:
    def test_identical_reregistration_is_idempotent(self):
        spec = REGISTRY.get("fs_rp")
        assert REGISTRY.register(spec) is spec
        assert REGISTRY.names().count("fs_rp") == 1

    def test_conflicting_reregistration_raises(self):
        spec = REGISTRY.get("fs_rp").replace(expected_l=99)
        with pytest.raises(SchemeError, match="already registered"):
            REGISTRY.register(spec)
        assert REGISTRY.get("fs_rp").expected_l == 7  # untouched

    def test_replace_and_restore(self):
        original = REGISTRY.get("fs_rp")
        tweaked = original.replace(description="tweaked")
        try:
            assert REGISTRY.register(tweaked, replace=True) is tweaked
            assert REGISTRY.get("fs_rp").description == "tweaked"
        finally:
            REGISTRY.register(original, replace=True)

    def test_ensure_replaces_on_conflict(self):
        registry = SchemeRegistry()
        a = SchemeSpec(name="x", family="fcfs", controller="m.A")
        b = SchemeSpec(name="x", family="fcfs", controller="m.B")
        registry.register(a)
        assert registry.ensure(b) == b  # parent grid is authoritative
        assert registry.get("x").controller == "m.B"

    def test_unregister_unknown_raises(self):
        with pytest.raises(SchemeError, match="cannot unregister"):
            REGISTRY.unregister("nope")

    def test_decorator_derives_controller_path(self, scratch):
        decorate = register_scheme(
            "toy_decorated", family="fcfs", secure=False
        )
        assert decorate(DecoratedToyController) is DecoratedToyController
        scratch.append("toy_decorated")
        spec = REGISTRY.get("toy_decorated")
        assert spec.controller == (
            "tests.test_scheme_registry.DecoratedToyController"
        )
        assert spec.controller_class() is DecoratedToyController


class TestSpecValidation:
    def test_bad_partitioning(self):
        with pytest.raises(SchemeError, match="unknown partitioning"):
            SchemeSpec(name="x", controller="m.C", partitioning="blob")

    def test_bad_sharing(self):
        with pytest.raises(SchemeError, match="unknown sharing"):
            SchemeSpec(name="x", controller="m.C", sharing="blob")

    def test_controller_required(self):
        with pytest.raises(SchemeError, match="controller import path"):
            SchemeSpec(name="x")

    def test_positive_solver_fields(self):
        with pytest.raises(SchemeError, match="expected_l"):
            SchemeSpec(name="x", controller="m.C", expected_l=0)

    def test_resolve_errors_are_scheme_errors(self):
        spec = SchemeSpec(name="x", controller="no.such.module.Cls")
        with pytest.raises(SchemeError, match="cannot import"):
            spec.controller_class()
        spec = SchemeSpec(
            name="x", controller="repro.controllers.fcfs.Missing"
        )
        with pytest.raises(SchemeError, match="no attribute"):
            spec.controller_class()

    def test_unknown_family_has_no_builder(self):
        with pytest.raises(SchemeError, match="no builder registered"):
            builder_for("martian")

    def test_duplicate_builder_family_raises(self):
        with pytest.raises(SchemeError, match="already registered"):
            register_builder("fcfs")(lambda *a: None)

    def test_schema_is_stable(self):
        # Docs (INTERNALS §10) and the sweep worker transport both rely
        # on these field names.
        assert spec_fields() == (
            "name", "description", "family", "partitioning",
            "controller", "fast_controller", "sharing", "expected_l",
            "expected_q", "multi_channel", "reorder_window",
            "supports_refresh", "supports_prefetch", "secure",
            "fixed_service", "certifiable",
        )


class TestPickleTransport:
    @pytest.mark.parametrize(
        "spec", BUILTIN_SPECS, ids=lambda s: s.name
    )
    def test_every_builtin_spec_pickles(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)
        # The clone still resolves its controller classes.
        assert clone.controller_class() is spec.controller_class()
        assert clone.controller_class("fast") is \
            spec.controller_class("fast")


class TestTable2Classification:
    """Partition sets are *derived* from specs (satellite: the literal
    tuples in sim/config.py are gone)."""

    def test_rank_partitioned(self):
        assert tuple(RANK_PARTITIONED_SCHEMES) == ("fs_rp", "fs_rp_mc")

    def test_bank_partitioned(self):
        assert set(BANK_PARTITIONED_SCHEMES) == {
            "tp_bp", "fs_bp", "fs_reordered_bp"
        }

    def test_views_are_live(self, scratch):
        spec = REGISTRY.get("fs_rp").replace(name="fs_rp_clone")
        REGISTRY.register(spec)
        scratch.append("fs_rp_clone")
        assert "fs_rp_clone" in RANK_PARTITIONED_SCHEMES

    def test_table2_solutions(self):
        expectations = {
            "fs_rp": (7, 56),
            "fs_bp": (15, 120),
            "fs_np": (43, 344),
            "fs_np_ta": (15, 360),
        }
        for name, (l, q) in expectations.items():
            spec = REGISTRY.get(name)
            assert spec.expected_l == l, name
            assert spec.expected_q == q, name
        assert REGISTRY.get("fs_reordered_bp").expected_q == 63
        assert REGISTRY.get("fs_reordered_bp").reorder_window == 63

    def test_validate_for_scheme_uses_registry(self, scratch):
        tight = SystemConfig(num_cores=4)  # 1 channel x 8 ranks
        tight.validate_for_scheme("fs_rp")  # 4 domains fit 8 ranks
        spec = REGISTRY.get("fs_rp").replace(name="fs_rp_wide")
        REGISTRY.register(spec)
        scratch.append("fs_rp_wide")
        crowded = SystemConfig(num_cores=16)
        with pytest.raises(ConfigError, match="rank-partitions"):
            crowded.validate_for_scheme("fs_rp_wide")
        # Unregistered names validate leniently (historical behaviour).
        crowded.validate_for_scheme("some_adhoc_name")


class TestAliasRoundTrip:
    """Registry round-trip with differential observables: a re-registered
    copy of a built-in spec must behave bit-identically."""

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_alias_is_observationally_identical(self, scratch, engine):
        alias = REGISTRY.get("fs_rp").replace(name="fs_rp_alias")
        REGISTRY.register(alias)
        scratch.append("fs_rp_alias")
        specs = suite_specs("mcf", CFG.num_cores)
        a = run_scheme("fs_rp", CFG, specs, engine=engine)
        b = run_scheme("fs_rp_alias", CFG, specs, engine=engine)
        assert a.cycles == b.cycles
        assert a.service_trace == b.service_trace
        assert [c.ipc for c in a.cores] == [c.ipc for c in b.cores]


from repro.controllers.fcfs import FcfsController  # noqa: E402


class DecoratedToyController(FcfsController):
    """Module-level so its dotted path resolves from a spawn worker."""


TOY_SPEC = SchemeSpec(
    name="toy_user_scheme",
    description="user-registered strict FCFS clone",
    family="fcfs",
    partitioning="none",
    controller="repro.controllers.fcfs.FcfsController",
    secure=False,
)


class TestUserSchemeEndToEnd:
    @pytest.fixture(autouse=True)
    def _toy(self, scratch):
        REGISTRY.register(TOY_SPEC)
        scratch.append("toy_user_scheme")

    def test_run_scheme(self):
        specs = suite_specs("mcf", CFG.num_cores)
        mine = run_scheme("toy_user_scheme", CFG, specs)
        real = run_scheme("fcfs", CFG, specs)
        assert mine.cycles == real.cycles  # same controller, same run

    def test_cli_sweep(self, capsys):
        code = main([
            "sweep", "--schemes", "toy_user_scheme", "fcfs",
            "--workloads", "mcf", "--accesses", "60", "--cores", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "toy_user_scheme" in out

    def test_cli_stats(self, capsys):
        code = main([
            "stats", "toy_user_scheme", "mcf",
            "--accesses", "60", "--cores", "4",
        ])
        out = capsys.readouterr().out
        # Non-FS scheme: varied cadence must NOT fail the gate (the
        # verdict is driven by spec.fixed_service, not name sniffing).
        assert code == 0
        assert "toy_user_scheme" in out

    def test_cli_unknown_scheme_sweep_fails_cleanly(self, capsys):
        code = main([
            "sweep", "--schemes", "definitely_not_a_scheme",
            "--workloads", "mcf", "--accesses", "60", "--cores", "4",
        ])
        captured = capsys.readouterr()
        assert code == 1  # failed cell, not a traceback
        assert "SchemeError" in captured.out
        assert "definitely_not_a_scheme" in captured.out
