"""Tests for concrete FS slot schedules (Figures 1 and 2)."""

import pytest

from repro.core.pipeline_solver import PeriodicMode, SharingLevel
from repro.core.schedule import (
    FixedServiceSchedule,
    SlotSpec,
    build_fs_schedule,
    build_reordered_bp_geometry,
    build_triple_alternation_schedule,
    schedule_commands,
    validate_schedule,
)
from repro.dram.checker import TimingChecker
from repro.dram.timing import DDR3_1600_X4

P = DDR3_1600_X4


class TestFigure1RankSchedule:
    """The 8-thread rank-partitioned pipeline of Figure 1."""

    @pytest.fixture
    def sched(self):
        return build_fs_schedule(P, 8, SharingLevel.RANK)

    def test_slot_gap_is_7(self, sched):
        assert sched.slot_gap == 7

    def test_interval_is_56(self, sched):
        assert sched.interval_length == 56

    def test_peak_utilization_57_percent(self, sched):
        assert sched.peak_utilization() == pytest.approx(4 / 7)

    def test_mode_is_periodic_data(self, sched):
        assert sched.mode is PeriodicMode.DATA

    def test_one_slot_per_domain(self, sched):
        for d in range(8):
            assert len(sched.slots_of_domain(d)) == 1

    def test_validates_clean(self, sched):
        assert validate_schedule(sched) == []

    def test_command_times_read(self, sched):
        t = sched.command_times(100, is_read=True)
        assert (t.act, t.col, t.data) == (78, 89, 100)

    def test_command_times_write(self, sched):
        t = sched.command_times(100, is_read=False)
        assert (t.act, t.col, t.data) == (84, 95, 100)

    def test_lead_keeps_commands_nonnegative(self, sched):
        first_anchor = sched.anchor(0, sched.slots[0])
        assert sched.command_times(first_anchor, True).first >= 0

    def test_anchor_arithmetic(self, sched):
        s0 = sched.slots[0]
        assert (
            sched.anchor(5, s0) - sched.anchor(4, s0)
            == sched.interval_length
        )


class TestBankAndNoPartitionSchedules:
    def test_bank_partition_q_is_120(self):
        sched = build_fs_schedule(P, 8, SharingLevel.BANK)
        assert sched.slot_gap == 15
        assert sched.interval_length == 120
        assert sched.peak_utilization() == pytest.approx(0.267, abs=1e-3)
        assert validate_schedule(sched) == []

    def test_no_partition_q_is_344(self):
        sched = build_fs_schedule(P, 8, SharingLevel.NONE)
        assert sched.slot_gap == 43
        assert sched.interval_length == 344
        assert sched.peak_utilization() == pytest.approx(0.093, abs=1e-3)
        assert validate_schedule(sched) == []

    def test_multiple_slots_per_domain(self):
        sched = build_fs_schedule(
            P, 4, SharingLevel.RANK, slots_per_domain=2
        )
        assert sched.slots_per_interval == 8
        for d in range(4):
            assert len(sched.slots_of_domain(d)) == 2
        assert validate_schedule(sched) == []


class TestTripleAlternation:
    @pytest.fixture
    def sched(self):
        return build_triple_alternation_schedule(P, 8)

    def test_q_is_360(self, sched):
        assert sched.interval_length == 360

    def test_slot_gap_is_15(self, sched):
        assert sched.slot_gap == 15

    def test_bank_classes_rotate_mod_3(self, sched):
        for slot in sched.slots:
            assert slot.bank_mod == slot.index % 3

    def test_neighbours_never_share_bank_class(self, sched):
        mods = [s.bank_mod for s in sched.slots]
        n = len(mods)
        for i in range(n):
            assert mods[i] != mods[(i + 1) % n]
            assert mods[i] != mods[(i + 2) % n]

    def test_every_domain_sees_all_three_classes(self, sched):
        for d in range(8):
            classes = {s.bank_mod for s in sched.slots_of_domain(d)}
            assert classes == {0, 1, 2}

    def test_validates_clean(self, sched):
        assert validate_schedule(sched) == []

    def test_same_bank_reuse_distance_safe(self, sched):
        # Same bank class recurs every 3 slots: 45 >= 43 cycles.
        assert 3 * sched.slot_gap >= 43

    def test_multiple_of_three_domains_supported(self):
        sched = build_triple_alternation_schedule(P, 6)
        for d in range(6):
            classes = {s.bank_mod for s in sched.slots_of_domain(d)}
            assert classes == {0, 1, 2}
        assert validate_schedule(sched) == []


class TestReorderedBpGeometry:
    def test_paper_constants(self):
        g = build_reordered_bp_geometry(P, 8)
        assert g.data_gap == 6
        assert g.tail == 15
        assert g.interval_length == 63

    def test_utilization_doubles_over_basic_bp(self):
        g = build_reordered_bp_geometry(P, 8)
        assert g.peak_utilization(P.tBURST) == pytest.approx(
            32 / 63
        )  # ~51%

    def test_data_offsets(self):
        g = build_reordered_bp_geometry(P, 8)
        assert [g.data_offset(i) for i in range(8)] == \
            [0, 6, 12, 18, 24, 30, 36, 42]
        with pytest.raises(ValueError):
            g.data_offset(8)

    def test_reads_then_writes_stream_is_legal(self):
        """Expand a full reads-then-writes interval sequence and check."""
        from repro.dram.commands import Command, CommandType

        g = build_reordered_bp_geometry(P, 8)
        checker = TimingChecker(P)
        cmds = []
        base = 100
        for interval in range(3):
            start = base + interval * g.interval_length
            # 5 reads then 3 writes, banks spread, same rank (worst case).
            for pos in range(8):
                is_read = pos < 5
                data = start + g.data_offset(pos)
                if is_read:
                    act, col = data - 22, data - 11
                    ctype = CommandType.COL_READ_AP
                else:
                    act, col = data - 16, data - 5
                    ctype = CommandType.COL_WRITE_AP
                cmds.append(Command(
                    CommandType.ACTIVATE, act, 0, 0, pos, interval
                ))
                cmds.append(Command(ctype, col, 0, 0, pos, interval))
        assert checker.check(cmds) == []


class TestScheduleValidation:
    def test_rejects_missing_domain(self):
        slots = [SlotSpec(0, 0, 0)]
        with pytest.raises(ValueError):
            FixedServiceSchedule(
                P, PeriodicMode.DATA, 7, 2, slots, 14, SharingLevel.RANK
            )

    def test_rejects_empty_slots(self):
        with pytest.raises(ValueError):
            FixedServiceSchedule(
                P, PeriodicMode.DATA, 7, 1, [], 7, SharingLevel.RANK
            )

    def test_schedule_commands_expansion_size(self):
        sched = build_fs_schedule(P, 4, SharingLevel.RANK)
        cmds = schedule_commands(sched, [True] * 4, intervals=2)
        assert len(cmds) == 2 * 4 * 2  # 2 commands per slot

    def test_corrupted_schedule_fails_validation(self):
        # Squeeze the slots closer than the solver allows.
        slots = [SlotSpec(i, i, i * 6) for i in range(8)]
        bad = FixedServiceSchedule(
            P, PeriodicMode.DATA, 6, 8, slots, 48, SharingLevel.RANK
        )
        assert validate_schedule(bad) != []
