"""The benchmark ledger (``repro.bench`` + ``repro bench``).

Pinned contract:

* ``record`` appends monotonically numbered, schema-versioned
  ``BENCH_<n>.json`` entries carrying the whole pinned suite;
* ``compare`` passes on identical entries, detects an injected >=20%
  cycles/s regression (CLI exit 1), never fails on improvements or
  metrics present in only one entry, and refuses mismatched scales;
* tolerance resolution: argument > ``REPRO_BENCH_TOLERANCE`` > default.
"""

import json

import pytest

from repro import bench
from repro.errors import ConfigError, ReproError

# One real suite run per module: the suite simulates three engine
# cases, a grid, a certification batch, and a cache probe — measured
# once at a tiny scale and reused by every ledger test below.
SCALE = dict(accesses=80, cores=2, seed=7)


@pytest.fixture(scope="module")
def ledger(tmp_path_factory):
    root = tmp_path_factory.mktemp("ledger")
    path = bench.record(str(root), label="seed", **SCALE)
    return root, path


def _clone(ledger_root, src, mutate=None):
    """Append the next entry as a copy of ``src`` (optionally edited),
    so compare sees two same-scale entries without re-running the
    suite."""
    entries = bench.ledger_entries(str(ledger_root))
    index = entries[-1][0] + 1
    data = json.loads(open(src).read())
    data["index"] = index
    data["label"] = f"clone-{index}"
    if mutate:
        mutate(data)
    dst = ledger_root / f"BENCH_{index}.json"
    dst.write_text(json.dumps(data))
    return str(dst)


def test_record_writes_schema_versioned_entry(ledger):
    root, path = ledger
    assert path.endswith("BENCH_0.json")
    entry = bench.load_entry(path)
    assert entry["schema"] == bench.SCHEMA_VERSION
    assert entry["suite"] == SCALE
    names = set(entry["metrics"])
    assert {
        "cycles_per_second/fast/fs_rp",
        "cycles_per_second/fast/baseline",
        "cycles_per_second/reference/fs_rp",
        "sweep_cells_per_second",
        "certify_trials_per_second",
        "template_cache_hit_rate",
    } <= names
    for metric in entry["metrics"].values():
        assert metric["value"] >= 0
        assert "unit" in metric and "higher_better" in metric


def test_compare_identical_entries_passes(ledger):
    root, path = ledger
    clone = _clone(root, path)
    comparison = bench.compare(path, clone)
    assert comparison.passed
    assert all(d.rel_change == 0 for d in comparison.deltas)
    assert "PASS" in bench.format_comparison(comparison)


def test_compare_detects_injected_regression(ledger):
    root, path = ledger

    def slow_down(data):
        m = data["metrics"]["cycles_per_second/fast/fs_rp"]
        m["value"] = round(m["value"] * 0.75, 6)  # -25% > 15% tol

    clone = _clone(root, path, slow_down)
    comparison = bench.compare(path, clone)
    assert not comparison.passed
    assert [d.name for d in comparison.regressions] == \
        ["cycles_per_second/fast/fs_rp"]
    assert "REGRESSION" in bench.format_comparison(comparison)
    # The same move is pure improvement in the other direction.
    reverse = bench.compare(clone, path)
    assert reverse.passed


def test_compare_missing_metric_never_fails(ledger):
    root, path = ledger

    def drop(data):
        del data["metrics"]["template_cache_hit_rate"]

    clone = _clone(root, path, drop)
    comparison = bench.compare(path, clone)
    assert comparison.passed
    assert comparison.missing == ["template_cache_hit_rate"]
    assert "only one entry" in bench.format_comparison(comparison)


def test_compare_refuses_mismatched_scales(ledger):
    root, path = ledger

    def rescale(data):
        data["suite"] = dict(data["suite"], accesses=999)

    clone = _clone(root, path, rescale)
    with pytest.raises(ReproError, match="suite scales"):
        bench.compare(path, clone)


def test_lower_better_direction(ledger, tmp_path):
    root, path = ledger

    def add_latency(data):
        data["metrics"]["latency_s"] = {
            "value": 1.0, "unit": "s", "higher_better": False,
        }

    base = _clone(root, path, add_latency)

    def worsen(data):
        add_latency(data)
        data["metrics"]["latency_s"]["value"] = 2.0  # higher = worse

    worse = _clone(root, path, worsen)
    comparison = bench.compare(base, worse)
    assert [d.name for d in comparison.regressions] == ["latency_s"]
    assert bench.compare(worse, base).passed  # improvement


def test_tolerance_resolution(monkeypatch):
    assert bench.resolve_tolerance() == bench.DEFAULT_TOLERANCE
    monkeypatch.setenv(bench.TOLERANCE_ENV, "0.5")
    assert bench.resolve_tolerance() == 0.5
    assert bench.resolve_tolerance(0.1) == 0.1  # arg wins over env
    monkeypatch.setenv(bench.TOLERANCE_ENV, "banana")
    with pytest.raises(ConfigError, match="must be a number"):
        bench.resolve_tolerance()
    with pytest.raises(ConfigError, match="non-negative"):
        bench.resolve_tolerance(-0.1)


def test_wide_tolerance_forgives_regression(ledger, monkeypatch):
    root, path = ledger

    def slow_down(data):
        m = data["metrics"]["cycles_per_second/fast/fs_rp"]
        m["value"] = round(m["value"] * 0.75, 6)

    clone = _clone(root, path, slow_down)
    monkeypatch.setenv(bench.TOLERANCE_ENV, "0.6")
    assert bench.compare(path, clone).passed
    assert not bench.compare(path, clone, tolerance=0.05).passed


def test_load_entry_rejects_garbage(tmp_path):
    bad = tmp_path / "BENCH_0.json"
    bad.write_text("{not json")
    with pytest.raises(ReproError, match="not valid JSON"):
        bench.load_entry(str(bad))
    bad.write_text(json.dumps({"schema": 999, "metrics": {}}))
    with pytest.raises(ReproError, match="schema"):
        bench.load_entry(str(bad))
    bad.write_text(json.dumps({"schema": bench.SCHEMA_VERSION}))
    with pytest.raises(ReproError, match="metrics"):
        bench.load_entry(str(bad))
    with pytest.raises(ReproError, match="cannot read"):
        bench.load_entry(str(tmp_path / "BENCH_7.json"))


def test_record_rejects_bad_scale(tmp_path):
    with pytest.raises(ConfigError):
        bench.record(str(tmp_path), accesses=0, cores=2)


def test_ledger_numbering_skips_gaps(ledger):
    root, _ = ledger
    entries = bench.ledger_entries(str(root))
    indices = [i for i, _ in entries]
    assert indices == sorted(indices)
    assert len(set(indices)) == len(indices)


# ---------------------------------------------------------------------
# CLI surface.
# ---------------------------------------------------------------------


def _cli(argv):
    from repro.cli import main

    return main(argv)


def test_cli_bench_compare_exit_codes(ledger, capsys):
    root, path = ledger
    clone = _clone(root, path)
    assert _cli(["bench", "compare", path, clone]) == 0
    assert "PASS" in capsys.readouterr().out

    def slow_down(data):
        m = data["metrics"]["cycles_per_second/fast/fs_rp"]
        m["value"] = round(m["value"] * 0.75, 6)

    worse = _clone(root, path, slow_down)
    assert _cli(["bench", "compare", path, worse]) == 1
    assert "FAIL: 1 regression(s)" in capsys.readouterr().out
    # Mismatched scales are a hard error (exit 2), not a FAIL verdict.
    def rescale(data):
        data["suite"] = dict(data["suite"], accesses=999)

    other = _clone(root, path, rescale)
    assert _cli(["bench", "compare", path, other]) == 2
    assert "suite scales" in capsys.readouterr().err


def test_cli_bench_record_then_compare(tmp_path, capsys):
    code = _cli([
        "bench", "record", "--root", str(tmp_path),
        "--accesses", "60", "--cores", "2", "--label", "cli-seed",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "BENCH_0.json" in out
    entry = bench.load_entry(str(tmp_path / "BENCH_0.json"))
    assert entry["label"] == "cli-seed"
    assert entry["suite"]["accesses"] == 60
