"""Tests for trace characterization and generator calibration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.trace import Trace, TraceRecord
from repro.dram.commands import OpType
from repro.workloads.characterize import (
    calibration_error,
    characterize,
)
from repro.workloads.spec import EVALUATION_SUITE, MIXES, workload
from repro.workloads.synthetic import WorkloadSpec, generate_trace


class TestCharacterize:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            characterize(Trace([]))

    def test_counts(self):
        trace = Trace([
            TraceRecord(10, OpType.READ, 0),
            TraceRecord(5, OpType.WRITE, 1),
            TraceRecord(0, OpType.READ, 0, depends_on_prev=True),
        ])
        profile = characterize(trace)
        assert profile.accesses == 3
        assert profile.read_fraction == pytest.approx(2 / 3)
        assert profile.dependent_fraction == pytest.approx(0.5)
        assert profile.footprint_lines == 2
        assert profile.mean_gap == pytest.approx(5.0)

    def test_row_reuse_windowed(self):
        # Same row every access -> full reuse (after the first).
        trace = Trace([
            TraceRecord(0, OpType.READ, i % 4) for i in range(100)
        ])
        profile = characterize(trace)
        assert profile.row_reuse > 0.95
        assert profile.footprint_rows == 1


class TestGeneratorCalibration:
    """Every benchmark's generated trace must match its spec."""

    @pytest.mark.parametrize(
        "name",
        [w for w in EVALUATION_SUITE if w not in MIXES],
    )
    def test_suite_benchmarks_calibrated(self, name):
        spec = workload(name)
        trace = generate_trace(spec, 4000, seed=5)
        profile = characterize(trace)
        assert calibration_error(profile, spec) < 0.2, str(profile)

    def test_row_locality_ordering(self):
        streaming = characterize(
            generate_trace(workload("libquantum"), 3000, seed=1)
        )
        pointer = characterize(
            generate_trace(workload("mcf"), 3000, seed=1)
        )
        assert streaming.row_reuse > pointer.row_reuse + 0.3

    def test_dependence_ordering(self):
        chase = characterize(
            generate_trace(workload("mcf"), 3000, seed=2)
        )
        stream = characterize(
            generate_trace(workload("lbm"), 3000, seed=2)
        )
        assert chase.dependent_fraction > 0.4
        assert stream.dependent_fraction < 0.05

    @given(st.sampled_from(["milc", "mcf", "SP", "CG"]),
           st.integers(0, 5))
    @settings(max_examples=12, deadline=None)
    def test_calibration_stable_across_seeds(self, name, seed):
        spec = workload(name)
        trace = generate_trace(spec, 3000, seed=seed)
        assert calibration_error(characterize(trace), spec) < 0.25
