"""Tests for SLA slot assignments (Section 5.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline_solver import SharingLevel
from repro.core.schedule import validate_schedule
from repro.core.sla import (
    bandwidth_share,
    build_sla_schedule,
    weighted_slot_order,
)
from repro.dram.timing import DDR3_1600_X4

P = DDR3_1600_X4


class TestWeightedSlotOrder:
    def test_equal_weights_round_robin(self):
        assert weighted_slot_order([1, 1, 1]) == [0, 1, 2]

    def test_doc_example(self):
        assert weighted_slot_order([2, 1, 1]) == [0, 1, 2, 0]

    def test_counts_match_weights(self):
        order = weighted_slot_order([3, 1, 2])
        assert order.count(0) == 3
        assert order.count(1) == 1
        assert order.count(2) == 2

    def test_heavy_domain_spread_out(self):
        order = weighted_slot_order([4, 1, 1, 1, 1])
        # Domain 0's four slots must never be adjacent.
        positions = [i for i, d in enumerate(order) if d == 0]
        for a, b in zip(positions, positions[1:]):
            assert b - a >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_slot_order([])
        with pytest.raises(ValueError):
            weighted_slot_order([1, 0])

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=6))
    @settings(max_examples=50)
    def test_every_weighting_is_complete(self, weights):
        order = weighted_slot_order(weights)
        assert len(order) == sum(weights)
        for d, w in enumerate(weights):
            assert order.count(d) == w


class TestSlaSchedule:
    def test_equal_assignment_matches_plain(self):
        sla = build_sla_schedule(P, SharingLevel.RANK, [1] * 8)
        assert sla.interval_length == 56
        assert sla.slot_gap == 7

    def test_unequal_assignment_shares(self):
        sla = build_sla_schedule(P, SharingLevel.RANK, [2, 1, 1])
        assert len(sla.slots_of_domain(0)) == 2
        assert sla.interval_length == 4 * 7

    def test_unequal_assignment_validates_same_type(self):
        """Uniform-direction streams validate for any SLA.  (When a
        domain owns slots closer together than the write-to-read
        turnaround, mixed-direction streams additionally rely on the
        controller's hazard scan — covered by TestSlaController.)"""
        sla = build_sla_schedule(P, SharingLevel.RANK, [2, 2, 1, 1, 1, 1])
        n = sla.slots_per_interval
        patterns = [[True] * n, [False] * n]
        assert validate_schedule(sla, patterns=patterns) == []

    def test_bank_level_sla_validates_same_type(self):
        sla = build_sla_schedule(P, SharingLevel.BANK, [3, 1, 2, 1, 1])
        n = sla.slots_per_interval
        patterns = [[True] * n, [False] * n]
        assert validate_schedule(sla, patterns=patterns) == []

    def test_bandwidth_share(self):
        assert bandwidth_share([2, 1, 1], 0) == 0.5
        assert bandwidth_share([2, 1, 1], 2) == 0.25
        with pytest.raises(ValueError):
            bandwidth_share([1, 1], 2)


class TestSlaController:
    def test_heavy_domain_gets_double_service(self):
        """A 2-slot domain is served twice per interval by the FS
        controller, with no schedule violations."""
        import random

        from repro.core.fs_controller import FixedServiceController
        from repro.dram.checker import TimingChecker
        from repro.dram.commands import OpType, Request
        from repro.dram.system import DramSystem
        from repro.mapping.address import Geometry
        from repro.mapping.partition import RankPartition

        assignment = [2, 1, 1, 1, 1, 1, 1]  # 7 domains, 8 slots
        schedule = build_sla_schedule(P, SharingLevel.RANK, assignment)
        geometry = Geometry()
        partition = RankPartition(geometry, 7)
        dram = DramSystem(P)
        ctrl = FixedServiceController(
            dram, schedule, partition, log_commands=True
        )
        rng = random.Random(0)
        requests = []
        t = 0
        for _ in range(300):
            d = rng.randrange(7)
            line = rng.randrange(50_000)
            requests.append(Request(
                op=OpType.READ, address=partition.decode(d, line),
                domain=d, arrival=t, line=line,
            ))
            t += 3
        requests.sort(key=lambda r: r.arrival)
        clock, idx = 0, 0
        while idx < len(requests) or ctrl.busy():
            nxt = ctrl.next_event()
            arr = requests[idx].arrival if idx < len(requests) else None
            cands = [c for c in (nxt, arr) if c is not None]
            if not cands:
                break
            clock = max(clock + 1, min(cands))
            while idx < len(requests) and requests[idx].arrival <= clock:
                ctrl.enqueue(requests[idx])
                idx += 1
            ctrl.advance(clock)
        assert TimingChecker(P).check(ctrl.command_log) == []
        served = {d: len(ctrl.service_trace[d]) for d in range(7)}
        # Domain 0 gets ~2x the service of everyone else.
        assert served[0] == pytest.approx(2 * served[1], rel=0.1)
