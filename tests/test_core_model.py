"""Tests for the event-driven ROB core model."""

import pytest

from repro.cpu.core_model import Core, CoreParams
from repro.cpu.trace import Trace, TraceRecord
from repro.dram.commands import OpType


def trace(*records):
    return Trace(records, name="test")


def read(gap=0, line=0, dep=False):
    return TraceRecord(gap=gap, op=OpType.READ, line=line,
                       depends_on_prev=dep)


def write(gap=0, line=0):
    return TraceRecord(gap=gap, op=OpType.WRITE, line=line)


class TestEmission:
    def test_emits_in_trace_order(self):
        core = Core(0, trace(read(line=1), read(line=2), read(line=3)))
        lines = []
        for _ in range(3):
            req = core.try_emit()
            lines.append(req.line)
            core.on_complete(req, req.arrival + 30)
        assert lines == [1, 2, 3]

    def test_arrival_reflects_gap(self):
        params = CoreParams(rob_size=64, width=4, cpu_per_mem_cycle=4)
        core = Core(0, trace(read(gap=160, line=1)), params)
        req = core.try_emit()
        # 160 instructions at 16 per mem cycle = 10 mem cycles.
        assert req.arrival == 10

    def test_write_is_posted(self):
        core = Core(0, trace(write(line=1), read(line=2)))
        w = core.try_emit()
        assert w.op is OpType.WRITE
        r = core.try_emit()  # no completion needed in between
        assert r.op is OpType.READ

    def test_done_after_trace_and_completions(self):
        core = Core(0, trace(read(line=1)))
        req = core.try_emit()
        assert not core.done
        core.on_complete(req, 50)
        assert core.done


class TestRobGating:
    def test_window_limits_outstanding_reads(self):
        params = CoreParams(rob_size=8, width=4)
        # Reads every 4 instructions: at most ~2 fit in an 8-entry ROB.
        records = [read(gap=3, line=i) for i in range(10)]
        core = Core(0, trace(*records), params)
        emitted = []
        while True:
            req = core.try_emit()
            if req is None:
                break
            emitted.append(req)
        assert 1 <= len(emitted) <= 3

    def test_completion_unblocks(self):
        params = CoreParams(rob_size=8, width=4)
        records = [read(gap=3, line=i) for i in range(10)]
        core = Core(0, trace(*records), params)
        first = core.try_emit()
        while core.try_emit() is not None:
            pass
        assert core.blocked
        core.on_complete(first, 100)
        assert core.try_emit() is not None

    def test_memory_latency_slows_retirement(self):
        params = CoreParams(rob_size=8, width=4)
        records = [read(gap=7, line=i) for i in range(20)]
        finish = {}
        for latency in (20, 200):
            core = Core(0, trace(*records), params)
            clock = 0
            while not core.done:
                req = core.try_emit()
                if req is None:
                    oldest = core._reads[0].request
                    clock = max(clock, oldest.arrival) + latency
                    core.on_complete(oldest, clock)
            assert core.stat_reads_completed == 20
            finish[latency] = clock
        assert finish[200] > finish[20]


class TestDependencies:
    def test_dependent_load_waits_for_producer(self):
        core = Core(0, trace(read(line=1), read(line=2, dep=True)))
        first = core.try_emit()
        assert core.try_emit() is None  # blocked on producer
        core.on_complete(first, 100)
        second = core.try_emit()
        assert second is not None
        # Dependent load cannot be sent before the producer returned.
        assert second.arrival >= 100

    def test_independent_loads_overlap(self):
        core = Core(0, trace(read(line=1), read(line=2)))
        a = core.try_emit()
        b = core.try_emit()
        assert a is not None and b is not None
        assert b.arrival <= a.arrival + 1  # both in flight immediately


class TestMetrics:
    def _run_fixed_latency(self, records, latency=30,
                           params=CoreParams()):
        core = Core(0, trace(*records), params)
        inflight = []
        clock = 0
        while not core.done:
            req = core.try_emit()
            if req is not None:
                inflight.append(req)
                continue
            # Complete the oldest outstanding read.
            req = inflight.pop(0)
            done_at = max(clock, req.arrival) + latency
            clock = done_at
            core.on_complete(req, done_at)
        return core, clock

    def test_retired_instructions_monotone(self):
        records = [read(gap=10, line=i) for i in range(30)]
        core, end = self._run_fixed_latency(records)
        values = [core.retired_instructions(t) for t in range(0, end + 10)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_all_instructions_retire(self):
        records = [read(gap=10, line=i) for i in range(30)]
        core, end = self._run_fixed_latency(records)
        total = sum(r.instructions for r in records)
        assert core.retired_instructions(end + 100) == total

    def test_ipc_decreases_with_latency(self):
        records = [read(gap=10, line=i % 7) for i in range(50)]
        ipcs = {}
        for latency in (10, 300):
            core, end = self._run_fixed_latency(records, latency)
            ipcs[latency] = core.ipc(end)
        assert ipcs[10] > ipcs[300] > 0

    def test_completion_profile_milestones(self):
        records = [read(gap=999, line=i) for i in range(20)]
        core, end = self._run_fixed_latency(records)
        profile = core.completion_profile(block=5000)
        assert profile, "expected milestones"
        counts = [n for n, _ in profile]
        times = [t for _, t in profile]
        assert counts == sorted(counts)
        assert times == sorted(times)

    def test_unknown_completion_rejected(self):
        core = Core(0, trace(read(line=1), read(line=2)))
        a = core.try_emit()
        fake = core.try_emit()
        core.on_complete(a, 10)
        with pytest.raises(ValueError):
            core.on_complete(a, 20)  # already retired / not outstanding


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoreParams(rob_size=0)

    def test_ticks_per_mem_cycle(self):
        assert CoreParams(width=4, cpu_per_mem_cycle=4) \
            .ticks_per_mem_cycle == 16
