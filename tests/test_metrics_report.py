"""Tests for metrics helpers and the text report renderer."""

import pytest

from repro.analysis.metrics import (
    arithmetic_mean,
    geometric_mean,
    normalized,
)
from repro.analysis.report import (
    format_comparison,
    format_series,
    format_table,
)


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_geometric_needs_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_normalized(self):
        assert normalized(3.0, 4.0) == 0.75
        with pytest.raises(ValueError):
            normalized(1.0, 0.0)


class TestFormatTable:
    def test_contains_headers_and_values(self):
        out = format_table(["a", "b"], [[1, 2.5], [3, 4.0]])
        assert "a" in out and "b" in out
        assert "2.500" in out and "3" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="Figure 99")
        assert out.startswith("Figure 99")

    def test_column_alignment(self):
        out = format_table(["name", "v"], [["long-name-here", 1]])
        lines = out.splitlines()
        assert len(lines[0]) >= len("long-name-here")

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatSeries:
    def test_series_columns(self):
        out = format_series(
            ["w1", "w2"],
            {"fs": [1.0, 2.0], "tp": [0.5, 0.25]},
            title="Fig",
        )
        assert "fs" in out and "tp" in out
        assert "0.250" in out

    def test_row_per_label(self):
        out = format_series(["a", "b", "c"], {"s": [1, 2, 3]})
        assert len(out.splitlines()) == 5  # header + rule + 3 rows


class TestComparison:
    def test_format(self):
        line = format_comparison("peak util", 0.57, 0.571)
        assert "paper 0.57" in line and "measured 0.571" in line
