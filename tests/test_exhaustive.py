"""Tests for the exhaustive bounded non-interference checker."""

import pytest

from repro.analysis.exhaustive import (
    ACTIONS,
    exhaustive_noninterference,
)
from repro.sim.config import SystemConfig

CFG = SystemConfig()


class TestSecureSchemesHold:
    @pytest.mark.parametrize("scheme", [
        "fs_rp", "fs_reordered_bp", "fs_np_ta", "tp_bp", "channel_part",
    ])
    def test_all_adversarial_patterns_identical(self, scheme):
        report = exhaustive_noninterference(
            scheme, decision_points=3, config=CFG
        )
        assert report.holds, report.counterexample
        assert report.patterns_checked == len(ACTIONS) ** 3


class TestInsecureSchemesFail:
    def test_baseline_has_a_counterexample(self):
        report = exhaustive_noninterference(
            "baseline", decision_points=3, config=CFG
        )
        assert not report.holds
        assert report.counterexample is not None
        # The check stops at the first counterexample.
        assert report.patterns_checked < len(ACTIONS) ** 3

    def test_fcfs_has_a_counterexample(self):
        report = exhaustive_noninterference(
            "fcfs", decision_points=3, config=CFG
        )
        assert not report.holds


class TestParameters:
    def test_validates_decision_points(self):
        with pytest.raises(ValueError):
            exhaustive_noninterference("fs_rp", decision_points=0)

    def test_restricted_action_set(self):
        report = exhaustive_noninterference(
            "fs_rp", decision_points=3, actions=("idle", "read"),
            config=CFG,
        )
        assert report.holds
        assert report.patterns_checked == 2 ** 3
